"""Spanning forests over poset DAGs (Section 4.3).

The interval encoding labels a *spanning tree* of the poset DAG.  Because
a poset may have several maximal values, the general object is a spanning
*forest*: every non-maximal node keeps exactly one of its incoming cover
edges; maximal nodes are roots.

The choice of retained edges drives the dominance classification of
Section 4.5.1 and is exactly what the MinPC/MaxPC strategies of
Section 4.7 optimise (see :mod:`repro.posets.optimize`).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Mapping

from repro.exceptions import PosetError
from repro.posets.poset import Poset

__all__ = ["SpanningForest", "default_spanning_forest", "random_spanning_forest"]


class SpanningForest:
    """A spanning forest of a poset DAG.

    Parameters
    ----------
    poset:
        The underlying partial order.
    parent_ix:
        For every node index, the retained parent's index, or ``-1`` for
        maximal (root) nodes.  Each retained parent must be an actual
        cover parent in the DAG.
    """

    __slots__ = ("poset", "_parent", "_children", "_postorder")

    def __init__(self, poset: Poset, parent_ix: Iterable[int]) -> None:
        self.poset = poset
        parent = tuple(parent_ix)
        n = len(poset)
        if len(parent) != n:
            raise PosetError(f"parent array has length {len(parent)}, expected {n}")
        children: list[list[int]] = [[] for _ in range(n)]
        for i, p in enumerate(parent):
            if p == -1:
                if poset.parents_ix(i):
                    raise PosetError(
                        f"node {poset.value(i)!r} is not maximal but has no spanning parent"
                    )
                continue
            if p not in poset.parents_ix(i):
                raise PosetError(
                    f"{poset.value(p)!r} is not a cover parent of {poset.value(i)!r}"
                )
            children[p].append(i)
        self._parent = parent
        self._children: tuple[tuple[int, ...], ...] = tuple(tuple(c) for c in children)
        self._postorder: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_edge_choice(
        cls, poset: Poset, kept_edges: Iterable[tuple[Hashable, Hashable]]
    ) -> "SpanningForest":
        """Build from explicit kept edges ``(parent_value, child_value)``.

        Every non-maximal node must appear exactly once as a child.
        """
        n = len(poset)
        parent = [-1] * n
        for v, w in kept_edges:
            child = poset.index(w)
            if parent[child] != -1:
                raise PosetError(f"node {w!r} given two spanning parents")
            parent[child] = poset.index(v)
        for i in range(n):
            if parent[i] == -1 and poset.parents_ix(i):
                raise PosetError(
                    f"non-maximal node {poset.value(i)!r} missing a spanning parent"
                )
        return cls(poset, parent)

    @classmethod
    def from_parent_map(
        cls, poset: Poset, parents: Mapping[Hashable, Hashable]
    ) -> "SpanningForest":
        """Build from a ``child_value -> parent_value`` mapping."""
        return cls.from_edge_choice(poset, [(p, c) for c, p in parents.items()])

    # ------------------------------------------------------------------
    def parent_of(self, i: int) -> int:
        """Spanning parent index of node index ``i`` (``-1`` for roots)."""
        return self._parent[i]

    def children_of(self, i: int) -> tuple[int, ...]:
        """Spanning children indices of node index ``i``."""
        return self._children[i]

    @property
    def parent_array(self) -> tuple[int, ...]:
        """Raw parent array (``-1`` marks roots)."""
        return self._parent

    @property
    def roots(self) -> tuple[int, ...]:
        """Root node indices (the poset's maximal values)."""
        return tuple(i for i, p in enumerate(self._parent) if p == -1)

    def contains_edge(self, i: int, j: int) -> bool:
        """``True`` when DAG edge ``(i, j)`` was retained in the forest."""
        return self._parent[j] == i

    def kept_edges(self) -> list[tuple[Hashable, Hashable]]:
        """Retained edges as ``(parent_value, child_value)`` pairs."""
        poset = self.poset
        return [
            (poset.value(p), poset.value(i))
            for i, p in enumerate(self._parent)
            if p != -1
        ]

    def excluded_edges_ix(self) -> list[tuple[int, int]]:
        """DAG cover edges *not* retained, as index pairs."""
        poset = self.poset
        out: list[tuple[int, int]] = []
        for j in range(len(poset)):
            for i in poset.parents_ix(j):
                if self._parent[j] != i:
                    out.append((i, j))
        return out

    def postorder(self) -> tuple[int, ...]:
        """Node indices in forest postorder (roots visited in index order).

        This is the traversal the interval encoding numbers; it is cached
        because the forest is immutable.
        """
        if self._postorder is None:
            order: list[int] = []
            for root in self.roots:
                stack: list[tuple[int, bool]] = [(root, False)]
                while stack:
                    node, expanded = stack.pop()
                    if expanded:
                        order.append(node)
                    else:
                        stack.append((node, True))
                        for child in reversed(self._children[node]):
                            stack.append((child, False))
            self._postorder = tuple(order)
        return self._postorder

    def tree_path_exists(self, i: int, j: int) -> bool:
        """``True`` when a forest path runs from ``i`` down to ``j``.

        Quadratic fallback used in tests; production code answers this via
        interval containment in :mod:`repro.posets.encoding`.
        """
        node = j
        while node != -1:
            if node == i:
                return True
            node = self._parent[node]
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanningForest(n={len(self.poset)}, roots={len(self.roots)})"


def default_spanning_forest(poset: Poset) -> SpanningForest:
    """Keep each node's first cover parent (deterministic baseline)."""
    parent = [(poset.parents_ix(i)[0] if poset.parents_ix(i) else -1) for i in range(len(poset))]
    return SpanningForest(poset, parent)


def random_spanning_forest(poset: Poset, rng: random.Random | None = None) -> SpanningForest:
    """Keep a uniformly random cover parent per node (for property tests)."""
    rng = rng or random.Random(0)
    parent = [
        (rng.choice(poset.parents_ix(i)) if poset.parents_ix(i) else -1)
        for i in range(len(poset))
    ]
    return SpanningForest(poset, parent)
