"""Spanning-tree optimisation: MinPC and MaxPC (Section 4.7, Fig. 9).

The DAG fixes which values are completely/partially *covered*, but the
spanning forest decides which are completely/partially *covering*:
excluding a DAG edge ``(u, v)`` from the forest turns ``u`` **and every
DAG ancestor of u** into partially covering values.  The greedy algorithm
``OptimizeSpanningTree`` therefore walks the DAG topologically and, for
every node with several cover parents, chooses which single parent edge to
retain:

* ``PCSet_v(w)`` -- the currently-``(p,c)`` values that would flip to
  ``(p,p)`` if all incoming edges of ``v`` except ``(w, v)`` were deleted;
* ``CCSet_v(w)`` -- likewise the ``(c,c)`` values flipping to ``(c,p)``.

**MinPC** minimises the number of ``(p,c)`` values (primary: keep the
parent whose deletion set flips the *most* ``(p,c)`` values; secondary:
flip the fewest ``(c,c)``), which maximises points whose comparisons can
skip the ``(c,c)`` subset; **MaxPC** flips the *fewest* ``(p,c)`` values,
maximising m-dominance-only comparisons.  Per the paper's footnote the two
strategies differ in a single comparison operator.
"""

from __future__ import annotations

import enum
import random

from repro.exceptions import PosetError
from repro.posets.poset import Poset
from repro.posets.spanning_tree import (
    SpanningForest,
    default_spanning_forest,
    random_spanning_forest,
)

__all__ = ["SpanningTreeStrategy", "optimize_spanning_forest", "build_forest"]


class SpanningTreeStrategy(enum.Enum):
    """How the spanning forest underlying the encoding is chosen."""

    DEFAULT = "default"
    RANDOM = "random"
    MINPC = "minpc"
    MAXPC = "maxpc"

    @classmethod
    def parse(cls, value: "SpanningTreeStrategy | str") -> "SpanningTreeStrategy":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            raise PosetError(f"unknown spanning-tree strategy {value!r}") from None


def optimize_spanning_forest(
    poset: Poset, strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.MINPC
) -> SpanningForest:
    """Run ``OptimizeSpanningTree`` with the MinPC or MaxPC criterion."""
    strategy = SpanningTreeStrategy.parse(strategy)
    if strategy not in (SpanningTreeStrategy.MINPC, SpanningTreeStrategy.MAXPC):
        raise PosetError(f"{strategy} is not an optimising strategy")
    minpc = strategy is SpanningTreeStrategy.MINPC

    n = len(poset)
    # Covered flags depend only on the DAG (Section 4.7).
    covered = [False] * n
    for i in poset.topological_order:
        parents = poset.parents_ix(i)
        covered[i] = not parents or (len(parents) == 1 and covered[parents[0]])

    # Steps 2-6: start from ST = G with a default completely-covering
    # classification, then greedily delete surplus incoming edges.
    covering = [True] * n
    parent_choice = [-1] * n

    for v in poset.topological_order:
        parents = poset.parents_ix(v)
        if not parents:
            continue
        if len(parents) == 1:
            parent_choice[v] = parents[0]
            continue

        best_w = -1
        best_flips: set[int] = set()
        best_pc = -1
        best_cc = -1
        for w in parents:
            flips: set[int] = set()
            for u in parents:
                if u == w:
                    continue
                if covering[u]:
                    flips.add(u)
                for a in poset.ancestors_ix(u):
                    if covering[a]:
                        flips.add(a)
            pc = sum(1 for t in flips if not covered[t])  # PCSet_v(w)
            cc = len(flips) - pc  # CCSet_v(w)
            if best_w == -1:
                better = True
            elif minpc:
                better = pc > best_pc or (pc == best_pc and cc < best_cc)
            else:
                better = pc < best_pc or (pc == best_pc and cc < best_cc)
            if better:
                best_w, best_flips, best_pc, best_cc = w, flips, pc, cc

        parent_choice[v] = best_w
        for t in best_flips:
            covering[t] = False

    return SpanningForest(poset, parent_choice)


def build_forest(
    poset: Poset,
    strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
    rng: random.Random | None = None,
) -> SpanningForest:
    """Dispatch on strategy: default / random / MinPC / MaxPC."""
    strategy = SpanningTreeStrategy.parse(strategy)
    if strategy is SpanningTreeStrategy.DEFAULT:
        return default_spanning_forest(poset)
    if strategy is SpanningTreeStrategy.RANDOM:
        return random_spanning_forest(poset, rng)
    return optimize_spanning_forest(poset, strategy)
