"""Convenience constructors for common posets.

These cover the shapes used in the paper's examples and the regression
tests: chains (total orders), antichains, trees, the diamond of Fig. 2,
the ten-value poset of Fig. 4 (reconstructed to match Examples 4.3/4.4
exactly), powerset lattices and posets induced by arbitrary set families
under containment.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import PosetError
from repro.posets.poset import Poset

__all__ = [
    "chain",
    "antichain",
    "diamond",
    "random_tree",
    "from_relations",
    "from_set_family",
    "powerset_lattice",
    "paper_example_poset",
    "PAPER_FIG4_SPANNING_EDGES",
]


def chain(values: Sequence[Hashable]) -> Poset:
    """Total order: ``values[0]`` dominates ``values[1]`` dominates ...."""
    if not values:
        raise PosetError("a chain needs at least one value")
    edges = [(values[i], values[i + 1]) for i in range(len(values) - 1)]
    return Poset(values, edges)


def antichain(values: Sequence[Hashable]) -> Poset:
    """Poset with no comparable pairs at all."""
    return Poset(values, [])


def diamond() -> Poset:
    """The four-value poset of the paper's Fig. 2.

    ``a`` dominates everything, ``b`` and ``c`` are incomparable, ``d`` is
    dominated by everything.
    """
    return Poset("abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


def random_tree(
    num_nodes: int,
    max_branching: int = 3,
    rng: random.Random | None = None,
) -> Poset:
    """A random rooted tree poset (node 0 is the unique maximal value)."""
    if num_nodes < 1:
        raise PosetError("a tree needs at least one node")
    rng = rng or random.Random(0)
    if max_branching < 1:
        raise PosetError("max_branching must be >= 1")
    edges: list[tuple[int, int]] = []
    open_slots: list[int] = [0]
    for node in range(1, num_nodes):
        parent = rng.choice(open_slots)
        edges.append((parent, node))
        open_slots.append(node)
        if sum(1 for (p, _) in edges if p == parent) >= max_branching:
            open_slots.remove(parent)
    return Poset(range(num_nodes), edges)


def from_relations(
    relations: Iterable[tuple[Hashable, Hashable]],
    values: Iterable[Hashable] | None = None,
    reduce: bool = True,
) -> Poset:
    """Build a poset from arbitrary ``(dominator, dominated)`` pairs.

    Unlike the :class:`~repro.posets.poset.Poset` constructor this accepts
    transitively-redundant pairs and (by default) reduces them to cover
    edges, and it collects the domain from the pairs when ``values`` is
    omitted.
    """
    relations = list(relations)
    if values is None:
        seen: dict[Hashable, None] = {}
        for v, w in relations:
            seen.setdefault(v)
            seen.setdefault(w)
        values = list(seen)
    poset = Poset(values, relations)
    return poset.transitive_reduction() if reduce else poset


def from_set_family(sets: Mapping[Hashable, frozenset | set]) -> Poset:
    """Poset of named sets ordered by containment (superset dominates).

    This mirrors the paper's motivating set-valued domains: a hotel with a
    superset of amenities dominates one with a subset.
    """
    names = list(sets)
    rels = [
        (a, b)
        for a in names
        for b in names
        if a != b and set(sets[a]) > set(sets[b])
    ]
    return from_relations(rels, values=names)


def powerset_lattice(items: Sequence[Hashable]) -> Poset:
    """Containment lattice over all subsets of ``items`` (superset dominates)."""
    if len(items) > 12:
        raise PosetError("powerset lattice limited to 12 items (4096 nodes)")
    universe = list(items)
    subsets = [
        frozenset(universe[i] for i in range(len(universe)) if mask >> i & 1)
        for mask in range(1 << len(universe))
    ]
    edges = [
        (a, b)
        for a in subsets
        for b in subsets
        if len(a) == len(b) + 1 and a > b
    ]
    return Poset(subsets, edges)


#: Spanning-tree edges that reproduce the classifications of the paper's
#: Examples 4.3 and 4.4 on :func:`paper_example_poset`.
PAPER_FIG4_SPANNING_EDGES: tuple[tuple[str, str], ...] = (
    ("a", "f"),
    ("b", "g"),
    ("c", "h"),
    ("e", "j"),
    ("g", "i"),
)


def paper_example_poset() -> Poset:
    """A ten-value poset consistent with the paper's Fig. 4.

    Fig. 4 itself is an image; this DAG was reconstructed so that, with the
    spanning edges :data:`PAPER_FIG4_SPANNING_EDGES`, the dominance
    classification matches Example 4.3 (partially covering =
    ``{a,b,c,d,f,h}``, partially covered = ``{f,g,h,i,j}``) and the
    uncovered levels match Example 4.4 (level 0 for ``a..e``, level 1 for
    ``f,g,h,j`` and level 2 for ``i``).
    """
    edges = [
        ("a", "f"),
        ("b", "f"),
        ("b", "g"),
        ("c", "g"),
        ("c", "h"),
        ("d", "h"),
        ("d", "j"),
        ("e", "j"),
        ("f", "i"),
        ("g", "i"),
        ("h", "i"),
    ]
    return Poset("abcdefghij", edges)
