"""Order-theoretic analysis of poset domains.

Structural measures that characterise how "partial" a partially-ordered
domain is -- the properties that drive skyline sizes and false-positive
rates in the paper's experiments:

* :func:`comparability_ratio` -- fraction of comparable value pairs
  (1.0 for a chain, 0.0 for an antichain); low ratios mean large
  skylines.
* :func:`longest_chain` / :func:`mirsky_decomposition` -- height and the
  minimal partition into antichains (Mirsky's theorem: their number
  equals the height).
* :func:`width` / :func:`maximum_antichain` / :func:`chain_partition` --
  Dilworth's theorem, computed exactly via maximum bipartite matching on
  the reachability relation (Kőnig recovery for the antichain): the
  width is the largest set of mutually incomparable values and equals
  the minimum number of chains covering the domain.
* :func:`linear_extension` / :func:`random_linear_extension` -- total
  orders compatible with the partial order.

All functions are exact; the matching is Kuhn's augmenting-path algorithm
(O(V·E) over the transitive closure), comfortably fast for the paper's
450-1000-value domains.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.posets.poset import Poset

__all__ = [
    "comparability_ratio",
    "longest_chain",
    "mirsky_decomposition",
    "width",
    "maximum_antichain",
    "chain_partition",
    "linear_extension",
    "random_linear_extension",
    "is_antichain",
    "is_chain",
]


def comparability_ratio(poset: Poset) -> float:
    """Fraction of unordered value pairs that are comparable."""
    n = len(poset)
    if n < 2:
        return 1.0
    comparable = sum(len(poset.descendants_ix(i)) for i in range(n))
    return comparable / (n * (n - 1) / 2)


def longest_chain(poset: Poset) -> list[Hashable]:
    """One maximum-length chain (top-down)."""
    n = len(poset)
    if n == 0:
        return []
    best_len = [1] * n
    best_next = [-1] * n
    for i in reversed(poset.topological_order):
        for child in poset.children_ix(i):
            if best_len[child] + 1 > best_len[i]:
                best_len[i] = best_len[child] + 1
                best_next[i] = child
    start = max(range(n), key=lambda i: best_len[i])
    chain: list[Hashable] = []
    node = start
    while node != -1:
        chain.append(poset.value(node))
        node = best_next[node]
    return chain


def mirsky_decomposition(poset: Poset) -> list[list[Hashable]]:
    """Partition into antichains by level; their count equals the height."""
    buckets: dict[int, list[Hashable]] = {}
    for i, level in enumerate(poset.levels):
        buckets.setdefault(level, []).append(poset.value(i))
    return [buckets[level] for level in sorted(buckets)]


# ---------------------------------------------------------------------------
# Dilworth machinery
# ---------------------------------------------------------------------------
def _maximum_matching(poset: Poset) -> list[int]:
    """Kuhn's algorithm on the bipartite reachability graph.

    Returns ``match_right`` where ``match_right[v] == u`` means the chain
    edge ``u -> v`` was chosen (``-1`` when ``v`` is unmatched).
    """
    n = len(poset)
    match_right = [-1] * n
    match_left = [-1] * n
    order = sorted(range(n), key=lambda i: -len(poset.descendants_ix(i)))
    for u in order:
        seen = [False] * n
        _try_augment(poset, u, seen, match_left, match_right)
    return match_right


def _try_augment(
    poset: Poset,
    u: int,
    seen: list[bool],
    match_left: list[int],
    match_right: list[int],
) -> bool:
    for v in poset.descendants_ix(u):
        if seen[v]:
            continue
        seen[v] = True
        if match_right[v] == -1 or _try_augment(
            poset, match_right[v], seen, match_left, match_right
        ):
            match_right[v] = u
            match_left[u] = v
            return True
    return False


def chain_partition(poset: Poset) -> list[list[Hashable]]:
    """A minimum partition into chains (Dilworth: their count == width)."""
    n = len(poset)
    match_right = _maximum_matching(poset)
    successor = [-1] * n
    has_pred = [False] * n
    for v, u in enumerate(match_right):
        if u != -1:
            successor[u] = v
            has_pred[v] = True
    chains: list[list[Hashable]] = []
    for start in range(n):
        if has_pred[start]:
            continue
        chain: list[Hashable] = []
        node = start
        while node != -1:
            chain.append(poset.value(node))
            node = successor[node]
        chains.append(chain)
    return chains


def width(poset: Poset) -> int:
    """Size of the largest antichain (Dilworth's theorem)."""
    if len(poset) == 0:
        return 0
    match_right = _maximum_matching(poset)
    matched = sum(1 for u in match_right if u != -1)
    return len(poset) - matched


def maximum_antichain(poset: Poset) -> list[Hashable]:
    """One maximum antichain, recovered via Kőnig's theorem.

    With left/right copies of every value and edges for strict
    reachability, a minimum vertex cover is derived from the maximum
    matching; a value belongs to the antichain when *neither* of its
    copies is in the cover.
    """
    n = len(poset)
    if n == 0:
        return []
    match_right = _maximum_matching(poset)
    match_left = [-1] * n
    for v, u in enumerate(match_right):
        if u != -1:
            match_left[u] = v

    # Alternating BFS/DFS from unmatched left vertices.
    visited_left = [False] * n
    visited_right = [False] * n
    stack = [u for u in range(n) if match_left[u] == -1]
    for u in stack:
        visited_left[u] = True
    while stack:
        u = stack.pop()
        for v in poset.descendants_ix(u):
            if visited_right[v]:
                continue
            visited_right[v] = True
            w = match_right[v]
            if w != -1 and not visited_left[w]:
                visited_left[w] = True
                stack.append(w)

    # Kőnig cover: unreached left vertices + reached right vertices.
    in_cover_left = [not visited_left[u] for u in range(n)]
    in_cover_right = list(visited_right)
    antichain = [
        poset.value(i)
        for i in range(n)
        if not in_cover_left[i] and not in_cover_right[i]
    ]
    return antichain


# ---------------------------------------------------------------------------
# Linear extensions
# ---------------------------------------------------------------------------
def linear_extension(poset: Poset) -> list[Hashable]:
    """A deterministic total order compatible with the partial order."""
    return [poset.value(i) for i in poset.topological_order]


def random_linear_extension(
    poset: Poset, rng: random.Random | None = None
) -> list[Hashable]:
    """A random total order compatible with the partial order."""
    rng = rng or random.Random(0)
    indegree = [len(poset.parents_ix(i)) for i in range(len(poset))]
    ready = [i for i, d in enumerate(indegree) if d == 0]
    out: list[Hashable] = []
    while ready:
        pick = ready.pop(rng.randrange(len(ready)))
        out.append(poset.value(pick))
        for child in poset.children_ix(pick):
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    return out


def is_antichain(poset: Poset, values: list[Hashable]) -> bool:
    """Whether ``values`` are pairwise incomparable."""
    return all(
        not poset.comparable(a, b)
        for i, a in enumerate(values)
        for b in values[i + 1 :]
    )


def is_chain(poset: Poset, values: list[Hashable]) -> bool:
    """Whether ``values`` are pairwise comparable."""
    return all(
        poset.comparable(a, b)
        for i, a in enumerate(values)
        for b in values[i + 1 :]
    )
