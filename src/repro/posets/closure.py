"""Compressed transitive closure via interval sets (ABJ, SIGMOD'89).

The paper's Section 4.3 encoding keeps only each node's *spanning-tree*
interval, which is what makes it indexable (two integers) but lossy
(false positives).  The original Agrawal/Borgida/Jagadish scheme keeps
going: every node also *inherits* the interval sets of its non-tree DAG
children, producing an exact reachability index --

    ``v`` dominates ``w``  iff  ``post(w)`` lies in one of ``v``'s
    intervals (and ``v != w``).

Because postorder numbers are dense integers, adjacent intervals merge
losslessly (``[1,2] + [3,4] == [1,4]``), which keeps the sets small.

This realises the paper's future-work item on "the tradeoffs of using
different domain mapping functions": the closure cannot be indexed by an
R-tree (variable arity), but it *can* replace the expensive native
set-containment comparisons inside ``CompareDominance`` with a handful of
integer comparisons -- see ``native_mode="closure"`` on
:class:`~repro.transform.dataset.TransformedDataset` and the
``mapping-tradeoff`` benchmark.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable

from repro.posets.encoding import IntervalEncoding
from repro.posets.spanning_tree import SpanningForest, default_spanning_forest

__all__ = ["IntervalClosure"]


def _merge(intervals: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Merge overlapping/adjacent integer intervals (input unsorted)."""
    if not intervals:
        return ()
    intervals.sort()
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = out[-1]
        if lo <= last_hi + 1:  # dense integers: adjacency merges losslessly
            if hi > last_hi:
                out[-1] = (last_lo, hi)
        else:
            out.append((lo, hi))
    return tuple(out)


class IntervalClosure:
    """Exact reachability index over one spanning forest's postorders."""

    __slots__ = ("forest", "encoding", "_intervals", "_post")

    def __init__(self, forest: SpanningForest, encoding: IntervalEncoding | None = None) -> None:
        self.forest = forest
        self.encoding = encoding if encoding is not None else IntervalEncoding(forest)
        poset = forest.poset
        n = len(poset)
        intervals: list[tuple[tuple[int, int], ...]] = [()] * n
        for i in reversed(poset.topological_order):
            own = [self.encoding.interval_ix(i)]
            for child in poset.children_ix(i):
                own.extend(intervals[child])
            intervals[i] = _merge(own)
        self._intervals = tuple(intervals)
        self._post = tuple(self.encoding.interval_ix(i)[1] for i in range(n))

    # ------------------------------------------------------------------
    def intervals_ix(self, i: int) -> tuple[tuple[int, int], ...]:
        """The merged interval set of node index ``i``."""
        return self._intervals[i]

    def intervals(self, value: Hashable) -> tuple[tuple[int, int], ...]:
        """The merged interval set of a domain value."""
        return self._intervals[self.forest.poset.index(value)]

    def covers_ix(self, i: int, post: int) -> bool:
        """Whether ``post`` lies inside one of ``i``'s intervals."""
        ivs = self._intervals[i]
        # Binary search over the (disjoint, sorted) interval list.
        k = bisect_right(ivs, (post, float("inf"))) - 1
        return k >= 0 and ivs[k][0] <= post <= ivs[k][1]

    def reachable_ix(self, i: int, j: int) -> bool:
        """Exact strict dominance: ``i`` dominates ``j``."""
        return i != j and self.covers_ix(i, self._post[j])

    def reachable(self, v: Hashable, w: Hashable) -> bool:
        """Value-level exact strict dominance test."""
        poset = self.forest.poset
        return self.reachable_ix(poset.index(v), poset.index(w))

    # ------------------------------------------------------------------
    @property
    def average_intervals(self) -> float:
        """Mean interval-set size (the scheme's space overhead)."""
        if not self._intervals:
            return 0.0
        return sum(len(s) for s in self._intervals) / len(self._intervals)

    @property
    def max_intervals(self) -> int:
        """Largest interval-set size in the domain."""
        return max((len(s) for s in self._intervals), default=0)

    def verify_exact(self) -> bool:
        """Exhaustively check closure == reachability (test helper)."""
        poset = self.forest.poset
        n = len(poset)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if self.reachable_ix(i, j) != poset.dominates_ix(i, j):
                    return False
        return True

    @classmethod
    def for_poset(cls, poset) -> "IntervalClosure":
        """Build over the default spanning forest."""
        return cls(default_spanning_forest(poset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalClosure(n={len(self._intervals)}, "
            f"avg_intervals={self.average_intervals:.2f})"
        )
