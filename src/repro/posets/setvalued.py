"""Set-valued domains isomorphic to a poset (paper Section 5, "Data Sets").

The experiments use *set-valued attributes where dominance is based on set
containment*, with "the domain of the set-valued attribute values ...
derived from the constructed poset".  :class:`SetValuedDomain` performs
that derivation: each poset value ``v`` is assigned the set of tokens of
``v`` and all its descendants, which makes proper set containment exactly
the strict partial order::

    set(v) > set(w)  iff  v dominates w.

Native (original-domain) dominance comparisons then operate on real
``frozenset`` objects, reproducing the paper's cost model where set
comparisons are markedly more expensive than the two-integer m-dominance
checks -- and where taller posets mean larger sets and costlier compares
(Section 5.2).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

from repro.exceptions import PosetError, UnknownValueError
from repro.posets.poset import Poset

__all__ = ["SetValuedDomain"]


class SetValuedDomain:
    """Assignment of a concrete set to every poset value."""

    __slots__ = ("poset", "_sets", "_by_index")

    def __init__(self, poset: Poset, sets: Mapping[Hashable, frozenset]) -> None:
        if set(sets) != set(poset.values):
            raise PosetError("set assignment must cover exactly the poset domain")
        self.poset = poset
        self._sets = {v: frozenset(s) for v, s in sets.items()}
        self._by_index = tuple(self._sets[poset.value(i)] for i in range(len(poset)))

    @classmethod
    def from_poset(cls, poset: Poset) -> "SetValuedDomain":
        """Canonical derivation: ``set(v) = {token(u) : u in {v} + desc(v)}``.

        Tokens are the node indices themselves, so every value's set
        contains its own token -- which is what makes incomparable values
        map to incomparable sets.
        """
        sets = {
            poset.value(i): frozenset(poset.descendants_ix(i) | {i})
            for i in range(len(poset))
        }
        return cls(poset, sets)

    # ------------------------------------------------------------------
    def set_of(self, value: Hashable) -> frozenset:
        """The concrete set assigned to ``value``."""
        try:
            return self._sets[value]
        except KeyError:
            raise UnknownValueError(value) from None

    def set_of_ix(self, i: int) -> frozenset:
        """The concrete set assigned to node index ``i``."""
        return self._by_index[i]

    def dominates(self, v: Hashable, w: Hashable) -> bool:
        """Strict dominance via proper set containment."""
        return self.set_of(v) > self.set_of(w)

    @property
    def average_set_size(self) -> float:
        """Mean cardinality (grows with poset height; see Section 5.2)."""
        if not self._by_index:
            return 0.0
        return sum(len(s) for s in self._by_index) / len(self._by_index)

    @property
    def max_set_size(self) -> int:
        """Largest cardinality in the domain."""
        return max((len(s) for s in self._by_index), default=0)

    def verify_isomorphism(self) -> bool:
        """Exhaustively check containment == order (test helper, O(n^2))."""
        poset = self.poset
        n = len(poset)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if (self._by_index[i] > self._by_index[j]) != poset.dominates_ix(i, j):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SetValuedDomain(n={len(self.poset)}, avg|s|={self.average_set_size:.1f})"
