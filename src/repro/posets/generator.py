"""Synthetic poset generator (paper Section 5, "Data Sets").

Reproduces the paper's construction: *"The poset ... is created by first
generating a forest of trees, by varying the number of trees, their
heights and branching factors.  Next, the poset is then formed by randomly
connecting nodes among the trees, such that two nodes can be linked only
if their levels differ by one.  The density of edges in the poset is
controlled by the number of iterations of adding inter-tree edges and the
probability of adding an edge for a node."*

Because every edge (tree or inter-tree) connects adjacent levels, the
result is automatically acyclic *and* transitively reduced (no path of
length >= 2 can join adjacent levels), so the DAG is a valid Hasse
diagram.

Node labels are the integers ``0 .. num_nodes-1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.exceptions import WorkloadError
from repro.posets.poset import Poset

__all__ = [
    "PosetGeneratorConfig",
    "generate_poset",
    "default_poset_config",
    "large_poset_config",
    "tall_poset_config",
]


@dataclass(frozen=True)
class PosetGeneratorConfig:
    """Parameters of the random poset construction.

    Attributes
    ----------
    num_nodes:
        Total domain size (paper defaults: 450, varied to 1000).
    height:
        Number of levels (paper defaults: 6, varied to 13).
    num_trees:
        Trees in the initial forest.
    max_branching:
        Cap on tree children per node.
    edge_iterations:
        Rounds of inter-tree edge addition (density control).
    edge_probability:
        Per-node probability of gaining an inter-tree edge each round.
    seed:
        RNG seed (the generator is fully deterministic given the config).
    connect:
        Add a minimal number of extra level-respecting edges afterwards so
        the DAG is weakly connected when possible (the paper assumes a
        single connected component).
    """

    num_nodes: int = 450
    height: int = 6
    num_trees: int = 5
    max_branching: int = 8
    edge_iterations: int = 2
    edge_probability: float = 0.3
    seed: int = 42
    connect: bool = True

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on inconsistent parameters."""
        if self.num_nodes < 1:
            raise WorkloadError("num_nodes must be positive")
        if self.height < 1:
            raise WorkloadError("height must be positive")
        if self.num_trees < 1:
            raise WorkloadError("num_trees must be positive")
        if self.num_nodes < self.num_trees * self.height:
            raise WorkloadError(
                f"{self.num_nodes} nodes cannot form {self.num_trees} trees "
                f"of height {self.height}"
            )
        if self.max_branching < 1:
            raise WorkloadError("max_branching must be positive")
        if not 0.0 <= self.edge_probability <= 1.0:
            raise WorkloadError("edge_probability must be within [0, 1]")
        if self.edge_iterations < 0:
            raise WorkloadError("edge_iterations must be non-negative")


def default_poset_config(**overrides) -> PosetGeneratorConfig:
    """Paper default: 450 nodes, 6 levels."""
    return replace(PosetGeneratorConfig(), **overrides)


def large_poset_config(**overrides) -> PosetGeneratorConfig:
    """Fig. 11(a) variation: 1000 nodes, 6 levels."""
    return replace(PosetGeneratorConfig(num_nodes=1000), **overrides)


def tall_poset_config(**overrides) -> PosetGeneratorConfig:
    """Fig. 11(b) variation: tall (13 levels) and relatively sparse."""
    return replace(
        PosetGeneratorConfig(height=13, edge_iterations=1, edge_probability=0.15),
        **overrides,
    )


def generate_poset(config: PosetGeneratorConfig | None = None, **overrides) -> Poset:
    """Generate a random poset according to ``config``.

    Keyword overrides are applied on top of the (default) config, so
    ``generate_poset(num_nodes=100, height=4)`` works directly.
    """
    config = replace(config or PosetGeneratorConfig(), **overrides)
    config.validate()
    rng = random.Random(config.seed)

    level: list[int] = []
    tree_of: list[int] = []
    child_count: list[int] = []
    edges: list[tuple[int, int]] = []

    def new_node(lvl: int, tree: int) -> int:
        node = len(level)
        level.append(lvl)
        tree_of.append(tree)
        child_count.append(0)
        return node

    # --- forest of trees: a full-height spine per tree guarantees the
    # requested height, remaining nodes attach below random parents.
    spine_tip: list[int] = []
    for tree in range(config.num_trees):
        prev = new_node(0, tree)
        for lvl in range(1, config.height):
            node = new_node(lvl, tree)
            edges.append((prev, node))
            child_count[prev] += 1
            prev = node
        spine_tip.append(prev)

    attachable: list[int] = [
        i for i in range(len(level)) if level[i] < config.height - 1
    ]
    while len(level) < config.num_nodes:
        if config.height == 1:
            # Degenerate single-level posets are antichains: every extra
            # node becomes its own trivial tree.
            new_node(0, len(spine_tip) + len(level))
            continue
        # Re-filter lazily: nodes at full branching leave the pool.
        candidates = [i for i in attachable if child_count[i] < config.max_branching]
        if not candidates:
            # Every prospective parent is saturated; widen the pool by
            # allowing the freshly added nodes (they are in `attachable`
            # already) -- if still empty, branching is impossible.
            raise WorkloadError(
                "max_branching too small to place all nodes; increase it"
            )
        parent = rng.choice(candidates)
        node = new_node(level[parent] + 1, tree_of[parent])
        edges.append((parent, node))
        child_count[parent] += 1
        if level[node] < config.height - 1:
            attachable.append(node)

    n = len(level)
    by_level: dict[int, list[int]] = {}
    for i in range(n):
        by_level.setdefault(level[i], []).append(i)

    existing = set(edges)

    # --- random inter-tree edges between adjacent levels.
    for _ in range(config.edge_iterations):
        order = list(range(n))
        rng.shuffle(order)
        for v in order:
            if rng.random() >= config.edge_probability:
                continue
            targets = [
                w
                for w in by_level.get(level[v] + 1, ())
                if tree_of[w] != tree_of[v] and (v, w) not in existing
            ]
            if not targets:
                continue
            w = rng.choice(targets)
            edges.append((v, w))
            existing.add((v, w))

    poset = Poset(range(n), edges)

    if config.connect and not poset.is_connected():
        poset = _connect_components(poset, level, rng, existing)
    return poset


def _connect_components(
    poset: Poset,
    level: list[int],
    rng: random.Random,
    existing: set[tuple[int, int]],
) -> Poset:
    """Join weak components with level-respecting edges where possible."""
    n = len(poset)
    comp = [-1] * n
    num_comp = 0
    for start in range(n):
        if comp[start] != -1:
            continue
        stack = [start]
        comp[start] = num_comp
        while stack:
            i = stack.pop()
            for j in poset.children_ix(i) + poset.parents_ix(i):
                if comp[j] == -1:
                    comp[j] = num_comp
                    stack.append(j)
        num_comp += 1
    if num_comp == 1:
        return poset

    edges = list(poset.edges())
    merged = list(range(num_comp))

    def find(c: int) -> int:
        while merged[c] != c:
            merged[c] = merged[merged[c]]
            c = merged[c]
        return c

    nodes = list(range(n))
    rng.shuffle(nodes)
    for v in nodes:
        for w in nodes:
            if find(comp[v]) == find(comp[w]):
                continue
            if level[w] == level[v] + 1 and (v, w) not in existing:
                edges.append((v, w))
                existing.add((v, w))
                merged[find(comp[w])] = find(comp[v])
    # Height-1 forests (antichains of roots) cannot be connected with
    # level-respecting edges; return the best effort.
    return Poset(range(n), edges)
