"""Interval (two-integer) domain encoding of Section 4.3.

Each node ``v`` of a spanning forest gets the interval
``f(v) = [low(v), post(v)]`` where ``post(v)`` is its postorder number
(1-based) and ``low(v)`` is the smallest postorder number in its subtree.
The *domain mapping property* then holds:

    ``f(v)`` contains ``f(v')``  iff  a forest path runs from ``v`` to
    ``v'`` (or ``v = v'``),

which implies native dominance but is generally weaker than it (false
positives arise exactly when the only witnessing paths use excluded DAG
edges).  The scheme is adapted from Agrawal, Borgida and Jagadish
(SIGMOD'89), as in the paper.

For indexing, intervals are also exposed in *normalised minimisation
coordinates* ``(low, n - post)``: interval containment is then ordinary
coordinate-wise ``<=``, so the R-tree and the BBS machinery treat the two
integers like any totally-ordered attributes to be minimised.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.posets.poset import Poset
from repro.posets.spanning_tree import SpanningForest, default_spanning_forest

__all__ = ["IntervalEncoding", "encode"]


class IntervalEncoding:
    """Postorder interval labels for one spanning forest."""

    __slots__ = ("forest", "_post", "_low", "_n")

    def __init__(self, forest: SpanningForest) -> None:
        self.forest = forest
        n = len(forest.poset)
        post = [0] * n
        low = [0] * n
        for number, node in enumerate(forest.postorder(), start=1):
            post[node] = number
            kids = forest.children_of(node)
            low[node] = min((low[k] for k in kids), default=number)
        self._post = tuple(post)
        self._low = tuple(low)
        self._n = n

    # ------------------------------------------------------------------
    @property
    def poset(self) -> Poset:
        """The encoded partial order."""
        return self.forest.poset

    @property
    def domain_size(self) -> int:
        """Number of encoded values (also the largest postorder number)."""
        return self._n

    def interval_ix(self, i: int) -> tuple[int, int]:
        """Interval ``[low, post]`` of node index ``i``."""
        return (self._low[i], self._post[i])

    def interval(self, value: Hashable) -> tuple[int, int]:
        """Interval ``[low, post]`` of a domain value."""
        return self.interval_ix(self.poset.index(value))

    def normalized_ix(self, i: int) -> tuple[int, int]:
        """Minimisation coordinates ``(low, n - post)`` of node index ``i``.

        ``u`` m-dominates ``w`` per attribute exactly when both normalised
        coordinates of ``u`` are ``<=`` those of ``w``.
        """
        return (self._low[i], self._n - self._post[i])

    def normalized(self, value: Hashable) -> tuple[int, int]:
        """Minimisation coordinates of a domain value."""
        return self.normalized_ix(self.poset.index(value))

    # ------------------------------------------------------------------
    def contains_ix(self, i: int, j: int) -> bool:
        """``True`` when ``f(i)`` contains ``f(j)`` (equality included)."""
        return self._low[i] <= self._low[j] and self._post[j] <= self._post[i]

    def strictly_contains_ix(self, i: int, j: int) -> bool:
        """``True`` when ``f(i)`` properly contains ``f(j)``."""
        return i != j and self.contains_ix(i, j)

    def contains(self, v: Hashable, w: Hashable) -> bool:
        """Value-level containment test ``f(v) >= f(w)``."""
        return self.contains_ix(self.poset.index(v), self.poset.index(w))

    def strictly_contains(self, v: Hashable, w: Hashable) -> bool:
        """Value-level proper containment test."""
        return self.strictly_contains_ix(self.poset.index(v), self.poset.index(w))

    def mapping(self) -> dict[Hashable, tuple[int, int]]:
        """The full ``value -> [low, post]`` mapping (for inspection)."""
        poset = self.poset
        return {poset.value(i): self.interval_ix(i) for i in range(self._n)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntervalEncoding(n={self._n})"


def encode(poset: Poset, forest: SpanningForest | None = None) -> IntervalEncoding:
    """Encode ``poset`` over ``forest`` (default spanning forest if omitted)."""
    return IntervalEncoding(forest or default_spanning_forest(poset))
