"""Dominance classification and uncovered levels (Sections 4.5.1, 4.6.1).

Relative to a spanning forest ``ST`` of the poset DAG ``G``:

* a value is **completely covered** when *every* directed incoming path in
  ``G`` also lies in ``ST`` (equivalently: it has at most one cover parent
  and that parent is itself completely covered);
* a value is **completely covering** when *every* directed outgoing path
  in ``G`` also lies in ``ST`` (equivalently: each outgoing cover edge was
  retained and each child is itself completely covering);
* the **uncovered level** ``L(v)`` is the maximum number of non-forest
  edges on any incoming path (Eq. 1 of the paper); ``L(v) == 0`` iff the
  value is completely covered.

Values are tagged ``(covered, covering)`` with ``c``/``p`` components; the
same tags classify whole records in :mod:`repro.core.categories`.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.categories import Category
from repro.posets.spanning_tree import SpanningForest

__all__ = ["DominanceClassification", "classify"]


class DominanceClassification:
    """Covered/covering flags and uncovered levels for one spanning forest."""

    __slots__ = ("forest", "_covered", "_covering", "_level")

    def __init__(self, forest: SpanningForest) -> None:
        self.forest = forest
        poset = forest.poset
        n = len(poset)

        covered = [False] * n
        level = [0] * n
        for i in poset.topological_order:
            parents = poset.parents_ix(i)
            if not parents:
                covered[i] = True
                level[i] = 0
                continue
            covered[i] = len(parents) == 1 and covered[parents[0]]
            level[i] = max(
                level[p] + (0 if forest.contains_edge(p, i) else 1) for p in parents
            )

        covering = [True] * n
        for i in reversed(poset.topological_order):
            for child in poset.children_ix(i):
                if not forest.contains_edge(i, child) or not covering[child]:
                    covering[i] = False
                    break

        self._covered = tuple(covered)
        self._covering = tuple(covering)
        self._level = tuple(level)

    # ------------------------------------------------------------------
    def is_completely_covered_ix(self, i: int) -> bool:
        """Covered flag of node index ``i``."""
        return self._covered[i]

    def is_completely_covering_ix(self, i: int) -> bool:
        """Covering flag of node index ``i``."""
        return self._covering[i]

    def uncovered_level_ix(self, i: int) -> int:
        """Uncovered level ``L`` of node index ``i``."""
        return self._level[i]

    def category_ix(self, i: int) -> Category:
        """The ``(covered, covering)`` category of node index ``i``."""
        return Category.of(self._covered[i], self._covering[i])

    def is_completely_covered(self, value: Hashable) -> bool:
        """Covered flag of a domain value."""
        return self._covered[self.forest.poset.index(value)]

    def is_completely_covering(self, value: Hashable) -> bool:
        """Covering flag of a domain value."""
        return self._covering[self.forest.poset.index(value)]

    def uncovered_level(self, value: Hashable) -> int:
        """Uncovered level ``L`` of a domain value."""
        return self._level[self.forest.poset.index(value)]

    def category(self, value: Hashable) -> Category:
        """The ``(covered, covering)`` category of a domain value."""
        return self.category_ix(self.forest.poset.index(value))

    # ------------------------------------------------------------------
    @property
    def partially_covered_values(self) -> frozenset[Hashable]:
        """Values with at least one incoming path outside the forest."""
        poset = self.forest.poset
        return frozenset(poset.value(i) for i, c in enumerate(self._covered) if not c)

    @property
    def partially_covering_values(self) -> frozenset[Hashable]:
        """Values with at least one outgoing path outside the forest."""
        poset = self.forest.poset
        return frozenset(poset.value(i) for i, c in enumerate(self._covering) if not c)

    @property
    def max_uncovered_level(self) -> int:
        """Largest uncovered level over the domain."""
        return max(self._level, default=0)

    def category_counts(self) -> dict[Category, int]:
        """Number of values per category (drives MinPC/MaxPC evaluation)."""
        counts = {cat: 0 for cat in Category}
        for i in range(len(self._covered)):
            counts[self.category_ix(i)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = self.category_counts()
        body = ", ".join(f"{cat.name}={n}" for cat, n in counts.items())
        return f"DominanceClassification({body})"


def classify(forest: SpanningForest) -> DominanceClassification:
    """Classify every value of ``forest``'s poset (convenience wrapper)."""
    return DominanceClassification(forest)
