"""Partially-ordered domain substrate.

This subpackage implements everything the paper needs about posets:

* :class:`~repro.posets.poset.Poset` -- an immutable DAG representation of
  a partial order with reachability / dominance queries.
* :mod:`~repro.posets.builder` -- convenience constructors (chains, trees,
  antichains, from explicit relations, from set families, ...).
* :mod:`~repro.posets.generator` -- the synthetic poset generator of the
  paper's performance study (forest of trees plus random level-respecting
  inter-tree edges).
* :mod:`~repro.posets.setvalued` -- derives a set-valued domain from a
  poset so that set containment is isomorphic to the partial order.
* :mod:`~repro.posets.spanning_tree` -- spanning-tree (forest) selection
  over the poset DAG.
* :mod:`~repro.posets.encoding` -- the interval (two-integer) encoding of
  Section 4.3 (postorder labelling of a spanning tree, after
  Agrawal/Borgida/Jagadish SIGMOD'89).
* :mod:`~repro.posets.classification` -- dominance classification
  (completely/partially covered & covering) and uncovered levels
  (Sections 4.5.1 and 4.6.1).
* :mod:`~repro.posets.optimize` -- the MinPC / MaxPC spanning-tree
  optimisation strategies of Section 4.7.
"""

from repro.posets.poset import Poset
from repro.posets.builder import (
    antichain,
    chain,
    diamond,
    from_relations,
    from_set_family,
    paper_example_poset,
    powerset_lattice,
    random_tree,
)
from repro.posets.spanning_tree import SpanningForest, default_spanning_forest
from repro.posets.encoding import IntervalEncoding, encode
from repro.posets.closure import IntervalClosure
from repro.posets.analysis import (
    chain_partition,
    comparability_ratio,
    linear_extension,
    longest_chain,
    maximum_antichain,
    mirsky_decomposition,
    width,
)
from repro.posets.classification import DominanceClassification, classify
from repro.posets.optimize import SpanningTreeStrategy, optimize_spanning_forest
from repro.posets.generator import PosetGeneratorConfig, generate_poset
from repro.posets.setvalued import SetValuedDomain

__all__ = [
    "Poset",
    "antichain",
    "chain",
    "diamond",
    "from_relations",
    "from_set_family",
    "paper_example_poset",
    "powerset_lattice",
    "random_tree",
    "SpanningForest",
    "default_spanning_forest",
    "IntervalEncoding",
    "encode",
    "IntervalClosure",
    "comparability_ratio",
    "longest_chain",
    "mirsky_decomposition",
    "width",
    "maximum_antichain",
    "chain_partition",
    "linear_extension",
    "DominanceClassification",
    "classify",
    "SpanningTreeStrategy",
    "optimize_spanning_forest",
    "PosetGeneratorConfig",
    "generate_poset",
    "SetValuedDomain",
]
