"""Immutable DAG representation of a partial order.

The paper (Section 4.2) represents each partially-ordered domain
``(D_i, <=_i)`` by a DAG ``G_i = (D_i, E_i)`` whose edges are the *cover*
relation: ``(v, w)`` is an edge when ``w < v`` and no ``x`` satisfies
``w < x < v``.  Edges therefore point from the *dominating* (better) value
to the *dominated* (worse) value, and ``v`` dominates ``w`` exactly when a
directed path leads from ``v`` to ``w``.

:class:`Poset` stores the DAG with integer indices internally and exposes
dominance tests, reachability sets, topological orders and structural
metadata (levels, heights, maximal/minimal values) used throughout the
library.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Optional

from repro.exceptions import CyclicPosetError, PosetError, UnknownValueError

__all__ = ["Poset"]


class Poset:
    """A finite partial order represented by its covering DAG.

    Parameters
    ----------
    values:
        The domain values.  Any hashable, distinct objects.
    edges:
        Directed cover edges ``(v, w)`` meaning *v dominates w* (``w < v``).
        Duplicate edges are ignored; self-loops and cycles raise
        :class:`~repro.exceptions.CyclicPosetError`.

    Notes
    -----
    The class is deliberately immutable: every derived structure (spanning
    forests, encodings, classifications) caches against it safely.
    """

    __slots__ = (
        "_values",
        "_index",
        "_children",
        "_parents",
        "_n",
        "_topo",
        "_descendants",
        "_ancestors",
        "_levels",
        "_hash",
    )

    def __init__(
        self,
        values: Iterable[Hashable],
        edges: Iterable[tuple[Hashable, Hashable]],
    ) -> None:
        values = list(values)
        if len(set(values)) != len(values):
            raise PosetError("poset domain values must be distinct")
        self._values: tuple[Hashable, ...] = tuple(values)
        self._index: dict[Hashable, int] = {v: i for i, v in enumerate(values)}
        self._n = len(values)
        children: list[list[int]] = [[] for _ in range(self._n)]
        parents: list[list[int]] = [[] for _ in range(self._n)]
        seen: set[tuple[int, int]] = set()
        for v, w in edges:
            if v not in self._index:
                raise UnknownValueError(v)
            if w not in self._index:
                raise UnknownValueError(w)
            a, b = self._index[v], self._index[w]
            if a == b:
                raise CyclicPosetError([v, w])
            if (a, b) in seen:
                continue
            seen.add((a, b))
            children[a].append(b)
            parents[b].append(a)
        self._children: tuple[tuple[int, ...], ...] = tuple(tuple(c) for c in children)
        self._parents: tuple[tuple[int, ...], ...] = tuple(tuple(p) for p in parents)
        self._topo: tuple[int, ...] = self._toposort()
        self._descendants: Optional[tuple[frozenset[int], ...]] = None
        self._ancestors: Optional[tuple[frozenset[int], ...]] = None
        self._levels: Optional[tuple[int, ...]] = None
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _toposort(self) -> tuple[int, ...]:
        """Kahn topological order (dominators first); detects cycles."""
        indeg = [len(p) for p in self._parents]
        stack = [i for i in range(self._n) if indeg[i] == 0]
        order: list[int] = []
        while stack:
            node = stack.pop()
            order.append(node)
            for child in self._children[node]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    stack.append(child)
        if len(order) != self._n:
            cycle = self._find_cycle()
            raise CyclicPosetError([self._values[i] for i in cycle])
        return tuple(order)

    def _find_cycle(self) -> list[int]:
        """Locate one directed cycle for error reporting."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * self._n
        stack_path: list[int] = []

        def visit(start: int) -> Optional[list[int]]:
            todo: list[tuple[int, Iterator[int]]] = [(start, iter(self._children[start]))]
            color[start] = GREY
            stack_path.append(start)
            while todo:
                node, it = todo[-1]
                advanced = False
                for child in it:
                    if color[child] == GREY:
                        pos = stack_path.index(child)
                        return stack_path[pos:] + [child]
                    if color[child] == WHITE:
                        color[child] = GREY
                        stack_path.append(child)
                        todo.append((child, iter(self._children[child])))
                        advanced = True
                        break
                if not advanced:
                    todo.pop()
                    stack_path.pop()
                    color[node] = BLACK
            return None

        for i in range(self._n):
            if color[i] == WHITE:
                found = visit(i)
                if found is not None:
                    return found
        return []  # pragma: no cover - only called when a cycle exists

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Poset(n={self._n}, edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poset):
            return NotImplemented
        return self._values == other._values and self._children == other._children

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._values, self._children))
        return self._hash

    @property
    def values(self) -> tuple[Hashable, ...]:
        """Domain values in construction order."""
        return self._values

    @property
    def num_edges(self) -> int:
        """Number of (deduplicated) cover edges."""
        return sum(len(c) for c in self._children)

    def index(self, value: Hashable) -> int:
        """Internal integer index of ``value`` (raises on unknown values)."""
        try:
            return self._index[value]
        except KeyError:
            raise UnknownValueError(value) from None

    def value(self, index: int) -> Hashable:
        """Domain value at internal ``index``."""
        return self._values[index]

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate cover edges as ``(dominator, dominated)`` value pairs."""
        for i, kids in enumerate(self._children):
            for j in kids:
                yield self._values[i], self._values[j]

    # -- index-level structure (used by the encoding / classification) --
    def children_ix(self, i: int) -> tuple[int, ...]:
        """Indices directly dominated by node index ``i``."""
        return self._children[i]

    def parents_ix(self, i: int) -> tuple[int, ...]:
        """Indices directly dominating node index ``i``."""
        return self._parents[i]

    @property
    def topological_order(self) -> tuple[int, ...]:
        """Indices in a topological order (every parent before its children)."""
        return self._topo

    # ------------------------------------------------------------------
    # Reachability / dominance
    # ------------------------------------------------------------------
    def _compute_descendants(self) -> tuple[frozenset[int], ...]:
        if self._descendants is None:
            desc: list[frozenset[int]] = [frozenset()] * self._n
            for i in reversed(self._topo):
                acc: set[int] = set()
                for child in self._children[i]:
                    acc.add(child)
                    acc |= desc[child]
                desc[i] = frozenset(acc)
            self._descendants = tuple(desc)
        return self._descendants

    def _compute_ancestors(self) -> tuple[frozenset[int], ...]:
        if self._ancestors is None:
            anc: list[frozenset[int]] = [frozenset()] * self._n
            for i in self._topo:
                acc: set[int] = set()
                for parent in self._parents[i]:
                    acc.add(parent)
                    acc |= anc[parent]
                anc[i] = frozenset(acc)
            self._ancestors = tuple(anc)
        return self._ancestors

    def descendants_ix(self, i: int) -> frozenset[int]:
        """All node indices strictly dominated by index ``i``."""
        return self._compute_descendants()[i]

    def ancestors_ix(self, i: int) -> frozenset[int]:
        """All node indices strictly dominating index ``i``."""
        return self._compute_ancestors()[i]

    def descendants(self, value: Hashable) -> frozenset[Hashable]:
        """All values strictly dominated by ``value``."""
        return frozenset(self._values[j] for j in self.descendants_ix(self.index(value)))

    def ancestors(self, value: Hashable) -> frozenset[Hashable]:
        """All values strictly dominating ``value``."""
        return frozenset(self._values[j] for j in self.ancestors_ix(self.index(value)))

    def dominates(self, v: Hashable, w: Hashable) -> bool:
        """``True`` when ``v`` strictly dominates ``w`` (``w < v``)."""
        return self.index(w) in self.descendants_ix(self.index(v))

    def dominates_ix(self, i: int, j: int) -> bool:
        """Index-level strict dominance test."""
        return j in self._compute_descendants()[i]

    def leq(self, w: Hashable, v: Hashable) -> bool:
        """``True`` when ``w <= v`` in the partial order."""
        return w == v or self.dominates(v, w)

    def comparable(self, v: Hashable, w: Hashable) -> bool:
        """``True`` when ``v`` and ``w`` are comparable (Section 4.2)."""
        return v == w or self.dominates(v, w) or self.dominates(w, v)

    # ------------------------------------------------------------------
    # Structural metadata
    # ------------------------------------------------------------------
    @property
    def maximal_ix(self) -> tuple[int, ...]:
        """Indices of maximal values (no dominating value)."""
        return tuple(i for i in range(self._n) if not self._parents[i])

    @property
    def minimal_ix(self) -> tuple[int, ...]:
        """Indices of minimal values (no dominated value)."""
        return tuple(i for i in range(self._n) if not self._children[i])

    @property
    def maximal_values(self) -> tuple[Hashable, ...]:
        """Maximal values of the order."""
        return tuple(self._values[i] for i in self.maximal_ix)

    @property
    def minimal_values(self) -> tuple[Hashable, ...]:
        """Minimal values of the order."""
        return tuple(self._values[i] for i in self.minimal_ix)

    @property
    def levels(self) -> tuple[int, ...]:
        """Level of each node index: longest edge-path from a maximal value."""
        if self._levels is None:
            lvl = [0] * self._n
            for i in self._topo:
                for child in self._children[i]:
                    if lvl[i] + 1 > lvl[child]:
                        lvl[child] = lvl[i] + 1
            self._levels = tuple(lvl)
        return self._levels

    @property
    def height(self) -> int:
        """Number of levels (1 for an antichain)."""
        if self._n == 0:
            return 0
        return max(self.levels) + 1

    def is_connected(self) -> bool:
        """Weak (undirected) connectivity of the DAG."""
        if self._n <= 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for j in self._children[i] + self._parents[i]:
                if j not in seen:
                    seen.add(j)
                    stack.append(j)
        return len(seen) == self._n

    def is_tree(self) -> bool:
        """``True`` when every node has at most one parent (a forest)."""
        return all(len(p) <= 1 for p in self._parents)

    def is_total_order(self) -> bool:
        """``True`` when the order is a chain."""
        desc = self._compute_descendants()
        return all(len(desc[i]) + len(self.ancestors_ix(i)) == self._n - 1 for i in range(self._n))

    # ------------------------------------------------------------------
    # Derived posets
    # ------------------------------------------------------------------
    def transitive_reduction(self) -> "Poset":
        """Return the poset restricted to its cover (Hasse) edges.

        Useful when callers supply transitively-redundant edges: the
        encoding and classification of the paper assume cover edges only.
        """
        desc = self._compute_descendants()
        keep: list[tuple[Hashable, Hashable]] = []
        for i in range(self._n):
            kids = self._children[i]
            for j in kids:
                # (i, j) is redundant if some other child of i reaches j.
                if any(k != j and j in desc[k] for k in kids):
                    continue
                keep.append((self._values[i], self._values[j]))
        return Poset(self._values, keep)

    def is_hasse(self) -> bool:
        """``True`` when no edge is implied by a longer path."""
        return self.num_edges == self.transitive_reduction().num_edges

    def dual(self) -> "Poset":
        """Return the order-theoretic dual (all edges reversed)."""
        return Poset(self._values, [(w, v) for v, w in self.edges()])

    def restrict(self, values: Sequence[Hashable]) -> "Poset":
        """Induced suborder on ``values`` (cover edges recomputed)."""
        chosen = [v for v in self._values if v in set(values)]
        idx = {self.index(v) for v in chosen}
        desc = self._compute_descendants()
        rels: list[tuple[Hashable, Hashable]] = []
        for i in idx:
            for j in idx:
                if j in desc[i]:
                    rels.append((self._values[i], self._values[j]))
        return Poset(chosen, rels).transitive_reduction()
