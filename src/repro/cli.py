"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``algorithms``
    List the registered skyline algorithms.
``demo``
    Run the hotel/amenity quickstart on built-in data.
``generate``
    Generate a Table-1-style synthetic workload and save it as JSON.
``query``
    Answer a skyline query over a saved workload.
``experiment``
    Run one of the paper's experiments and print its figure tables.
``bench-kernels``
    Side-by-side ``explain()`` of the python vs numpy dominance
    backends on a generated workload.
``serve-bench``
    Seeded multi-client workload replay against the concurrent
    :class:`~repro.serving.server.SkylineServer` (throughput, p50/p99,
    JSON artifact; see docs/serving.md).
``serve``
    Run the asyncio network front-end: remote clients connect over TCP
    and receive skyline answers progressively, stratum by stratum
    (see docs/network.md).
``net-bench``
    Seeded multi-connection open-loop benchmark of the network
    front-end: throughput, p50/p99, time-to-first-point vs.
    time-to-done, optional disconnect-storm chaos (JSON artifact;
    see docs/network.md).
``replay``
    Trace-driven capacity-envelope sweep: seeded Poisson / bursty /
    diurnal arrival traces replayed at a ladder of rate multipliers
    (optionally under chaos fault injection), reporting p50/p99,
    shed/reject counts and degradation behaviour per cell
    (see docs/overload.md).
``bench-parallel``
    Worker-count speedup curve of the sharded process-pool backend
    (parity-checked against the serial engine; see docs/parallel.md).
``bench-views``
    Hit-rate vs. speedup curves of the materialized-view result cache
    under repeated-query workloads (parity-checked against uncached
    recomputes; see docs/views.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.algorithms.base import available_algorithms
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_run_table, format_summary
from repro.engine import SkylineEngine
from repro.io import load_workload, save_workload
from repro.posets.generator import PosetGeneratorConfig
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skylines with partially-ordered domains (SIGMOD 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algorithms", help="list registered algorithms")

    sub.add_parser("demo", help="run the hotel/amenity quickstart")

    gen = sub.add_parser("generate", help="generate a synthetic workload JSON")
    gen.add_argument("output", help="output JSON path")
    gen.add_argument("--size", type=int, default=10_000, help="number of records")
    gen.add_argument("--num-total", type=int, default=2)
    gen.add_argument("--num-partial", type=int, default=1)
    gen.add_argument(
        "--correlation",
        choices=["independent", "correlated", "anti-correlated"],
        default="independent",
    )
    gen.add_argument("--poset-nodes", type=int, default=450)
    gen.add_argument("--poset-height", type=int, default=6)
    gen.add_argument("--seed", type=int, default=7)

    query = sub.add_parser("query", help="skyline of a saved workload")
    query.add_argument("workload", help="workload JSON path")
    query.add_argument("--algorithm", default="sdc+", choices=sorted(available_algorithms()))
    query.add_argument(
        "--strategy",
        default="default",
        choices=["default", "random", "minpc", "maxpc"],
    )
    query.add_argument("--limit", type=int, default=20, help="answers to print (0 = all)")
    query.add_argument("--stats", action="store_true", help="print comparison counters")
    query.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    query.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; an expired query exits 2 with its partial answers",
    )
    query.add_argument(
        "--max-comparisons",
        type=int,
        default=None,
        help="dominance-comparison budget; exhausting it truncates gracefully",
    )
    query.add_argument(
        "--max-answers",
        type=int,
        default=None,
        help="stop after this many skyline answers",
    )
    query.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="inject a deterministic kernel fault (fault-injection demo; "
        "see docs/robustness.md)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    exp.add_argument("--size", type=int, default=None, help="records (default REPRO_BENCH_N/4000)")
    exp.add_argument(
        "--metric", choices=["time", "checks", "both"], default="both"
    )

    band = sub.add_parser("skyband", help="k-skyband of a saved workload")
    band.add_argument("workload", help="workload JSON path")
    band.add_argument("-k", type=int, default=2, help="dominator threshold")
    band.add_argument("--method", choices=["bbs", "nested-loops"], default="bbs")
    band.add_argument("--limit", type=int, default=20)

    lay = sub.add_parser("layers", help="skyline layers of a saved workload")
    lay.add_argument("workload", help="workload JSON path")
    lay.add_argument("--max-layers", type=int, default=5)
    lay.add_argument("--algorithm", default="bnl", choices=sorted(available_algorithms()))

    ssp = sub.add_parser("subspace", help="skyline over selected attributes")
    ssp.add_argument("workload", help="workload JSON path")
    ssp.add_argument("attributes", nargs="+", help="attribute names")
    ssp.add_argument("--limit", type=int, default=20)

    exp2 = sub.add_parser(
        "explain", help="dataset structure + instrumented query report"
    )
    exp2.add_argument("workload", help="workload JSON path")
    exp2.add_argument(
        "--algorithm", default="sdc+", choices=sorted(available_algorithms())
    )
    exp2.add_argument(
        "--strategy",
        default="default",
        choices=["default", "random", "minpc", "maxpc"],
    )
    exp2.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )

    bk = sub.add_parser(
        "bench-kernels",
        help="compare the python and numpy dominance backends side by side",
    )
    bk.add_argument("--size", type=int, default=1000, help="records to generate")
    bk.add_argument(
        "--algorithms",
        nargs="+",
        default=["bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+"],
        choices=sorted(available_algorithms()),
        help="algorithms to time",
    )
    bk.add_argument("--seed", type=int, default=7, help="workload seed")

    sb = sub.add_parser(
        "serve-bench",
        help="seeded multi-client benchmark of the concurrent query server",
    )
    sb.add_argument("--size", type=int, default=400, help="records to generate")
    sb.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    sb.add_argument(
        "--queries-per-client", type=int, default=4, help="queries each client submits"
    )
    sb.add_argument("--workers", type=int, default=4, help="server worker threads")
    sb.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=sorted(available_algorithms()),
        help="algorithm pool clients draw from (default: all)",
    )
    sb.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    sb.add_argument("--seed", type=int, default=7, help="workload + client-stream seed")
    sb.add_argument(
        "--repeat-fraction",
        type=float,
        default=0.0,
        metavar="F",
        help="probability each client re-submits the hot request instead "
        "of drawing a fresh algorithm (0..1; models repeated-query "
        "production traffic)",
    )
    sb.add_argument(
        "--cache",
        action="store_true",
        help="enable the server's materialized-view result cache "
        "(docs/views.md) so the report measures cache-aware throughput",
    )
    sb.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the full report as a JSON artifact "
        "(e.g. benchmarks/results/serve_bench.json)",
    )

    sv = sub.add_parser(
        "serve",
        help="run the asyncio network front-end (docs/network.md)",
    )
    sv.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port)",
    )
    sv.add_argument("--size", type=int, default=4000, help="records to generate")
    sv.add_argument("--seed", type=int, default=7, help="workload seed")
    sv.add_argument("--workers", type=int, default=8, help="server worker threads")
    sv.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    sv.add_argument(
        "--cache",
        action="store_true",
        help="enable the server's materialized-view result cache",
    )
    sv.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="per-connection token-bucket refill (cost-model tokens/s)",
    )
    sv.add_argument(
        "--burst",
        type=float,
        default=200.0,
        help="per-connection token-bucket capacity",
    )
    sv.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write 'HOST PORT' here once listening (CI readiness probe)",
    )

    nb = sub.add_parser(
        "net-bench",
        help="seeded multi-connection benchmark of the network front-end",
    )
    nb.add_argument("--size", type=int, default=4000, help="records to generate")
    nb.add_argument(
        "--connections", type=int, default=8, help="concurrent client connections"
    )
    nb.add_argument(
        "--queries-per-connection",
        type=int,
        default=4,
        help="queries each connection submits (open-loop)",
    )
    nb.add_argument("--workers", type=int, default=8, help="server worker threads")
    nb.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=sorted(available_algorithms()),
        help="algorithm pool connections draw from (default: all)",
    )
    nb.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    nb.add_argument("--seed", type=int, default=7, help="workload + arrival seed")
    nb.add_argument(
        "--arrival-rate",
        type=float,
        default=0.5,
        metavar="QPS",
        help="per-connection open-loop arrival rate (queries/second)",
    )
    nb.add_argument(
        "--disconnect-rate",
        type=float,
        default=0.0,
        metavar="F",
        help="chaos: probability each query's connection is hard-aborted "
        "mid-stream (0..1; exercises disconnect -> cancellation)",
    )
    nb.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive an already-running 'repro serve' instead of a "
        "self-contained in-process server",
    )
    nb.add_argument(
        "--assert-progressive",
        action="store_true",
        help="fail unless median time-to-first-point < 0.5x median "
        "time-to-done and multi-point answers span multiple frames",
    )
    nb.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the full report as a JSON artifact "
        "(e.g. benchmarks/results/net_bench.json)",
    )

    rp = sub.add_parser(
        "replay",
        help="trace-driven capacity-envelope sweep of the query server",
    )
    rp.add_argument("--size", type=int, default=300, help="records to generate")
    rp.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=["poisson", "bursty", "diurnal"],
        help="arrival processes to sweep (default: all three)",
    )
    rp.add_argument(
        "--duration",
        type=float,
        default=3.0,
        help="base trace length in seconds (scaled down at higher multipliers)",
    )
    rp.add_argument(
        "--rate", type=float, default=30.0, help="base mean arrival rate (q/s)"
    )
    rp.add_argument(
        "--multipliers",
        type=float,
        nargs="+",
        default=None,
        metavar="M",
        help="rate multipliers to sweep (default: 0.5 1.0 2.0 4.0)",
    )
    rp.add_argument("--workers", type=int, default=4, help="server worker threads")
    rp.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    rp.add_argument("--seed", type=int, default=7, help="workload + trace seed")
    rp.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="arm deterministic fault injection (worker kill + kernel "
        "faults) in every cell; the sweep then asserts chaos-replay "
        "invariants (docs/overload.md)",
    )
    rp.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="bounded queue capacity (0 = unbounded)",
    )
    rp.add_argument(
        "--shed-policy",
        choices=["deadline", "priority", "reject-newest"],
        default="deadline",
        help="shedding policy when the bounded queue fills",
    )
    rp.add_argument(
        "--deadline",
        type=float,
        default=0.5,
        help="end-to-end deadline carried by a fraction of requests "
        "(0 disables deadlines)",
    )
    rp.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the capacity envelope as a JSON artifact "
        "(e.g. benchmarks/results/replay_capacity.json)",
    )
    rp.add_argument(
        "--assert-resilient",
        action="store_true",
        help="exit non-zero unless every cell drained with zero hung "
        "handles and the server returned to healthy",
    )
    rp.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="committed replay artifact to compare the p99-vs-rate "
        "saturation knee against; a knee shifting left beyond the "
        "tolerance prints a warning (never fails the run)",
    )
    rp.add_argument(
        "--knee-tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="fractional left-shift of the saturation knee tolerated "
        "before warning (default 0.25)",
    )
    rp.add_argument(
        "--knee-factor",
        type=float,
        default=3.0,
        metavar="F",
        help="p99 multiple over the lowest-rate cell that defines the "
        "knee (default 3.0)",
    )

    bp = sub.add_parser(
        "bench-parallel",
        help="speedup curve of the sharded process-pool backend",
    )
    bp.add_argument("--size", type=int, default=20_000, help="records to generate")
    bp.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="worker counts to sweep",
    )
    bp.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        choices=sorted(available_algorithms()),
        help="algorithms to time (default: the fig12a lineup)",
    )
    bp.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="numpy",
        help="dominance backend (see docs/performance.md)",
    )
    bp.add_argument("--seed", type=int, default=7, help="workload seed")
    bp.add_argument(
        "--mode",
        choices=["auto", "strata", "grid"],
        default="auto",
        help="partitioning strategy (see docs/parallel.md)",
    )
    bp.add_argument(
        "--filter",
        choices=["dynamic", "static", "off"],
        default="dynamic",
        help="filter-board mode for the scaling curve runs (the "
        "comparison-reduction section always measures the "
        "deterministic static filter; see docs/parallel.md)",
    )
    bp.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the curve as a JSON artifact "
        "(e.g. benchmarks/results/parallel_scaling.json)",
    )
    bp.add_argument(
        "--assert-speedup",
        action="store_true",
        help="exit non-zero when the multi-worker aggregate speedup is "
        "<= 1.0x serial; automatically skipped (with a note) on "
        "machines with fewer than 4 cores, where sharding honestly "
        "measures pure overhead",
    )
    bp.add_argument(
        "--assert-comparison-reduction",
        action="store_true",
        help="exit non-zero unless steal-mode with filter propagation "
        "spends >= 15%% fewer aggregate dominance comparisons than the "
        "static partition/merge path (counter-based: hardware- and "
        "core-count-independent)",
    )

    bv = sub.add_parser(
        "bench-views",
        help="hit-rate vs. speedup curves of the materialized-view result cache",
    )
    bv.add_argument("--size", type=int, default=400, help="records to generate")
    bv.add_argument(
        "--queries", type=int, default=60, help="queries per repeat fraction"
    )
    bv.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=None,
        metavar="F",
        help="repeat fractions to sweep (default: 0.0 0.25 0.5 0.75)",
    )
    bv.add_argument(
        "--kernel",
        choices=["python", "numpy"],
        default="python",
        help="dominance backend (see docs/performance.md)",
    )
    bv.add_argument("--seed", type=int, default=7, help="workload + stream seed")
    bv.add_argument("--workers", type=int, default=2, help="server worker threads")
    bv.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the curves as a JSON artifact "
        "(e.g. benchmarks/results/view_cache.json)",
    )

    fs = sub.add_parser(
        "fsck",
        help="recover a durability directory and audit its integrity",
    )
    fs.add_argument(
        "directory",
        help="durability root (wal/ + snapshots/, see docs/durability.md)",
    )
    fs.add_argument(
        "--algorithm",
        default="sdc+",
        choices=sorted(available_algorithms()),
        help="algorithm used for the skyline recompute comparison",
    )

    cr = sub.add_parser(
        "crash-replay",
        help="kill-point x seed crash chaos matrix over the durability layer",
    )
    cr.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[7, 2025],
        help="workload seeds to sweep",
    )
    cr.add_argument(
        "--kill-points",
        nargs="+",
        default=None,
        metavar="SITE",
        help="kill-points to inject (default: all; see "
        "repro.resilience.chaos.KILL_POINTS)",
    )
    cr.add_argument(
        "--size", type=int, default=40, help="base records per cell"
    )
    cr.add_argument(
        "--ops", type=int, default=12, help="insert/delete plan length per cell"
    )
    cr.add_argument(
        "--output",
        default=None,
        metavar="JSON",
        help="write the recovery report as a JSON artifact "
        "(e.g. benchmarks/results/crash_replay.json)",
    )
    return parser


def _cmd_algorithms(_args) -> int:
    for name in available_algorithms():
        print(name)
    return 0


def _run_demo() -> int:
    from repro import NumericAttribute, PosetAttribute, Record, Schema, skyline
    from repro.posets import from_set_family

    amenities = from_set_family(
        {
            "deluxe": {"gym", "pool", "spa"},
            "active": {"gym", "pool"},
            "relax": {"spa"},
            "none": set(),
        }
    )
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            PosetAttribute.set_valued("amenities", amenities),
        ]
    )
    hotels = [
        Record("Grand", (320,), ("deluxe",)),
        Record("Budget", (60,), ("none",)),
        Record("Fit", (140,), ("active",)),
        Record("Worse", (190,), ("active",)),
    ]
    print("skyline of the demo hotel table:")
    for record in skyline(hotels, schema):
        print(f"  {record.rid:8} price={record.totals[0]:<4} amenities={record.partials[0]}")
    return 0


def _cmd_generate(args) -> int:
    config = WorkloadConfig(
        num_total=args.num_total,
        num_partial=args.num_partial,
        correlation=args.correlation,
        data_size=args.size,
        poset=PosetGeneratorConfig(
            num_nodes=args.poset_nodes, height=args.poset_height, seed=args.seed
        ),
        seed=args.seed,
    )
    workload = generate_workload(config)
    save_workload(args.output, workload.schema, workload.records)
    print(
        f"wrote {len(workload.records)} records "
        f"({workload.schema.num_total} numeric + "
        f"{workload.schema.num_partial} poset attrs) to {args.output}"
    )
    return 0


def _cmd_query(args) -> int:
    schema, records = load_workload(args.workload)
    engine = SkylineEngine(
        schema, records, strategy=args.strategy, kernel=args.kernel
    )
    resilient = (
        args.deadline is not None
        or args.max_comparisons is not None
        or args.max_answers is not None
        or args.chaos_seed is not None
    )
    if not resilient:
        start = time.perf_counter()
        answers = engine.skyline(args.algorithm)
        elapsed = time.perf_counter() - start
        status = f"{args.algorithm}, {elapsed * 1000:.1f} ms"
    else:
        from repro.exceptions import QueryTimeoutError
        from repro.resilience.chaos import FaultInjector, inject_kernel_faults

        if args.chaos_seed is not None:
            inject_kernel_faults(
                engine.dataset, FaultInjector(seed=args.chaos_seed, fail_after=10)
            )
        exit_code = 0
        try:
            result = engine.query(
                args.algorithm,
                deadline=args.deadline,
                max_comparisons=args.max_comparisons,
                max_answers=args.max_answers,
            )
        except QueryTimeoutError as err:
            result = err.partial
            exit_code = 2
        answers = result.records
        status = f"{args.algorithm}, {result.elapsed * 1000:.1f} ms"
        if result.complete:
            status += ", complete"
        else:
            status += f", PARTIAL ({result.exhausted_reason})"
        if result.fallback:
            status += ", python-kernel fallback"
    print(f"{len(answers)} skyline records out of {len(records)} ({status})")
    shown = answers if args.limit == 0 else answers[: args.limit]
    for record in shown:
        print(f"  rid={record.rid} totals={record.totals} partials={record.partials}")
    if len(shown) < len(answers):
        print(f"  ... {len(answers) - len(shown)} more (use --limit 0)")
    if args.stats:
        print(engine.stats)
    return exit_code if resilient else 0


def _cmd_experiment(args) -> int:
    result = run_experiment(args.id, data_size=args.size)
    print(format_summary(result))
    print()
    if args.metric in ("time", "both"):
        print(format_run_table(result.runs, "time", "time-to-output milestones (ms)"))
        print()
    if args.metric in ("checks", "both"):
        print(format_run_table(result.runs, "checks", "dominance-check milestones"))
    return 0


def _cmd_skyband(args) -> int:
    from repro.queries.skyband import k_skyband
    from repro.transform.dataset import TransformedDataset

    schema, records = load_workload(args.workload)
    dataset = TransformedDataset(schema, records)
    band = k_skyband(dataset, args.k, args.method)
    print(f"{args.k}-skyband: {len(band)} of {len(records)} records")
    for point in band[: args.limit]:
        r = point.record
        print(f"  rid={r.rid} totals={r.totals} partials={r.partials}")
    if len(band) > args.limit:
        print(f"  ... {len(band) - args.limit} more")
    return 0


def _cmd_layers(args) -> int:
    from repro.queries.layers import skyline_layers
    from repro.transform.dataset import TransformedDataset

    schema, records = load_workload(args.workload)
    dataset = TransformedDataset(schema, records)
    for number, layer in enumerate(
        skyline_layers(dataset, max_layers=args.max_layers, algorithm=args.algorithm),
        start=1,
    ):
        print(f"layer {number}: {len(layer)} records")
    return 0


def _cmd_subspace(args) -> int:
    from repro.queries.subspace import subspace_skyline
    from repro.transform.dataset import TransformedDataset

    schema, records = load_workload(args.workload)
    dataset = TransformedDataset(schema, records)
    answers = subspace_skyline(dataset, args.attributes)
    names = ", ".join(args.attributes)
    print(f"subspace [{names}]: {len(answers)} skyline records of {len(records)}")
    for record in answers[: args.limit]:
        print(f"  rid={record.rid} totals={record.totals} partials={record.partials}")
    if len(answers) > args.limit:
        print(f"  ... {len(answers) - args.limit} more")
    return 0


def _cmd_explain(args) -> int:
    import json

    schema, records = load_workload(args.workload)
    engine = SkylineEngine(
        schema, records, strategy=args.strategy, kernel=args.kernel
    )
    print(json.dumps(engine.describe(), indent=2))
    print(json.dumps(engine.explain(args.algorithm), indent=2))
    return 0


def _cmd_bench_kernels(args) -> int:
    from repro.bench.harness import run_progressive
    from repro.transform.dataset import TransformedDataset

    config = WorkloadConfig.default(data_size=args.size, seed=args.seed)
    workload = generate_workload(config)
    print(
        f"workload: {len(workload.records)} records, "
        f"{workload.schema.num_total} numeric + "
        f"{workload.schema.num_partial} poset attrs"
    )
    header = (
        f"{'algorithm':<10} {'python (s)':>12} {'numpy (s)':>12} "
        f"{'speedup':>9}  {'answers':>7}  parity"
    )
    print(header)
    print("-" * len(header))
    exit_code = 0
    for name in args.algorithms:
        results = {}
        for kernel in ("python", "numpy"):
            dataset = TransformedDataset(
                workload.schema, workload.records, kernel=kernel
            )
            run = run_progressive(dataset, name)
            results[kernel] = (
                run.total_elapsed,
                [p.record.rid for p in run.points],
                run.final_delta,
            )
        py_s, py_rids, py_counters = results["python"]
        np_s, np_rids, np_counters = results["numpy"]
        parity = py_rids == np_rids and py_counters == np_counters
        if not parity:
            exit_code = 1
        speedup = py_s / np_s if np_s > 0 else float("inf")
        print(
            f"{name:<10} {py_s:>12.4f} {np_s:>12.4f} {speedup:>8.2f}x "
            f"{len(py_rids):>8}  {'ok' if parity else 'MISMATCH'}"
        )
    return exit_code


def _cmd_serve_bench(args) -> int:
    from repro.serving.bench import run_serve_bench

    report = run_serve_bench(
        size=args.size,
        clients=args.clients,
        queries_per_client=args.queries_per_client,
        workers=args.workers,
        algorithms=tuple(args.algorithms) if args.algorithms else None,
        kernel=args.kernel,
        seed=args.seed,
        output=args.output,
        repeat_fraction=args.repeat_fraction,
        cache=args.cache,
    )
    workload = report["workload"]
    print(
        f"serve-bench: {workload['clients']} clients x "
        f"{workload['queries_per_client']} queries, "
        f"{workload['workers']} workers, {workload['records']} records "
        f"({workload['kernel']} kernel, seed {workload['seed']})"
    )
    if workload["repeat_fraction"] or workload["cache"]:
        cache_stats = report["server"]["cache"]
        print(
            f"  repeat_fraction={workload['repeat_fraction']:.2f} "
            f"cache={'on' if workload['cache'] else 'off'}"
            + (
                f" (hits={cache_stats['hits']}, "
                f"misses={cache_stats['misses']}, "
                f"hit_rate={cache_stats['hit_rate']:.2f})"
                if workload["cache"]
                else ""
            )
        )
    latency = report["latency"]
    print(
        f"  {report['queries']} queries in {report['wall_seconds']:.3f}s "
        f"({report['throughput_qps']:.1f} q/s); latency "
        f"p50={latency['p50_seconds'] * 1000:.1f}ms "
        f"p99={latency['p99_seconds'] * 1000:.1f}ms "
        f"max={latency['max_seconds'] * 1000:.1f}ms"
    )
    header = f"  {'algorithm':<10} {'count':>5} {'p50 ms':>9} {'p99 ms':>9}"
    print(header)
    for name, summary in report["latency_by_algorithm"].items():
        print(
            f"  {name:<10} {summary['count']:>5} "
            f"{summary['p50_seconds'] * 1000:>9.1f} "
            f"{summary['p99_seconds'] * 1000:>9.1f}"
        )
    if report["errors"]:
        print(f"  {len(report['errors'])} failed submissions:")
        for line in report["errors"][:5]:
            print(f"    {line}")
    if args.output:
        print(f"  report written to {args.output}")
    return 1 if report["errors"] else 0


def _parse_hostport(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.lstrip("-").isdigit():
        raise SystemExit(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.net.netserver import NetworkConfig, NetworkFrontend
    from repro.serving.server import SkylineServer
    from repro.transform.dataset import TransformedDataset
    from repro.workloads.config import WorkloadConfig
    from repro.workloads.generator import generate_workload

    host, port = _parse_hostport(args.listen)
    config = WorkloadConfig.default(data_size=args.size, seed=args.seed)
    workload = generate_workload(config)
    dataset = TransformedDataset(
        workload.schema, workload.records, kernel=args.kernel
    )
    server = SkylineServer(
        dataset, workers=args.workers, warm=True, cache=args.cache
    )
    frontend = NetworkFrontend(
        server,
        NetworkConfig(host=host, port=port, rate=args.rate, burst=args.burst),
    )

    async def main() -> None:
        bound_host, bound_port = await frontend.start()
        print(
            f"serving {len(dataset)} records ({args.kernel} kernel, "
            f"seed {args.seed}) on {bound_host}:{bound_port}",
            flush=True,
        )
        if args.ready_file:
            from pathlib import Path

            Path(args.ready_file).write_text(
                f"{bound_host} {bound_port}\n", encoding="utf-8"
            )
        try:
            await frontend.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await frontend.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_net_bench(args) -> int:
    from repro.net.bench import run_net_bench

    connect = _parse_hostport(args.connect) if args.connect else None
    try:
        report = run_net_bench(
            size=args.size,
            connections=args.connections,
            queries_per_connection=args.queries_per_connection,
            workers=args.workers,
            algorithms=tuple(args.algorithms) if args.algorithms else None,
            kernel=args.kernel,
            seed=args.seed,
            output=args.output,
            arrival_rate=args.arrival_rate,
            disconnect_rate=args.disconnect_rate,
            connect=connect,
            assert_progressive=args.assert_progressive,
        )
    except AssertionError as err:
        print(f"net-bench FAILED: {err}")
        return 1
    config = report["config"]
    where = args.connect if args.connect else "in-process"
    print(
        f"net-bench: {config['connections']} connections x "
        f"{config['queries_per_connection']} queries against {where} "
        f"(seed {config['seed']}, arrival {config['arrival_rate']}/s"
        + (
            f", disconnect_rate={config['disconnect_rate']:.2f}"
            if config["disconnect_rate"]
            else ""
        )
        + ")"
    )
    ttd = report["time_to_done"]
    ttfp = report["time_to_first_point"]
    prog = report["progressiveness"]
    print(
        f"  {report['completed']}/{report['queries']} completed in "
        f"{report['elapsed_seconds']:.3f}s ({report['throughput_qps']:.1f} q/s), "
        f"{report['disconnects']} chaos disconnects"
    )
    print(
        f"  time-to-done     p50={ttd['p50_seconds'] * 1000:.1f}ms "
        f"p99={ttd['p99_seconds'] * 1000:.1f}ms"
    )
    print(
        f"  time-to-first    p50={ttfp['p50_seconds'] * 1000:.1f}ms "
        f"p99={ttfp['p99_seconds'] * 1000:.1f}ms"
    )
    print(
        f"  progressiveness: ttfp/ttd ratio {prog['ratio']:.3f} "
        f"({prog['multi_frame_queries']}/{prog['multi_point_queries']} "
        f"multi-point queries streamed over >1 frame)"
    )
    if report["errors"]:
        print(f"  errors by code: {report['errors']}")
    print(f"  server mode after run: {report['server']['mode']}")
    if args.output:
        print(f"  report written to {args.output}")
    return 0


def _cmd_replay(args) -> int:
    from repro.serving.replay import run_replay

    report = run_replay(
        size=args.size,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        duration=args.duration,
        rate=args.rate,
        multipliers=tuple(args.multipliers) if args.multipliers else None,
        workers=args.workers,
        kernel=args.kernel,
        seed=args.seed,
        chaos_seed=args.chaos_seed,
        capacity=args.capacity if args.capacity > 0 else None,
        shed_policy=args.shed_policy,
        deadline=args.deadline if args.deadline > 0 else None,
        output=args.output,
    )
    config = report["config"]
    chaos = (
        f", chaos seed {config['chaos_seed']}"
        if config["chaos_seed"] is not None
        else ""
    )
    print(
        f"replay: {config['records']} records, {config['workers']} workers, "
        f"{config['base_rate_qps']:g} q/s x {config['duration_seconds']:g}s "
        f"base trace ({config['kernel']} kernel, seed {config['seed']}{chaos})"
    )
    resilient = True
    for scenario, row in report["scenarios"].items():
        print(f"  {scenario} ({row['arrivals']} arrivals):")
        header = (
            f"    {'xrate':>5} {'offered':>7} {'done':>5} {'shed':>5} "
            f"{'rej':>4} {'t/o':>4} {'err':>4} {'hung':>4} "
            f"{'p50 ms':>8} {'p99 ms':>8} {'mode':>11} {'healthy':>7}"
        )
        print(header)
        for cell in row["cells"]:
            healthy = cell["returned_healthy"]
            resilient = resilient and healthy and cell["hung"] == 0
            print(
                f"    {cell['multiplier']:>5g} {cell['offered']:>7} "
                f"{cell['completed']:>5} {cell['shed']:>5} "
                f"{cell['rejected']:>4} {cell['timeouts']:>4} "
                f"{cell['errors']:>4} {cell['hung']:>4} "
                f"{cell['latency_p50_ms']:>8.1f} {cell['latency_p99_ms']:>8.1f} "
                f"{cell['final_mode']:>11} {'yes' if healthy else 'NO':>7}"
            )
    if args.output:
        print(f"  envelope written to {args.output}")
    if args.baseline:
        import json as _json

        from repro.serving.replay import compare_baseline

        with open(args.baseline, encoding="utf-8") as fh:
            baseline = _json.load(fh)
        comparison = compare_baseline(
            report,
            baseline,
            tolerance=args.knee_tolerance,
            factor=args.knee_factor,
        )
        print(
            f"  knee vs baseline {args.baseline} "
            f"(factor {comparison['factor']:g}x, "
            f"tolerance {comparison['tolerance']:.0%}):"
        )
        for name, entry in comparison["scenarios"].items():
            knee = entry["current_knee"]
            base_knee = entry["baseline_knee"]
            fmt = lambda k: f"{k:g}x" if k is not None else ">sweep"
            mark = "  WARNING: knee shifted left" if entry["shifted_left"] else ""
            print(f"    {name:<10} {fmt(base_knee):>7} -> {fmt(knee):>7}{mark}")
        if comparison["regressions"]:
            print(
                "  WARNING: saturation knee regressed in "
                + ", ".join(comparison["regressions"])
                + " (capacity envelope shrank; not failing the run)"
            )
    if args.assert_resilient and not resilient:
        print("replay: FAILED resilience assertion (hung handle or no recovery)")
        return 1
    return 0


def _cmd_fsck(args) -> int:
    from repro.durability import fsck, recover
    from repro.exceptions import DurabilityError

    try:
        report = recover(args.directory)
    except DurabilityError as err:
        print(f"fsck: {err}")
        return 2
    info = report.to_dict()
    print(
        f"fsck: recovered {args.directory} from {info['snapshot']} "
        f"(LSN {info['snapshot_lsn']}) + {info['replayed']} replayed WAL records "
        f"-> version {info['last_lsn']}"
    )
    if info["truncated_bytes"]:
        print(f"  truncated {info['truncated_bytes']} torn/corrupt WAL bytes")
    if info["orphaned_segments"]:
        print(f"  quarantined segments: {', '.join(info['orphaned_segments'])}")
    if info["skipped_snapshots"]:
        print(f"  skipped snapshots: {', '.join(info['skipped_snapshots'])}")
    audit = fsck(report.dataset, algorithm=args.algorithm)
    for check, detail in audit["checks"].items():
        print(f"  {check}: {detail}")
    if audit["clean"]:
        print("fsck: clean")
        return 0
    for problem in audit["problems"]:
        print(f"  PROBLEM: {problem}")
    print("fsck: FAILED")
    return 1


def _cmd_crash_replay(args) -> int:
    from repro.durability.crashreplay import run_crash_replay
    from repro.resilience.chaos import KILL_POINTS

    kill_points = tuple(args.kill_points) if args.kill_points else KILL_POINTS
    unknown = sorted(set(kill_points) - set(KILL_POINTS))
    if unknown:
        print(f"crash-replay: unknown kill-points {', '.join(unknown)}")
        return 2
    report = run_crash_replay(
        kill_points=kill_points,
        seeds=tuple(args.seeds),
        n=args.size,
        ops=args.ops,
        out=args.output,
    )
    config = report["config"]
    print(
        f"crash-replay: {len(config['kill_points'])} kill-points x "
        f"{len(config['seeds'])} seeds ({config['n']} records, "
        f"{config['ops']} ops per cell)"
    )
    print(
        f"  {'kill-point':<24} {'seed':>5} {'acked':>5} {'recov':>5} "
        f"{'torn B':>6} {'skyline':>7}  status"
    )
    for cell in report["cells"]:
        status = "pass" if cell["pass"] else "FAIL"
        print(
            f"  {cell['kill_point']:<24} {cell['seed']:>5} {cell['acked']:>5} "
            f"{cell['recovered']:>5} {cell['truncated_bytes']:>6} "
            f"{cell['skyline_size']:>7}  {status}"
        )
        for problem in cell["problems"]:
            print(f"      {problem}")
    if args.output:
        print(f"  report written to {args.output}")
    if report["passed"]:
        print("crash-replay: all cells passed")
        return 0
    print(f"crash-replay: {report['failures']} cell(s) FAILED")
    return 1


def _cmd_bench_parallel(args) -> int:
    from repro.parallel.bench import run_parallel_bench

    report = run_parallel_bench(
        size=args.size,
        workers=tuple(args.workers),
        algorithms=tuple(args.algorithms) if args.algorithms else None,
        kernel=args.kernel,
        seed=args.seed,
        mode=args.mode,
        filter=args.filter,
        output=args.output,
    )
    print(
        f"bench-parallel: {report['records']} records, "
        f"{report['kernel']} kernel, seed {report['seed']}, "
        f"mode {report['mode']}, filter {report['filter']} "
        f"(cpu_count={report['cpu_count']})"
    )
    print(
        f"  {'workers':<8} {'total s':>10} {'speedup':>8} "
        f"{'steals':>7} {'board hits':>11}  modes"
    )
    for count, entry in report["workers"].items():
        algos = entry["algorithms"].values()
        modes = sorted({info["mode"] for info in algos})
        steals = sum(info["steals"] for info in algos)
        hits = sum(info["filter_board_hits"] for info in algos)
        print(
            f"  {count:<8} {entry['total_seconds']:>10.3f} "
            f"{entry['aggregate_speedup']:>7.2f}x "
            f"{steals:>7} {hits:>11}  {','.join(modes)}"
        )
    comparison = report["comparison"]
    print(
        f"  comparisons at {comparison['workers']} workers: "
        f"static {comparison['static_comparisons']}, "
        f"steal {comparison['steal_comparisons']} "
        f"({comparison['reduction']:.1%} reduction; dynamic-filter "
        f"{comparison['steal_dynamic_comparisons']})"
    )
    if not report["parity_ok"]:
        print("  PARITY MISMATCH against the serial engine")
    if args.output:
        print(f"  curve written to {args.output}")
    exit_code = 0 if report["parity_ok"] else 1
    if args.assert_comparison_reduction:
        assertion = report["comparison_assertion"]
        if assertion["passed"]:
            print(
                f"  comparison-reduction assertion passed: "
                f"{assertion['reduction']:.1%} >= "
                f"{assertion['required_reduction']:.0%}"
            )
        else:
            print(
                f"  comparison-reduction assertion FAILED: "
                f"{assertion['reduction']:.1%} < "
                f"{assertion['required_reduction']:.0%}"
            )
            exit_code = 1
    if args.assert_speedup:
        assertion = report["speedup_assertion"]
        if not assertion["evaluated"]:
            print(
                f"  speedup assertion SKIPPED: "
                f"cpu_count={assertion['cpu_count']} < "
                f"required {assertion['required_cores']} cores"
            )
        elif assertion["passed"]:
            print(
                f"  speedup assertion passed: "
                f"{assertion['best_aggregate_speedup']:.2f}x at "
                f"{assertion['best_workers']} workers"
            )
        else:
            print(
                f"  speedup assertion FAILED: best aggregate speedup "
                f"{assertion['best_aggregate_speedup']:.2f}x <= 1.0x serial "
                f"(cpu_count={assertion['cpu_count']})"
            )
            exit_code = 1
    return exit_code


def _cmd_bench_views(args) -> int:
    from repro.views.bench import DEFAULT_FRACTIONS, run_views_bench

    report = run_views_bench(
        size=args.size,
        queries=args.queries,
        fractions=(
            tuple(args.fractions) if args.fractions else DEFAULT_FRACTIONS
        ),
        kernel=args.kernel,
        seed=args.seed,
        workers=args.workers,
        output=args.output,
    )
    print(
        f"bench-views: {report['records']} records, "
        f"{report['queries_per_fraction']} queries per fraction, "
        f"{report['kernel']} kernel, seed {report['seed']}"
    )
    print(
        f"  {'fraction':<9} {'hit rate':>8} {'uncached s':>11} "
        f"{'cached s':>9} {'speedup':>8}  parity"
    )
    for key, entry in sorted(report["curves"].items()):
        print(
            f"  {key:<9} {entry['hit_rate']:>8.2f} "
            f"{entry['uncached_wall_seconds']:>11.3f} "
            f"{entry['cached_wall_seconds']:>9.3f} "
            f"{entry['speedup']:>7.2f}x  "
            f"{'ok' if entry['parity'] else 'MISMATCH'}"
        )
    acceptance = report["acceptance"]
    status = "passed" if acceptance["passed"] else "FAILED"
    print(
        f"  acceptance ({acceptance['required_speedup']:.0f}x at "
        f"{acceptance['repeat_fraction']:.2f} repeat fraction): "
        f"{acceptance['achieved_speedup']:.2f}x -> {status}"
    )
    if args.output:
        print(f"  curves written to {args.output}")
    return 0 if (report["parity_ok"] and acceptance["passed"]) else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "algorithms": _cmd_algorithms,
        "demo": lambda _a: _run_demo(),
        "generate": _cmd_generate,
        "query": _cmd_query,
        "experiment": _cmd_experiment,
        "skyband": _cmd_skyband,
        "layers": _cmd_layers,
        "subspace": _cmd_subspace,
        "explain": _cmd_explain,
        "bench-kernels": _cmd_bench_kernels,
        "serve-bench": _cmd_serve_bench,
        "serve": _cmd_serve,
        "net-bench": _cmd_net_bench,
        "replay": _cmd_replay,
        "bench-parallel": _cmd_bench_parallel,
        "bench-views": _cmd_bench_views,
        "fsck": _cmd_fsck,
        "crash-replay": _cmd_crash_replay,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `repro algorithms | head -1`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
