"""SDC -- Stratification by Dominance Classification (Section 4.5, Fig. 6).

SDC runs the BBS+ traversal but organises the intermediate skyline set
``S`` into the four dominance categories of Fig. 5, which buys three
optimisations (each independently switchable for the Section 5.3
ablation):

* **minimising dominance comparisons** (Section 4.5.2,
  ``restrict_categories``): a popped point ``e`` is compared only against
  the categories that can dominate it (``C``) or that it can dominate
  (``C'``), per Lemma 4.1; R-tree entries are likewise pruned only
  against the categories that can dominate the entries' aggregated
  category bits.
* **optimising dominance comparisons** (Section 4.5.3,
  ``optimize_comparisons``): ``CompareDominance`` tries the two-integer
  m-dominance test first and touches the expensive original domains only
  when Lemma 4.2 leaves room for a native-only dominance.
* **progressive computation** (Section 4.5.4, ``progressive_output``):
  a completely covered intermediate skyline point can never be displaced
  later (any native dominator would m-dominate it and would have been
  popped earlier), so it is emitted immediately (Lemma 4.3); by the same
  lemma ``C'`` only needs the partially covered categories.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bbs import traverse
from repro.core.categories import (
    Category,
    dominators_of,
    dominators_of_set,
    ordered_categories,
    targets_of,
)
from repro.exceptions import AlgorithmError
from repro.rtree.node import Node
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["SDC"]

_ALL_CATEGORIES = frozenset(Category)


@register
class SDC(SkylineAlgorithm):
    """Runtime stratification of the intermediate skyline set."""

    name = "sdc"
    progressive = True
    uses_index = True

    def __init__(
        self,
        restrict_categories: bool = True,
        optimize_comparisons: bool = True,
        progressive_output: bool = True,
    ) -> None:
        self.restrict_categories = restrict_categories
        self.optimize_comparisons = optimize_comparisons
        self.progressive_output = progressive_output

    # ------------------------------------------------------------------
    def _compare(self, kernel, e: Point, p: Point) -> int:
        if self.optimize_comparisons:
            return kernel.compare_dominance(e, p)
        # Ablation: original-domain comparisons only (BBS+-style).
        kernel.stats.compare_dominance_calls += 1
        if kernel.native_dominates(p, e):
            return 1
        if kernel.native_dominates(e, p):
            return -1
        return 0

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        stats = dataset.stats
        S: dict[Category, list[Point]] = {cat: [] for cat in Category}
        emitted: set[int] = set()

        # Precomputed, deterministically ordered category scan lists.
        prune_order: dict[frozenset, tuple[Category, ...]] = {}
        point_order = {
            cat: ordered_categories(
                dominators_of(cat) if self.restrict_categories else _ALL_CATEGORIES
            )
            for cat in Category
        }
        check_order: dict[Category, tuple[Category, ...]] = {}
        for cat in Category:
            if self.restrict_categories:
                check = set(dominators_of(cat))
                targets = targets_of(cat)
                if self.progressive_output:
                    # Lemma 4.3: completely covered intermediate points
                    # are definite; a new point can never displace them.
                    targets = frozenset(
                        t for t in targets if not t.completely_covered
                    )
                check |= targets
            else:
                check = set(_ALL_CATEGORIES)
            check_order[cat] = ordered_categories(frozenset(check))

        if getattr(kernel, "is_batch", False):
            yield from self._run_batch(
                dataset, kernel, stats, point_order, check_order, prune_order
            )
            return

        # The category buckets stay key-sorted: points arrive in ascending
        # key order and deletions preserve order, so m-dominance scans can
        # stop once keys reach the probe's bound (a dominator's vector sum
        # is strictly smaller).
        def node_pruned(node: Node) -> bool:
            if self.restrict_categories:
                possible = node.possible_categories()
                cats = prune_order.get(possible)
                if cats is None:
                    cats = ordered_categories(dominators_of_set(possible))
                    prune_order[possible] = cats
            else:
                cats = point_order[Category.PC]  # all categories, ordered
            mins = node.mins
            bound = node.min_key
            for cat in cats:
                for p in S[cat]:
                    if p.key >= bound:
                        break
                    if kernel.m_dominates_mins(p, mins):
                        return True
            return False

        def point_pruned(point: Point) -> bool:
            cats = point_order[point.category]
            bound = point.key
            for cat in cats:
                for p in S[cat]:
                    if p.key >= bound:
                        break
                    if kernel.m_dominates(p, point):
                        return True
            return False

        for e in traverse(
            dataset.index, stats, node_pruned, point_pruned, dataset.context
        ):
            cat = e.category
            dominated = False
            for scat in check_order[cat]:
                bucket = S[scat]
                i = 0
                while i < len(bucket):
                    ret = self._compare(kernel, e, bucket[i])
                    if ret == 1:
                        dominated = True
                        break
                    if ret == -1:
                        victim = bucket[i]
                        if id(victim) in emitted:
                            raise AlgorithmError(
                                "SDC invariant violated: emitted point displaced"
                            )
                        del bucket[i]  # order-preserving: buckets stay key-sorted
                        continue
                    i += 1
                if dominated:
                    break
            if dominated:
                continue
            S[cat].append(e)
            if self.progressive_output and cat.completely_covered:
                emitted.add(id(e))
                yield e

        for cat in Category:
            for p in S[cat]:
                if id(p) not in emitted:
                    yield p

    # ------------------------------------------------------------------
    def _run_batch(
        self, dataset, kernel, stats, point_order, check_order, prune_order
    ) -> Iterator[Point]:
        """Same control flow over vectorized per-category buffers."""
        S = {cat: kernel.new_buffer() for cat in Category}
        emitted: set[int] = set()

        def node_pruned(node: Node) -> bool:
            if self.restrict_categories:
                possible = node.possible_categories()
                cats = prune_order.get(possible)
                if cats is None:
                    cats = ordered_categories(dominators_of_set(possible))
                    prune_order[possible] = cats
            else:
                cats = point_order[Category.PC]  # all categories, ordered
            mins = node.mins
            bound = node.min_key
            return any(S[cat].prunes_mins(mins, bound) for cat in cats)

        def point_pruned(point: Point) -> bool:
            return any(
                S[cat].prunes_point(point) for cat in point_order[point.category]
            )

        for e in traverse(
            dataset.index, stats, node_pruned, point_pruned, dataset.context
        ):
            cat = e.category
            dominated = False
            for scat in check_order[cat]:
                bucket = S[scat]
                if self.optimize_comparisons:
                    dominated, victims = bucket.update_compare(e)
                else:
                    dominated, victims = bucket.update_native(e, count_calls=True)
                if any(id(v) in emitted for v in victims):
                    raise AlgorithmError(
                        "SDC invariant violated: emitted point displaced"
                    )
                if dominated:
                    break
            if dominated:
                continue
            S[cat].append(e)
            if self.progressive_output and cat.completely_covered:
                emitted.add(id(e))
                yield e

        for cat in Category:
            for p in S[cat]:
                if id(p) not in emitted:
                    yield p
