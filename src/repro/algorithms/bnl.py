"""Block-nested-loops skyline (Börzsönyi et al., ICDE'01).

The classic windowed, multi-pass algorithm with timestamp-based early
output:

* every incoming record is compared against the window; dominated records
  are dropped, records dominating window entries evict them;
* when the window is full, survivors overflow to a temporary file that
  becomes the next pass's input;
* a window entry inserted after ``d`` records had already overflowed owes
  comparisons to exactly those ``d`` records (everything written later
  was compared against the whole window on arrival), so it can be emitted
  as a definite skyline point as soon as the *next* pass has read ``d``
  records -- or at the end of its own pass when ``d == 0``.

On partially-ordered schemas BNL compares records in their **native**
domains (actual set containment), which is what makes it expensive; the
transformed-space variant lives in :mod:`repro.algorithms.bnl_plus`.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.core.stats import ComparisonStats
from repro.exceptions import AlgorithmError
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["bnl_passes", "BlockNestedLoops"]


def bnl_passes(
    points: list[Point],
    dominates: Callable[[Point, Point], bool],
    window_size: int,
    stats: ComparisonStats,
    context: QueryContext = NULL_CONTEXT,
) -> Iterator[Point]:
    """Core multi-pass BNL; yields definite skyline points as they mature.

    ``carried`` holds window entries surviving from the previous pass as
    ``[point, debt]`` pairs sorted by debt, where ``debt`` counts how many
    records at the head of the current input they still owe comparisons
    to.  Entries evicted or emitted mid-pass become ``None`` so the debt
    ordering stays intact.

    ``context`` plants one cooperative checkpoint per scanned record and
    guards the live window size against its budget.
    """
    if window_size < 1:
        raise AlgorithmError("window_size must be positive")
    checkpoint = context.checkpoint
    guard_window = context.guard_window
    current = list(points)
    carried: list[list | None] = []
    while current:
        temp: list[Point] = []
        fresh: list[list] = []  # [point, overflow-count-at-insert]
        release_at = 0  # prefix of `carried` fully processed (matured/evicted)
        live_carried = len(carried)
        stats.tuples_scanned += len(current)
        for read_pos, r in enumerate(current, start=1):
            checkpoint()
            # Mature carried entries that have now been compared against
            # all records that predate them.
            while release_at < len(carried):
                entry = carried[release_at]
                if entry is None:
                    release_at += 1
                elif entry[1] <= read_pos - 1:
                    yield entry[0]
                    carried[release_at] = None
                    live_carried -= 1
                    release_at += 1
                else:
                    break
            dominated = False
            for i in range(release_at, len(carried)):
                entry = carried[i]
                if entry is None:
                    continue
                w = entry[0]
                if dominates(w, r):
                    dominated = True
                    break
                if dominates(r, w):
                    carried[i] = None
                    live_carried -= 1
            if not dominated:
                i = 0
                while i < len(fresh):
                    w = fresh[i][0]
                    if dominates(w, r):
                        dominated = True
                        break
                    if dominates(r, w):
                        fresh[i] = fresh[-1]
                        fresh.pop()
                        continue
                    i += 1
            if dominated:
                continue
            if len(fresh) + live_carried < window_size:
                guard_window(len(fresh) + live_carried + 1)
                fresh.append([r, len(temp)])
                stats.window_inserts += 1
            else:
                temp.append(r)
        # End of pass: every surviving carried entry has now been compared
        # with the entire input; fresh entries with no debt owe nothing.
        for i in range(release_at, len(carried)):
            entry = carried[i]
            if entry is not None:
                yield entry[0]
        carried = []
        for point, debt in fresh:
            if debt == 0:
                yield point
            else:
                carried.append([point, debt])
        current = temp


@register
class BlockNestedLoops(SkylineAlgorithm):
    """BNL on the native domains (the paper's ``BNL`` baseline)."""

    name = "bnl"
    progressive = False
    uses_index = False

    def __init__(self, window_size: int = 1000) -> None:
        self.window_size = window_size

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        if getattr(kernel, "is_batch", False):
            from repro.core.batch import batch_bnl_passes

            yield from batch_bnl_passes(
                dataset.points,
                kernel,
                "native",
                self.window_size,
                dataset.stats,
                dataset.context,
            )
            return
        yield from bnl_passes(
            dataset.points,
            kernel.native_dominates,
            self.window_size,
            dataset.stats,
            dataset.context,
        )
