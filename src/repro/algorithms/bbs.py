"""Branch-and-bound skyline (BBS, Papadias et al. SIGMOD'03) -- Fig. 1.

This module also hosts :func:`traverse`, the heap-driven best-first
R-tree traversal shared by BBS, BBS+, SDC and the per-stratum passes of
SDC+.  The traversal pops entries in ascending ``sum(mins)`` order, so a
data point is popped only after every point that could m-dominate it; the
algorithm-specific behaviour (which intermediate-skyline subsets prune an
entry, what happens to popped points) is supplied through callbacks.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.core.stats import ComparisonStats
from repro.exceptions import AlgorithmError
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.rtree.heap import EntryHeap
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["traverse", "BranchAndBoundSkyline"]


def traverse(
    tree: RStarTree,
    stats: ComparisonStats,
    node_pruned: Callable[[Node], bool],
    point_pruned: Callable[[Point], bool],
    context: QueryContext = NULL_CONTEXT,
) -> Iterator[Point]:
    """Best-first traversal yielding surviving data points in key order.

    ``node_pruned`` is consulted when an internal/leaf node entry is about
    to be pushed and again when it is popped (the intermediate skyline may
    have grown in between, exactly as in Fig. 1 steps 6 and 8);
    ``point_pruned`` is consulted when a data point is about to be pushed.
    Popped points are yielded for the caller's ``UpdateSkylines``.

    ``context`` plants one cooperative checkpoint per heap pop (deadline,
    cancellation, comparison budget) and guards the live heap size, so
    every BBS-family algorithm inherits resilient execution from here.
    """
    heap = EntryHeap(stats)
    if tree.size == 0:
        return
    checkpoint = context.checkpoint
    guard_heap = context.guard_heap
    root = tree.root
    tree.access(root)
    entries = root.entries
    if root.leaf:
        for p in entries:
            if not point_pruned(p):
                heap.push(p)
    else:
        for child in entries:
            if not node_pruned(child):
                heap.push(child)
    while heap:
        checkpoint()
        guard_heap(len(heap))
        entry = heap.pop()
        if isinstance(entry, Point):
            yield entry
            continue
        if node_pruned(entry):
            continue
        tree.access(entry)
        if entry.leaf:
            for p in entry.entries:
                if not point_pruned(p):
                    heap.push(p)
        else:
            for child in entry.entries:
                if not node_pruned(child):
                    heap.push(child)


@register
class BranchAndBoundSkyline(SkylineAlgorithm):
    """Classic BBS for purely totally-ordered schemas.

    With no poset attributes the transformed space *is* the native space,
    every intermediate skyline point is definite, and the algorithm is
    fully progressive and I/O optimal.  Used as the TOS baseline and as a
    sanity anchor for the adapted algorithms.
    """

    name = "bbs"
    progressive = True
    uses_index = True

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        if not dataset.schema.is_totally_ordered:
            raise AlgorithmError(
                "bbs handles only totally-ordered schemas; use bbs+, sdc or sdc+"
            )
        kernel = dataset.kernel
        stats = dataset.stats
        if getattr(kernel, "is_batch", False):
            skyline_buf = kernel.new_buffer()
            for e in traverse(
                dataset.index,
                stats,
                lambda node: skyline_buf.prunes_mins(node.mins, node.min_key),
                skyline_buf.prunes_point,
                dataset.context,
            ):
                if skyline_buf.prunes_point(e):
                    continue
                skyline_buf.append(e)
                yield e
            return
        # Points are popped in ascending key order, so `skyline` stays
        # key-sorted; a dominator's key is strictly below its target's
        # (sum of a Pareto-smaller vector), so scans stop at the bound.
        skyline: list[Point] = []

        def node_pruned(node: Node) -> bool:
            mins = node.mins
            bound = node.min_key
            for p in skyline:
                if p.key >= bound:
                    return False
                if kernel.m_dominates_mins(p, mins):
                    return True
            return False

        def point_pruned(point: Point) -> bool:
            bound = point.key
            for p in skyline:
                if p.key >= bound:
                    return False
                if kernel.m_dominates(p, point):
                    return True
            return False

        for e in traverse(
            dataset.index, stats, node_pruned, point_pruned, dataset.context
        ):
            if point_pruned(e):
                continue
            skyline.append(e)
            yield e
