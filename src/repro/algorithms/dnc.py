"""Divide & conquer skyline over the transformed space (extension baseline).

The classic D&C scheme (Börzsönyi et al., after Kung/Luccio/Preparata):
split the points at the median of the widest transformed coordinate into
a *better* half ``A`` (coordinate strictly below the median) and a *rest*
half ``B``.  No point of ``B`` can m-dominate a point of ``A`` (its split
coordinate is not ``<=``), so

    ``skyline(S) = skyline(A) + [b in skyline(B) not m-dominated by skyline(A)]``.

Small partitions fall back to a quadratic scan.  As with BNL+, the result
in the transformed space may contain false positives, which a native BNL
pass removes.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bnl import bnl_passes
from repro.core.dominance import DominanceKernel
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["DivideAndConquer"]


@register
class DivideAndConquer(SkylineAlgorithm):
    """Median-split divide & conquer with a native post-process."""

    name = "dnc"
    progressive = False
    uses_index = False

    def __init__(self, window_size: int = 1000, base_size: int = 64) -> None:
        self.window_size = window_size
        self.base_size = max(1, base_size)

    # ------------------------------------------------------------------
    def _base_case(
        self,
        points: list[Point],
        kernel: DominanceKernel,
        context: QueryContext = NULL_CONTEXT,
    ) -> list[Point]:
        checkpoint = context.checkpoint
        result: list[Point] = []
        for r in points:
            checkpoint()
            dominated = False
            i = 0
            while i < len(result):
                w = result[i]
                if kernel.m_dominates(w, r):
                    dominated = True
                    break
                if kernel.m_dominates(r, w):
                    result[i] = result[-1]
                    result.pop()
                    continue
                i += 1
            if not dominated:
                result.append(r)
        return result

    def _skyline(
        self,
        points: list[Point],
        kernel: DominanceKernel,
        context: QueryContext = NULL_CONTEXT,
    ) -> list[Point]:
        context.checkpoint()
        if len(points) <= self.base_size:
            return self._base_case(points, kernel, context)
        dims = len(points[0].vector)
        best_dim = 0
        best_spread = -1.0
        for d in range(dims):
            column = [p.vector[d] for p in points]
            spread = max(column) - min(column)
            if spread > best_spread:
                best_spread = spread
                best_dim = d
        if best_spread == 0.0:
            # All points identical in every coordinate: mutually
            # non-dominating transformed-space duplicates.
            return self._base_case(points, kernel, context)
        column = sorted(p.vector[best_dim] for p in points)
        median = column[len(column) // 2]
        better = [p for p in points if p.vector[best_dim] < median]
        rest = [p for p in points if p.vector[best_dim] >= median]
        if not better:
            # Degenerate split (median equals the minimum); shave the
            # minimum plane off instead to guarantee progress.
            low = column[0]
            better = [p for p in points if p.vector[best_dim] == low]
            rest = [p for p in points if p.vector[best_dim] > low]
            sky_better = self._base_case(better, kernel, context)
        else:
            sky_better = self._skyline(better, kernel, context)
        sky_rest = self._skyline(rest, kernel, context)
        merged = list(sky_better)
        for b in sky_rest:
            if not any(kernel.m_dominates(a, b) for a in sky_better):
                merged.append(b)
        return merged

    # ------------------------------------------------------------------
    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        context = dataset.context
        if not dataset.points:
            return
        candidates = self._skyline(list(dataset.points), kernel, context)
        if dataset.schema.is_totally_ordered:
            yield from candidates
            return
        yield from bnl_passes(
            candidates, kernel.native_dominates, self.window_size, dataset.stats, context
        )
