"""Sort-filter-skyline over the transformed space (extension baseline).

SFS (Chomicki et al.) presorts the input by a function monotone with
dominance; a record can then never be dominated by a later one, so a
single windowed pass yields the skyline.  ``sum(vector)`` is monotone with
**m-dominance** (a dominator's coordinates are all ``<=`` with one ``<``),
but *not* with native dominance on poset attributes -- so, like BNL+, the
partially-ordered variant runs the sorted filter in the transformed space
and pipes the surviving candidates through a native BNL pass.

Not part of the paper's evaluated set; included as an additional
non-index baseline (the paper cites the preference-query line of work it
descends from in Section 2).
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bnl import bnl_passes
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["SortFilterSkyline"]


@register
class SortFilterSkyline(SkylineAlgorithm):
    """Presort by key, filter with m-dominance, post-process natively."""

    name = "sfs"
    progressive = False
    uses_index = False

    def __init__(self, window_size: int = 1000) -> None:
        self.window_size = window_size

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        context = dataset.context
        checkpoint = context.checkpoint
        ordered = sorted(dataset.points, key=lambda p: p.key)
        if getattr(kernel, "is_batch", False):
            from repro.core.batch import batch_bnl_passes

            window = kernel.new_buffer()
            for r in ordered:
                checkpoint()
                if not window.filters(r):
                    window.append(r)
                    dataset.stats.window_inserts += 1
            candidates = window.points
            if dataset.schema.is_totally_ordered:
                yield from candidates
                return
            yield from batch_bnl_passes(
                candidates, kernel, "native", self.window_size, dataset.stats, context
            )
            return
        candidates: list[Point] = []
        for r in ordered:
            checkpoint()
            if not any(kernel.m_dominates(w, r) for w in candidates):
                candidates.append(r)
                dataset.stats.window_inserts += 1
        if dataset.schema.is_totally_ordered:
            # No poset attributes: m-dominance is exact, no post-process.
            yield from candidates
            return
        yield from bnl_passes(
            candidates, kernel.native_dominates, self.window_size, dataset.stats, context
        )
