"""Algorithm base class and registry."""

from __future__ import annotations

import abc
from typing import ClassVar, Iterator

from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["SkylineAlgorithm", "register", "get_algorithm", "available_algorithms"]

_REGISTRY: dict[str, type["SkylineAlgorithm"]] = {}


def register(cls: type["SkylineAlgorithm"]) -> type["SkylineAlgorithm"]:
    """Class decorator adding an algorithm to the registry by its name."""
    if not getattr(cls, "name", None):
        raise AlgorithmError(f"{cls.__name__} has no name")
    key = cls.name.lower()
    if key in _REGISTRY:
        raise AlgorithmError(f"algorithm {key!r} registered twice")
    _REGISTRY[key] = cls
    return cls


def get_algorithm(name: str, **options) -> "SkylineAlgorithm":
    """Instantiate a registered algorithm by name (case-insensitive)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**options)


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names."""
    return tuple(sorted(_REGISTRY))


class SkylineAlgorithm(abc.ABC):
    """Base class: a skyline evaluator over a transformed dataset.

    Subclasses implement :meth:`run` as a generator that yields each
    **definite** skyline point exactly once.  A progressive algorithm
    yields points as soon as they are certain; a blocking one yields the
    whole skyline only after finishing its computation.  The harness
    measures progressiveness purely from the generator's emission
    pattern, so the distinction needs no extra machinery.
    """

    #: Registry key, e.g. ``"sdc+"``.
    name: ClassVar[str] = ""
    #: Whether answers stream out before the computation finishes.
    progressive: ClassVar[bool] = False
    #: Whether the algorithm needs R-tree indexes.
    uses_index: ClassVar[bool] = False

    @abc.abstractmethod
    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        """Yield the skyline of ``dataset`` (each point exactly once)."""

    def skyline(self, dataset: TransformedDataset) -> list[Point]:
        """Materialise the full skyline (convenience wrapper)."""
        return list(self.run(dataset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
