"""SDC+ -- offline data stratification (Section 4.6, Fig. 7).

The data is partitioned offline into the stratum sequence
``R_{c,p}, R_{c,c}, R^1_{p,p}, R^1_{p,c}, R^2_{p,p}, R^2_{p,c}, ...``
(see :mod:`repro.transform.stratification`) and each stratum is processed
by a BBS+-style pass (``SDC+-sub``) that prunes against ``S + L``, where
``S`` holds the definite skyline points of the finished strata and ``L``
the local skyline of the current stratum.  No point of a later stratum
can dominate a local skyline point of an earlier one, so ``L`` is
definite when its stratum finishes -- and for the two completely covered
strata each point is definite the moment it enters ``L`` (Lemma 4.3),
making SDC+ the most progressive of the three algorithms.

Paper deviation (DESIGN.md): Fig. 7 step 8 excludes the point's own
category when checking ``e`` against ``S``.  For partially covered
categories this can miss a lower-uncovered-level point of the *same*
category that natively (but not m-) dominates ``e`` -- Lemma 4.4 only
rules out the opposite direction -- so by default the same-category
subset is included; ``faithful_category_exclusion=True`` reproduces the
pseudocode literally (a regression test crafts a counterexample).
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bbs import traverse
from repro.core.categories import Category, dominators_of, ordered_categories
from repro.exceptions import AlgorithmError
from repro.rtree.node import Node
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point
__all__ = ["SDCPlus"]


@register
class SDCPlus(SkylineAlgorithm):
    """Offline stratification by dominance category and uncovered level."""

    name = "sdc+"
    progressive = True
    uses_index = True

    def __init__(self, faithful_category_exclusion: bool = False) -> None:
        self.faithful_category_exclusion = faithful_category_exclusion

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        stats = dataset.stats
        stratification = dataset.stratification
        if getattr(kernel, "is_batch", False):
            yield from self._run_batch(dataset, kernel, stats, stratification)
            return
        S: dict[Category, list[Point]] = {cat: [] for cat in Category}

        for stratum in stratification:
            cat = stratum.category
            covered = cat.completely_covered
            # Every point of this stratum has category `cat`, so only the
            # categories that can dominate `cat` matter for pruning.
            # (Deterministic scan order keeps comparison counts
            # reproducible across processes.)
            prune_cats = ordered_categories(dominators_of(cat))
            check_cats = tuple(
                scat
                for scat in prune_cats
                if not (self.faithful_category_exclusion and scat is cat)
            )
            L: list[Point] = []

            # `L` and every `S` bucket are key-sorted (ascending pops;
            # order-preserving deletes; key-merged at stratum ends), so
            # m-dominance scans stop at the probe's key bound.
            def node_pruned(node: Node) -> bool:
                mins = node.mins
                bound = node.min_key
                for p in L:
                    if p.key >= bound:
                        break
                    if kernel.m_dominates_mins(p, mins):
                        return True
                for scat in prune_cats:
                    for p in S[scat]:
                        if p.key >= bound:
                            break
                        if kernel.m_dominates_mins(p, mins):
                            return True
                return False

            def point_pruned(point: Point) -> bool:
                bound = point.key
                for p in L:
                    if p.key >= bound:
                        break
                    if kernel.m_dominates(p, point):
                        return True
                for scat in prune_cats:
                    for p in S[scat]:
                        if p.key >= bound:
                            break
                        if kernel.m_dominates(p, point):
                            return True
                return False

            for e in traverse(
                stratum.tree, stats, node_pruned, point_pruned, dataset.context
            ):
                # UpdateSkylines(e, S, L) -- Fig. 7.
                dominated = False
                i = 0
                while i < len(L):
                    ret = kernel.compare_dominance(e, L[i])
                    if ret == 1:
                        dominated = True
                        break
                    if ret == -1:
                        if covered:
                            raise AlgorithmError(
                                "SDC+ invariant violated: covered-stratum "
                                "point displaced after emission"
                            )
                        del L[i]  # order-preserving: L stays key-sorted
                        continue
                    i += 1
                if dominated:
                    continue
                for scat in check_cats:
                    for p in S[scat]:
                        if kernel.compare_dominance(e, p) == 1:
                            dominated = True
                            break
                    if dominated:
                        break
                if dominated:
                    continue
                L.append(e)
                if covered:
                    # Lemma 4.3: definite immediately.
                    yield e

            if not covered:
                yield from L
            # Keys are not monotone *across* strata: merge to keep the
            # bucket sorted for the key-bounded pruning scans.
            bucket = S[cat]
            if bucket and L and L[0].key < bucket[-1].key:
                merged = list(heapq.merge(bucket, L, key=lambda p: p.key))
                S[cat] = merged
            else:
                bucket.extend(L)

    # ------------------------------------------------------------------
    def _run_batch(self, dataset, kernel, stats, stratification) -> Iterator[Point]:
        """Same per-stratum control flow over vectorized buffers."""
        S = {cat: kernel.new_buffer() for cat in Category}

        for stratum in stratification:
            cat = stratum.category
            covered = cat.completely_covered
            prune_cats = ordered_categories(dominators_of(cat))
            check_cats = tuple(
                scat
                for scat in prune_cats
                if not (self.faithful_category_exclusion and scat is cat)
            )
            L = kernel.new_buffer()

            def node_pruned(node: Node) -> bool:
                mins = node.mins
                bound = node.min_key
                if L.prunes_mins(mins, bound):
                    return True
                return any(S[scat].prunes_mins(mins, bound) for scat in prune_cats)

            def point_pruned(point: Point) -> bool:
                if L.prunes_point(point):
                    return True
                return any(S[scat].prunes_point(point) for scat in prune_cats)

            for e in traverse(
                stratum.tree, stats, node_pruned, point_pruned, dataset.context
            ):
                # UpdateSkylines(e, S, L) -- Fig. 7.
                dominated, victims = L.update_compare(e)
                if victims and covered:
                    raise AlgorithmError(
                        "SDC+ invariant violated: covered-stratum "
                        "point displaced after emission"
                    )
                if dominated:
                    continue
                if any(S[scat].scan_compare(e) for scat in check_cats):
                    continue
                L.append(e)
                if covered:
                    # Lemma 4.3: definite immediately.
                    yield e

            if not covered:
                yield from L.points
            S[cat].absorb(L)
