"""Nearest-neighbour skyline (Kossmann/Ramsak/Rost, VLDB'02) adapted to
POS-queries ("NN+").

The NN algorithm was the state of the art before BBS and is the other
index-based evaluator the paper's introduction names.  It repeatedly
finds the point nearest to the origin inside a constraint region (such a
point is always a skyline point of the region), then splits the region
into ``d`` subregions -- one per dimension, upper-bounded by the found
point's coordinate -- and recurses over a to-do list.  Because the
subregions overlap, the same skyline point can be rediscovered; a
membership check against the result set removes those duplicates.

Adaptation to partially-ordered schemas follows the paper's framework:
the search runs in the transformed space (so "nearest" uses the same L1
key as BBS and region bounds apply to the transformed coordinates), which
yields the *m-skyline* -- a superset of the true skyline -- and a native
block-nested-loops pass removes the false positives, exactly as in BNL+.

Transformed-space duplicates need care: region bounds are exclusive, so
a point's exact-vector duplicates fall outside every subregion; they are
recovered with an exact range probe when their representative is found.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bnl import bnl_passes
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.rtree.rstar import RStarTree
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["NearestNeighborSkyline"]


def _nearest_in_region(
    tree: RStarTree,
    bounds: tuple[float, ...],
    stats,
    context: QueryContext = NULL_CONTEXT,
) -> Point | None:
    """Minimum-key point whose every coordinate is strictly below
    ``bounds`` (best-first search with region pruning)."""
    if tree.size == 0:
        return None
    checkpoint = context.checkpoint
    guard_heap = context.guard_heap
    heap: list[tuple[float, int, object]] = []
    tie = itertools.count()
    root = tree.root
    tree.access(root)
    entries = [root] if root.entries else []
    for entry in entries:
        heapq.heappush(heap, (entry.min_key, next(tie), entry))
    while heap:
        checkpoint()
        guard_heap(len(heap))
        _, _, entry = heapq.heappop(heap)
        if isinstance(entry, Point):
            return entry
        # A node can contain a qualifying point only if its best corner
        # is strictly inside the region in every dimension.
        if not all(lo < b for lo, b in zip(entry.mins, bounds)):
            continue
        tree.access(entry)
        if entry.leaf:
            for p in entry.entries:
                if all(x < b for x, b in zip(p.vector, bounds)):
                    heapq.heappush(heap, (p.key, next(tie), p))
        else:
            for child in entry.entries:
                if all(lo < b for lo, b in zip(child.mins, bounds)):
                    heapq.heappush(heap, (child.min_key, next(tie), child))
    return None


@register
class NearestNeighborSkyline(SkylineAlgorithm):
    """NN over the transformed space + native false-positive removal."""

    name = "nn+"
    progressive = False
    uses_index = True

    def __init__(self, window_size: int = 1000) -> None:
        self.window_size = window_size

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        stats = dataset.stats
        tree = dataset.index
        if tree.size == 0:
            return
        dims = dataset.dimensions
        infinity = float("inf")
        todo: list[tuple[float, ...]] = [(infinity,) * dims]
        seen_regions: set[tuple[float, ...]] = set(todo)
        found: dict[int, Point] = {}
        candidates: list[Point] = []

        context = dataset.context
        while todo:
            context.checkpoint()
            bounds = todo.pop()
            p = _nearest_in_region(tree, bounds, stats, context)
            if p is None:
                continue
            if id(p) not in found:
                found[id(p)] = p
                candidates.append(p)
                # Exclusive subregion bounds drop exact-vector duplicates:
                # recover them with an exact range probe.
                for twin in tree.search(p.vector, p.vector):
                    if id(twin) not in found:
                        found[id(twin)] = twin
                        candidates.append(twin)
            for k in range(dims):
                sub = list(bounds)
                sub[k] = p.vector[k]
                region = tuple(sub)
                # Overlapping subregions rediscover points; identical
                # regions (the NN algorithm's known blow-up) are searched
                # once only.
                if region not in seen_regions:
                    seen_regions.add(region)
                    todo.append(region)

        yield from bnl_passes(
            candidates, kernel.native_dominates, self.window_size, stats, context
        )
