"""BBS+ -- the direct adaptation of BBS to POS-queries (Section 4.4, Fig. 3).

Two changes relative to BBS:

* every heap-pruning comparison ("dominated") becomes an **m-dominance**
  comparison, since the R-tree indexes the transformed attribute values;
* ``UpdateSkylines`` must both detect that the new point is dominated
  *and* delete intermediate skyline points the new point dominates
  (false positives), using the **original** domain values.

Because any intermediate skyline point may later turn out to be a false
positive, BBS+ cannot emit anything until the traversal finishes -- it is
the least progressive of the three proposed algorithms.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bbs import traverse
from repro.rtree.node import Node
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["BBSPlus"]


@register
class BBSPlus(SkylineAlgorithm):
    """BBS over the transformed space with native false-positive removal."""

    name = "bbs+"
    progressive = False
    uses_index = True

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        stats = dataset.stats
        if getattr(kernel, "is_batch", False):
            skyline_buf = kernel.new_buffer()
            for e in traverse(
                dataset.index,
                stats,
                lambda node: skyline_buf.prunes_mins(node.mins, node.min_key),
                skyline_buf.prunes_point,
                dataset.context,
            ):
                dominated, _victims = skyline_buf.update_native(e)
                if not dominated:
                    skyline_buf.append(e)
            yield from skyline_buf.points
            return
        # Kept key-sorted (ascending pop order, order-preserving deletes)
        # so m-dominance pruning scans can stop at the key bound; the
        # native UpdateSkylines comparisons cannot (native-only dominance
        # does not bound the transformed key).
        skyline: list[Point] = []

        def node_pruned(node: Node) -> bool:
            mins = node.mins
            bound = node.min_key
            for p in skyline:
                if p.key >= bound:
                    return False
                if kernel.m_dominates_mins(p, mins):
                    return True
            return False

        def point_pruned(point: Point) -> bool:
            bound = point.key
            for p in skyline:
                if p.key >= bound:
                    return False
                if kernel.m_dominates(p, point):
                    return True
            return False

        for e in traverse(
            dataset.index, stats, node_pruned, point_pruned, dataset.context
        ):
            # UpdateSkylines (Fig. 3): native comparisons against every
            # intermediate skyline point, both directions.
            dominated = False
            i = 0
            while i < len(skyline):
                p = skyline[i]
                if kernel.native_dominates(p, e):
                    dominated = True
                    break
                if kernel.native_dominates(e, p):
                    del skyline[i]
                    continue
                i += 1
            if not dominated:
                skyline.append(e)
        yield from skyline
