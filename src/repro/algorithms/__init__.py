"""Skyline evaluation algorithms.

The paper's three proposals and all evaluated baselines:

========  ============================================================
``bnl``   Block-nested-loops on the native domains (Börzsönyi ICDE'01)
``bnl+``  Two-stage BNL: m-dominance filter, native post-process
``sfs``   Sort-filter-skyline on the transformed space + native filter
``dnc``   Divide & conquer on the transformed space + native filter
``nn+``   Nearest-neighbour skyline (VLDB'02) + native filter
``bbs``   Branch-and-bound skyline for totally-ordered schemas
``bbs+``  BBS over the transformed space with false-positive removal
``sdc``   Stratification by dominance classification (runtime strata)
``sdc+``  Offline stratification by category and uncovered level
========  ============================================================

Every algorithm is a generator over definite skyline
:class:`~repro.transform.point.Point` objects; non-progressive algorithms
simply emit everything at the end.
"""

from repro.algorithms.base import (
    SkylineAlgorithm,
    available_algorithms,
    get_algorithm,
    register,
)
from repro.algorithms.bnl import BlockNestedLoops
from repro.algorithms.bnl_plus import BlockNestedLoopsPlus
from repro.algorithms.sfs import SortFilterSkyline
from repro.algorithms.dnc import DivideAndConquer
from repro.algorithms.nn import NearestNeighborSkyline
from repro.algorithms.bbs import BranchAndBoundSkyline
from repro.algorithms.bbs_plus import BBSPlus
from repro.algorithms.sdc import SDC
from repro.algorithms.sdc_plus import SDCPlus

__all__ = [
    "SkylineAlgorithm",
    "available_algorithms",
    "get_algorithm",
    "register",
    "BlockNestedLoops",
    "BlockNestedLoopsPlus",
    "SortFilterSkyline",
    "DivideAndConquer",
    "NearestNeighborSkyline",
    "BranchAndBoundSkyline",
    "BBSPlus",
    "SDC",
    "SDCPlus",
]
