"""BNL+ -- the paper's optimised two-stage block-nested-loops baseline.

Stage 1 runs standard BNL over the **transformed** attribute values
(m-dominance: cheap integer comparisons) to produce the intermediate
skyline, which may contain false positives.  Stage 2 pipelines those
candidates through a second BNL using the **actual** attribute values
(native dominance) to eliminate the false positives.

Correctness: a true skyline point is never m-dominated (m-dominance
implies dominance), so stage 1 keeps it.  Conversely, if a candidate
``x`` is dominated by a record ``y`` that stage 1 eliminated, then
following the chain of m-dominators from ``y`` upward terminates at a
stage-1 survivor ``z`` with ``z`` dominating ``y`` and hence ``x`` by
transitivity -- so stage 2 sees a dominator for every false positive.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import SkylineAlgorithm, register
from repro.algorithms.bnl import bnl_passes
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["BlockNestedLoopsPlus"]


@register
class BlockNestedLoopsPlus(SkylineAlgorithm):
    """Filter-and-postprocess BNL over the transformed space."""

    name = "bnl+"
    progressive = False
    uses_index = False

    def __init__(self, window_size: int = 1000) -> None:
        self.window_size = window_size

    def run(self, dataset: TransformedDataset) -> Iterator[Point]:
        kernel = dataset.kernel
        stats = dataset.stats
        context = dataset.context
        if getattr(kernel, "is_batch", False):
            from repro.core.batch import batch_bnl_passes

            candidates = list(
                batch_bnl_passes(
                    dataset.points, kernel, "m", self.window_size, stats, context
                )
            )
            yield from batch_bnl_passes(
                candidates, kernel, "native", self.window_size, stats, context
            )
            return
        candidates = list(
            bnl_passes(
                dataset.points, kernel.m_dominates, self.window_size, stats, context
            )
        )
        yield from bnl_passes(
            candidates, kernel.native_dominates, self.window_size, stats, context
        )
