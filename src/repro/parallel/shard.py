"""Pickled-once shared-memory packing of transformed points.

The parent process flattens every :class:`~repro.transform.point.Point`
into a handful of flat ``numpy`` arrays inside **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment.  Worker
processes attach the segment once (in the pool initializer) and rebuild
their shard's points from array rows -- no per-task pickling of records,
vectors or native sets ever happens.  What *is* pickled is pickled once:
the schema + domain mappings setup blob shipped to each worker at pool
start (see :mod:`repro.parallel.worker`).

Layout (all offsets 8-byte aligned, ``n`` points, ``d`` transformed
dimensions, ``m`` poset attributes)::

    vectors  float64  (n, d)   transformed minimisation vectors
    levels   int64    (n,)     record-level uncovered levels
    cats     uint8    (n,)     category codes (CATEGORY_CODES order)
    rids     int64    (n,)     original record ids (rebuilt points carry
                               the true rid so heap tie-breaks match the
                               parent's; non-int rids fall back to the
                               row id)
    order    int64    (n,)     shard layout: global row ids, shards
                               contiguous; a task is a [start, stop)
                               slice of this array
    pix      int64    (n, m)   per-attribute interval/node indexes
                               (omitted when m == 0)

Native sets are *not* shipped: they are interned per poset node, so the
worker reconstructs them from ``pix`` through its own copy of the domain
mappings (``mapping.native_set_ix``) -- identical objects to what the
parent's :meth:`TransformedDataset.transform` would produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.categories import Category
from repro.transform.point import Point

__all__ = [
    "CATEGORY_CODES",
    "CATEGORY_BY_CODE",
    "ShmLayout",
    "SharedPointStore",
    "AttachedPointStore",
]

#: Stable category <-> uint8 code mapping (enum definition order).
CATEGORY_CODES: dict[Category, int] = {cat: i for i, cat in enumerate(Category)}
CATEGORY_BY_CODE: tuple[Category, ...] = tuple(Category)


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class ShmLayout:
    """Everything a worker needs to attach and map the segment."""

    name: str
    n: int
    dims: int
    nposets: int
    vectors_off: int
    levels_off: int
    cats_off: int
    rids_off: int
    order_off: int
    pix_off: int
    total: int


def _compute_layout(name: str, n: int, dims: int, nposets: int) -> ShmLayout:
    vectors_off = 0
    levels_off = _align8(vectors_off + 8 * n * dims)
    cats_off = _align8(levels_off + 8 * n)
    rids_off = _align8(cats_off + n)
    order_off = _align8(rids_off + 8 * n)
    pix_off = _align8(order_off + 8 * n)
    total = _align8(pix_off + 8 * n * nposets)
    return ShmLayout(
        name=name,
        n=n,
        dims=dims,
        nposets=nposets,
        vectors_off=vectors_off,
        levels_off=levels_off,
        cats_off=cats_off,
        rids_off=rids_off,
        order_off=order_off,
        pix_off=pix_off,
        total=max(total, 8),
    )


def _map_arrays(buf, layout: ShmLayout):
    """numpy views over a shared-memory buffer, per the layout."""
    n, d, m = layout.n, layout.dims, layout.nposets
    vectors = np.ndarray((n, d), dtype=np.float64, buffer=buf, offset=layout.vectors_off)
    levels = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=layout.levels_off)
    cats = np.ndarray((n,), dtype=np.uint8, buffer=buf, offset=layout.cats_off)
    rids = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=layout.rids_off)
    order = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=layout.order_off)
    pix = (
        np.ndarray((n, m), dtype=np.int64, buffer=buf, offset=layout.pix_off)
        if m
        else None
    )
    return vectors, levels, cats, rids, order, pix


class SharedPointStore:
    """Parent-side owner of the shared segment (create + pack + unlink)."""

    def __init__(self, points: list[Point], dims: int, nposets: int, order) -> None:
        n = len(points)
        probe = _compute_layout("?", n, dims, nposets)
        self._shm = shared_memory.SharedMemory(create=True, size=probe.total)
        self.layout = _compute_layout(self._shm.name, n, dims, nposets)
        vectors, levels, cats, rids, order_arr, pix = _map_arrays(
            self._shm.buf, self.layout
        )
        for i, p in enumerate(points):
            vectors[i] = p.vector
            levels[i] = p.level
            cats[i] = CATEGORY_CODES[p.category]
            # Heap tie-breaks key on rid (rtree/heap.py); ship the true
            # rid so worker-local emission order matches the parent's.
            # Non-int rids degrade to the row id -- order parity then
            # needs rids that sort like row positions, which every
            # integer-rid dataset satisfies trivially.
            rid = p.record.rid
            rids[i] = rid if isinstance(rid, int) else i
            if pix is not None:
                pix[i] = p.pix
        order_arr[:] = np.asarray(order, dtype=np.int64)

    def close(self) -> None:
        """Release the parent's mapping and destroy the segment."""
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class AttachedPointStore:
    """Worker-side read-only attachment to the parent's segment."""

    def __init__(self, layout: ShmLayout) -> None:
        self.layout = layout
        self._shm = shared_memory.SharedMemory(name=layout.name)
        (
            self.vectors,
            self.levels,
            self.cats,
            self.rids,
            self.order,
            self.pix,
        ) = _map_arrays(self._shm.buf, layout)

    def build_points(self, mappings, start: int, stop: int) -> list[Point]:
        """Rebuild the points for rows ``order[start:stop]``."""
        return self.build_rows(mappings, self.order[start:stop].tolist())

    def build_rows(self, mappings, rows) -> list[Point]:
        """Rebuild points for explicit **global** row ids.

        ``Point.record`` carries a lightweight stub whose ``rid`` is the
        parent point's **original record id**, so the heap's canonical
        ``(key, rid)`` tie-break (rtree/heap.py) orders worker-local
        emission exactly like the parent's serial run would.  Answers
        ship back as global row ids via an identity map kept by the
        caller (``zip(points, rows)``), never via the stub rid.  Vectors
        round-trip exactly (float64 in, float64 out), so the
        lazily-derived ``Point.key`` is bit-identical to the parent's.
        Steal-mode workers call this directly with the rows that
        survived the filter board.
        """
        from repro.core.record import Record

        points: list[Point] = []
        for g in rows:
            vector = tuple(self.vectors[g].tolist())
            if self.pix is not None:
                pix = tuple(self.pix[g].tolist())
                nsets = tuple(
                    mapping.native_set_ix(i) for mapping, i in zip(mappings, pix)
                )
            else:
                pix = ()
                nsets = ()
            points.append(
                Point(
                    Record(int(self.rids[g]), (), ()),
                    vector,
                    pix,
                    nsets,
                    CATEGORY_BY_CODE[int(self.cats[g])],
                    int(self.levels[g]),
                )
            )
        return points

    def close(self) -> None:
        """Detach (the parent owns unlinking)."""
        self.vectors = self.levels = self.cats = None
        self.rids = self.order = self.pix = None
        self._shm.close()
