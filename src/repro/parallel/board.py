"""Shared-memory control block: task deque, steal ledger, filter board.

One :class:`ControlBlock` is created per *query* (the point arrays live
in the per-executor :class:`~repro.parallel.shard.SharedPointStore`; this
segment carries only coordination state).  It packs three things into a
single ``multiprocessing.shared_memory`` segment:

**Task deque.**  Every task is a ``[start, stop)`` slice of the store's
``order`` array plus a *home slot* (contiguous blocks of tasks are
pre-assigned to worker slots).  Workers claim their own queue
front-to-back and, when it drains, steal from the back of the victim
with the most unclaimed work -- the classic work-stealing discipline,
serialised by one ``fork``-inherited lock (claims are rare and coarse).
``steals`` and per-slot claim-wait seconds are accounted in the block.

**Result regions.**  Each task owns a slice of the result array
mirroring its input slice, plus a counter row (one
:class:`~repro.core.stats.ComparisonStats` vector) and a status word the
parent polls to merge finished shards *incrementally* -- no barrier on
the full fan-out.

**Filter board** (the cross-shard Lemma 4.2 propagation).  Each task
owns ``board_reps`` representative slots.  The parent deterministically
seeds up to two *static* representatives per task before dispatch: the
task's minimum-key point and its minimum-key completely-covering point.
The min-key point of any subset is a member of that subset's local
skyline (dominance implies a strictly smaller key), and soundness never
needs more: ``rep`` eliminates ``q`` whenever the ``(rep.category,
q.category)`` edge is *bold* (m-dominance coincides with dominance,
Lemma 4.2) and ``rep`` strictly m-dominates ``q``'s vector -- ``rep`` is
a real record, so ``q`` is dominated and cannot be a skyline answer,
whether or not ``rep`` itself survives.  The strictness also protects
transformed-space duplicates of ``rep`` (they must survive).  Workers
consult the board *before and during* their shard scans (in
``filter_chunk``-row passes) and, in ``"dynamic"`` filter mode, publish
improved representatives out of each finished local skyline into their
remaining slots -- cross-shard pruning while computation is still
running, instead of only at merge time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from multiprocessing import shared_memory

import numpy as np

from repro.core.categories import Category, is_bold
from repro.core.stats import ComparisonStats

__all__ = [
    "STAT_FIELDS",
    "BOLD_MATRIX",
    "FILTER_MODES",
    "ControlLayout",
    "ControlBlock",
    "static_representatives",
    "prune_chunk",
    "TASK_PENDING",
    "TASK_OK",
    "TASK_TIMEOUT",
]

#: Canonical counter-vector order shipped through the control block.
STAT_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(ComparisonStats))

#: ``BOLD_MATRIX[src_code, dst_code]`` -- Lemma 4.2 bold edges over the
#: stable category codes of :mod:`repro.parallel.shard`.
BOLD_MATRIX: np.ndarray = np.array(
    [[is_bold(src, dst) for dst in Category] for src in Category], dtype=bool
)

FILTER_MODES = {"off": 0, "static": 1, "dynamic": 2}

TASK_PENDING, TASK_OK, TASK_TIMEOUT = 0, 1, 2

#: Representative-slot states.
REP_EMPTY, REP_STATIC, REP_DYNAMIC = 0, 1, 2

_HEADER_INTS = 8  # n_tasks, slots, dims, board_reps, filter_mode, chunk, cancel, pad
_HEADER_FLOATS = 2  # deadline epoch (0 = none), reserved


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class ControlLayout:
    """Everything a worker needs to attach and map the segment."""

    name: str
    n_tasks: int
    slots: int
    dims: int
    board_reps: int
    total_rows: int
    total: int


def _compute_layout(
    name: str, n_tasks: int, slots: int, dims: int, board_reps: int, total_rows: int
) -> tuple[ControlLayout, dict[str, int]]:
    nstat = len(STAT_FIELDS)
    nreps = n_tasks * board_reps
    offsets: dict[str, int] = {}
    cursor = 0

    def put(key: str, nbytes: int) -> None:
        nonlocal cursor
        offsets[key] = cursor
        cursor = _align8(cursor + nbytes)

    put("header_i", 8 * _HEADER_INTS)
    put("header_f", 8 * _HEADER_FLOATS)
    put("bounds", 8 * n_tasks * 2)
    put("home", 8 * n_tasks)
    put("kill", n_tasks)
    put("claims", 8 * n_tasks)
    put("status", 8 * n_tasks)
    put("result_count", 8 * n_tasks)
    put("result_rows", 8 * total_rows)
    put("counters", 8 * n_tasks * nstat)
    put("task_elapsed", 8 * n_tasks)
    put("steals", 8 * slots)
    put("claim_seconds", 8 * slots)
    put("rep_state", 8 * nreps)
    put("rep_cat", 8 * nreps)
    put("rep_vec", 8 * nreps * dims)
    layout = ControlLayout(
        name=name,
        n_tasks=n_tasks,
        slots=slots,
        dims=dims,
        board_reps=board_reps,
        total_rows=total_rows,
        total=max(cursor, 8),
    )
    return layout, offsets


class ControlBlock:
    """Parent- or worker-side mapping of one query's control segment."""

    def __init__(
        self,
        layout: ControlLayout,
        shm: shared_memory.SharedMemory,
        offsets: dict[str, int],
        owner: bool,
    ) -> None:
        self.layout = layout
        self._shm = shm
        self._owner = owner
        buf = shm.buf
        n, s, d, r = layout.n_tasks, layout.slots, layout.dims, layout.board_reps
        nstat = len(STAT_FIELDS)

        def arr(key: str, shape, dtype):
            return np.ndarray(shape, dtype=dtype, buffer=buf, offset=offsets[key])

        self.header_i = arr("header_i", (_HEADER_INTS,), np.int64)
        self.header_f = arr("header_f", (_HEADER_FLOATS,), np.float64)
        self.bounds = arr("bounds", (n, 2), np.int64)
        self.home = arr("home", (n,), np.int64)
        self.kill = arr("kill", (n,), np.uint8)
        self.claims = arr("claims", (n,), np.int64)
        self.status = arr("status", (n,), np.int64)
        self.result_count = arr("result_count", (n,), np.int64)
        self.result_rows = arr("result_rows", (layout.total_rows,), np.int64)
        self.counters = arr("counters", (n, nstat), np.int64)
        self.task_elapsed = arr("task_elapsed", (n,), np.float64)
        self.steals = arr("steals", (s,), np.int64)
        self.claim_seconds = arr("claim_seconds", (s,), np.float64)
        self.rep_state = arr("rep_state", (n * r,), np.int64)
        self.rep_cat = arr("rep_cat", (n * r,), np.int64)
        self.rep_vec = arr("rep_vec", (n * r, d), np.float64)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        shards,
        slots: int,
        dims: int,
        board_reps: int,
        filter_mode: str,
        filter_chunk: int,
        deadline_epoch: float | None,
    ) -> "ControlBlock":
        """Parent-side: allocate and initialise the segment.

        ``shards`` is the ordered shard tuple from the partition; task
        ``i`` covers rows ``[start_i, stop_i)`` of the store's ``order``
        array, and homes are assigned as contiguous blocks over the
        ``slots`` worker slots.
        """
        n_tasks = len(shards)
        total_rows = sum(len(s.rows) for s in shards)
        probe, _ = _compute_layout("?", n_tasks, slots, dims, board_reps, total_rows)
        shm = shared_memory.SharedMemory(create=True, size=probe.total)
        layout, offsets = _compute_layout(
            shm.name, n_tasks, slots, dims, board_reps, total_rows
        )
        block = cls(layout, shm, offsets, owner=True)
        block.header_i[:] = 0
        block.header_f[:] = 0.0
        block.header_i[0] = n_tasks
        block.header_i[1] = slots
        block.header_i[2] = dims
        block.header_i[3] = board_reps
        block.header_i[4] = FILTER_MODES[filter_mode]
        block.header_i[5] = filter_chunk
        if deadline_epoch is not None:
            block.header_f[0] = deadline_epoch
        cursor = 0
        for i, shard in enumerate(shards):
            block.bounds[i, 0] = cursor
            cursor += len(shard.rows)
            block.bounds[i, 1] = cursor
            block.home[i] = i * slots // n_tasks
        block.kill[:] = 0
        block.claims[:] = 0
        block.status[:] = TASK_PENDING
        block.result_count[:] = 0
        block.counters[:] = 0
        block.task_elapsed[:] = 0.0
        block.steals[:] = 0
        block.claim_seconds[:] = 0.0
        block.rep_state[:] = REP_EMPTY
        return block

    @classmethod
    def attach(cls, layout: ControlLayout) -> "ControlBlock":
        """Worker-side: map an existing segment read-write."""
        shm = shared_memory.SharedMemory(name=layout.name)
        _, offsets = _compute_layout(
            layout.name,
            layout.n_tasks,
            layout.slots,
            layout.dims,
            layout.board_reps,
            layout.total_rows,
        )
        return cls(layout, shm, offsets, owner=False)

    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return bool(self.header_i[6])

    def cancel(self) -> None:
        """Raise the cooperative stop flag (drains exit between tasks)."""
        self.header_i[6] = 1

    @property
    def filter_mode(self) -> int:
        return int(self.header_i[4])

    @property
    def filter_chunk(self) -> int:
        return int(self.header_i[5])

    @property
    def deadline_epoch(self) -> float | None:
        value = float(self.header_f[0])
        return value if value > 0 else None

    def remaining_seconds(self) -> float | None:
        """Wall-clock budget left, or ``None`` without a deadline."""
        expires = self.deadline_epoch
        if expires is None:
            return None
        return expires - time.time()

    # ------------------------------------------------------------------
    def seed_static_reps(self, task: int, reps) -> None:
        """Parent-side: publish a task's deterministic representatives.

        ``reps`` is a list of ``(category_code, vector)`` pairs, at most
        two (min-key + min-key covering; see
        :func:`static_representatives`).
        """
        base = task * self.layout.board_reps
        for j, (cat_code, vector) in enumerate(reps[:2]):
            self.rep_vec[base + j] = vector
            self.rep_cat[base + j] = cat_code
            self.rep_state[base + j] = REP_STATIC

    def publish_dynamic_reps(self, task: int, reps) -> int:
        """Worker-side: fill the task's free slots with better reps.

        ``reps`` is ``(category_code, vector)`` pairs in deterministic
        (min-key per category) order.  The state word is written last so
        a concurrent reader never observes a half-written entry.
        Returns how many were published.
        """
        base = task * self.layout.board_reps
        free = [
            base + j
            for j in range(self.layout.board_reps)
            if self.rep_state[base + j] == REP_EMPTY
        ]
        published = 0
        for slot_ix, (cat_code, vector) in zip(free, reps):
            self.rep_vec[slot_ix] = vector
            self.rep_cat[slot_ix] = cat_code
            self.rep_state[slot_ix] = REP_DYNAMIC
            published += 1
        return published

    def read_reps(self, mode: int) -> tuple[np.ndarray, np.ndarray]:
        """Current board snapshot: ``(rep_vectors, rep_categories)``.

        ``mode`` gates visibility: static mode sees only the parent's
        seed entries (deterministic), dynamic mode additionally sees
        worker-published entries.  Entries are returned in board-slot
        order, which is fixed, so the *consultation order* is
        deterministic even when visibility is not.
        """
        states = self.rep_state
        if mode >= FILTER_MODES["dynamic"]:
            mask = states != REP_EMPTY
        else:
            mask = states == REP_STATIC
        idx = np.nonzero(mask)[0]
        return self.rep_vec[idx], self.rep_cat[idx]

    def task_counters(self, task: int) -> dict[str, int]:
        """Parent-side: one task's :class:`ComparisonStats` snapshot."""
        row = self.counters[task]
        return {name: int(row[i]) for i, name in enumerate(STAT_FIELDS)}

    def write_task_counters(self, task: int, stats: ComparisonStats) -> None:
        """Worker-side: persist a finished task's exact counter bill."""
        snapshot = stats.snapshot()
        for i, name in enumerate(STAT_FIELDS):
            self.counters[task, i] = snapshot[name]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the mapping (owner also destroys the segment)."""
        arrays = (
            "header_i header_f bounds home kill claims status result_count "
            "result_rows counters task_elapsed steals claim_seconds "
            "rep_state rep_cat rep_vec"
        ).split()
        for name in arrays:
            setattr(self, name, None)
        try:
            self._shm.close()
        finally:
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass


def static_representatives(points, rows) -> list[tuple[int, tuple[float, ...]]]:
    """Deterministic parent-side seed reps for one task's raw rows.

    The minimum-key point plus, when distinct, the minimum-key
    completely-covering point -- ``(category_code, vector)`` pairs.
    Soundness does not require local-skyline membership (any real record
    works as an eliminator), but the min-key point *is* a local-skyline
    member, which makes it the strongest single filter the task owns.
    """
    from repro.parallel.shard import CATEGORY_CODES

    best = min(rows, key=lambda i: (points[i].key, i))
    reps = [(CATEGORY_CODES[points[best].category], points[best].vector)]
    covering = [i for i in rows if points[i].category.completely_covering]
    if covering:
        best_cov = min(covering, key=lambda i: (points[i].key, i))
        if best_cov != best:
            reps.append(
                (CATEGORY_CODES[points[best_cov].category], points[best_cov].vector)
            )
    return reps


def prune_chunk(
    vectors: np.ndarray,
    cats: np.ndarray,
    alive: np.ndarray,
    rep_vecs: np.ndarray,
    rep_cats: np.ndarray,
) -> tuple[int, int]:
    """Apply board representatives to one chunk of shard rows.

    ``vectors``/``cats``/``alive`` are chunk-aligned views; ``alive`` is
    mutated in place.  A row dies when some representative's category
    edge to it is bold *and* the representative strictly m-dominates its
    vector (all coordinates ``<=``, at least one ``<``) -- the exact
    per-point analogue of the merge prefilter's corner test, so
    duplicates of a representative always survive.  Returns
    ``(checks, hits)`` where a check is one representative-vs-point test
    actually evaluated (bold edge and still-alive rows only), billed to
    ``ComparisonStats.filter_board_checks``.
    """
    checks = 0
    hits = 0
    for r in range(len(rep_vecs)):
        if not alive.any():
            break
        eligible = alive & BOLD_MATRIX[rep_cats[r]][cats]
        count = int(eligible.sum())
        if not count:
            continue
        checks += count
        rv = rep_vecs[r]
        dominated = eligible & (rv <= vectors).all(axis=1) & (rv < vectors).any(axis=1)
        newly = int(dominated.sum())
        if newly:
            hits += newly
            alive[dominated] = False
    return checks, hits
