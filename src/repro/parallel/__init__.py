"""Multi-core sharded skyline execution (docs/parallel.md).

Partitions a :class:`~repro.transform.dataset.TransformedDataset` by
SDC+ category strata (grid fallback on the monotone transformed key)
into fine-grained tasks sized by the admission cost model, ships the
points once through ``multiprocessing.shared_memory``, drains the tasks
through a work-stealing process pool with a cross-shard filter board
(Lemma 4.2 representatives prune other workers' shards *during*
compute), and merges finished shards incrementally with the paper's
Lemma 4.1 restriction checks.  Entry points::

    engine.run("sdc+", parallel=ParallelConfig(workers=4))
    engine.serve(parallel=4)                      # server execution mode
    parallel_skyline(dataset, "sdc+", config=4)   # one-shot
    repro bench-parallel                          # speedup + comparison CLI
"""

from repro.parallel.config import ParallelConfig
from repro.parallel.executor import (
    ParallelResult,
    ParallelSkylineExecutor,
    parallel_skyline,
)
from repro.parallel.merge import IncrementalMerger, MergeOutcome, merge_local_skylines
from repro.parallel.partition import (
    Partition,
    Shard,
    TaskPlan,
    partition_dataset,
    plan_tasks,
)

__all__ = [
    "ParallelConfig",
    "ParallelResult",
    "ParallelSkylineExecutor",
    "parallel_skyline",
    "IncrementalMerger",
    "MergeOutcome",
    "merge_local_skylines",
    "Partition",
    "Shard",
    "TaskPlan",
    "partition_dataset",
    "plan_tasks",
]
