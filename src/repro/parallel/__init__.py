"""Multi-core sharded skyline execution (docs/parallel.md).

Partitions a :class:`~repro.transform.dataset.TransformedDataset` by
SDC+ category strata (grid fallback on the monotone transformed key),
ships the points once through ``multiprocessing.shared_memory``, runs
the shard-local skylines in a process pool and merges them with the
paper's Lemma 4.1 restriction checks plus a Lemma 4.2 representative
prefilter.  Entry points::

    engine.run("sdc+", parallel=ParallelConfig(workers=4))
    engine.serve(parallel=4)                      # server execution mode
    parallel_skyline(dataset, "sdc+", config=4)   # one-shot
    repro bench-parallel                          # speedup curve CLI
"""

from repro.parallel.config import ParallelConfig
from repro.parallel.executor import (
    ParallelResult,
    ParallelSkylineExecutor,
    parallel_skyline,
)
from repro.parallel.merge import MergeOutcome, merge_local_skylines
from repro.parallel.partition import Partition, Shard, partition_dataset

__all__ = [
    "ParallelConfig",
    "ParallelResult",
    "ParallelSkylineExecutor",
    "parallel_skyline",
    "MergeOutcome",
    "merge_local_skylines",
    "Partition",
    "Shard",
    "partition_dataset",
]
