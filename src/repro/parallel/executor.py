"""Process-pool skyline execution: partition, fan out, steal, merge.

:class:`ParallelSkylineExecutor` owns the sharding decision, the
shared-memory point store and a persistent worker pool over one
:class:`~repro.transform.dataset.TransformedDataset`.  One executor
serves many queries (the serving layer keeps one per server); everything
is built lazily on the first :meth:`run` and torn down by :meth:`close`.

Two schedulers share the pool (see
:attr:`~repro.parallel.config.ParallelConfig.scheduler`):

* ``"static"`` -- the legacy one-task-per-worker fan-out: dispatch every
  shard as its own future, barrier on all of them, merge once.
* ``"steal"`` (default) -- over-partition into fine-grained tasks, submit
  one *drain* per worker slot, and let drains claim tasks from the
  shared deque (stealing from the most-loaded victim when their home
  queue runs dry).  Workers prune their shards against the cross-shard
  filter board before and during their scans, and the parent absorbs
  finished shards into the merge **incrementally** -- shard ``g`` merges
  (and streams to the sink) the moment tasks ``0..g`` are done, while
  later tasks still compute.

Execution contract (asserted by the parity suite):

* **Answers** are the exact skyline -- the same *set* of points the
  serial engine produces for every algorithm, and in strata mode the
  same emission *order* as serial SDC+.
* **Counters**: every task's :class:`~repro.core.stats.ComparisonStats`
  snapshot plus the parent-side merge bill are added into the same
  aggregate bundle a serial run would charge.  The totals are exact sums
  (no sampling, no loss); they differ from the serial totals only
  because partitioned work *is* different work.  With ``filter="static"``
  (or ``"off"``) they are also deterministic run-to-run; the default
  ``"dynamic"`` filter keeps answers exact but lets counter *magnitudes*
  vary with task timing (a representative published earlier prunes
  more).
* **Resilience**: deadlines propagate into workers (each task re-arms a
  :class:`~repro.resilience.context.QueryContext` with the remaining
  wall-clock budget at claim time); cancellation is polled while waiting
  on workers; a dead worker (or any broken pool) degrades to a serial
  recomputation with a :class:`~repro.exceptions.ParallelFallbackWarning`
  -- never a wrong or partial answer (an already-streamed sink prefix is
  retracted through the sink's typed reset).  Queries carrying a
  *resource budget* run serially: budget truncation is defined on the
  serial emission prefix, which a fan-out cannot reproduce.  Every
  serial routing is explicit -- :attr:`ParallelResult.routed_serial`
  plus a reason, surfaced as the server's ``routed_serial`` metric --
  instead of a silent fall-through.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import threading
import time
import warnings
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.stats import ComparisonStats
from repro.exceptions import (
    ParallelError,
    ParallelFallbackWarning,
    QueryCancelledError,
    QueryTimeoutError,
    ResilienceError,
)
from repro.parallel.board import (
    TASK_PENDING,
    TASK_TIMEOUT,
    ControlBlock,
    static_representatives,
)
from repro.parallel.config import ParallelConfig
from repro.parallel.merge import IncrementalMerger, merge_local_skylines
from repro.parallel.partition import Partition, partition_dataset
from repro.parallel.shard import SharedPointStore
from repro.parallel.worker import (
    ShardTask,
    WorkerSetup,
    ensure_claim_lock,
    init_worker,
    run_shard_task,
    run_steal_drain,
)
from repro.resilience.context import QueryContext
from repro.resilience.executor import PartialResult, execute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.record import Record
    from repro.transform.dataset import TransformedDataset
    from repro.transform.point import Point

__all__ = ["ParallelResult", "ParallelSkylineExecutor", "parallel_skyline"]

logger = logging.getLogger("repro.parallel")

#: Stage keys every :attr:`ParallelResult.stage_seconds` dict carries.
STAGE_KEYS = ("partition", "pool_setup", "compute", "steal_wait", "merge")


@dataclass
class ParallelResult:
    """The outcome of one sharded query.

    ``counters`` is the query's aggregate bill (worker snapshots plus
    the merge phase, or the serial bill when the query did not shard);
    the same numbers are merged into the caller's stats bundle.
    """

    points: list["Point"] = field(default_factory=list)
    algorithm: str = ""
    elapsed: float = 0.0
    #: ``"strata"``, ``"grid"`` or ``"serial"``.
    mode: str = "serial"
    #: Whether the query actually fanned out to worker processes.
    parallel: bool = False
    workers: int = 0
    shard_sizes: tuple[int, ...] = ()
    #: Shards eliminated whole by the representative prefilter.
    eliminated_shards: tuple[int, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    worker_counters: list[dict[str, int]] = field(default_factory=list)
    merge_counters: dict[str, int] = field(default_factory=dict)
    #: ``True`` when a broken pool degraded this query to serial.
    fallback: bool = False
    fallback_reason: str | None = None
    #: ``"steal"``, ``"static"`` or ``"serial"`` -- the discipline that
    #: actually ran (``"steal"`` degrades to ``"static"`` without fork).
    scheduler: str = "serial"
    #: Fine-grained tasks the query fanned out into (0 when serial).
    tasks: int = 0
    #: Tasks executed by a slot other than their home (steal events).
    steals: int = 0
    #: ``True`` when the query was *deliberately* routed to the serial
    #: path (tiny data, shard floor, collapsed partition, budget) --
    #: distinct from :attr:`fallback`, which is a crash recovery.
    routed_serial: bool = False
    routed_reason: str | None = None
    #: Wall-clock breakdown; ``merge`` overlaps ``compute`` under the
    #: steal scheduler (shards absorb while others still run) and
    #: ``steal_wait`` is the *aggregate* across slots of time spent in
    #: claim/steal arbitration.
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Dynamic filter-board representatives published by workers.
    filter_reps_published: int = 0

    @property
    def records(self) -> list["Record"]:
        return [p.record for p in self.points]

    @property
    def filter_board_checks(self) -> int:
        return self.counters.get("filter_board_checks", 0)

    @property
    def filter_board_hits(self) -> int:
        return self.counters.get("filter_board_hits", 0)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator["Point"]:
        return iter(self.points)

    def to_partial(self) -> PartialResult:
        """Adapt for callers speaking the resilient-executor protocol."""
        return PartialResult(
            points=self.points,
            complete=True,
            exhausted_reason=None,
            algorithm=self.algorithm,
            elapsed=self.elapsed,
            counters=dict(self.counters),
            checkpoints=0,
            fallback=False,
        )


def _fork_context(name: str | None):
    if name is not None:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _stage_dict(**values: float) -> dict[str, float]:
    return {key: float(values.get(key, 0.0)) for key in STAGE_KEYS}


class ParallelSkylineExecutor:
    """Reusable sharded-execution backend over one dataset."""

    def __init__(
        self,
        dataset: "TransformedDataset",
        config: ParallelConfig | int | None = None,
        estimator=None,
    ) -> None:
        self.dataset = dataset
        self.config = ParallelConfig.coerce(config) or ParallelConfig()
        #: Optional :class:`~repro.serving.admission.CostEstimator`
        #: feeding the adaptive task sizing (the serving layer wires in
        #: the admission controller's calibrated estimator).
        self.estimator = estimator
        self._partition: Partition | None = None
        self._partition_seconds = 0.0
        self._store: SharedPointStore | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        # Serving runs concurrent queries through one executor; setup and
        # teardown must not interleave (a lost race leaks a shm segment).
        self._setup_lock = threading.Lock()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelSkylineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def partition(self) -> Partition:
        """The sharding decision (computed on first use)."""
        if self._partition is None:
            started = time.perf_counter()
            self._partition = partition_dataset(
                self.dataset, self.config, self.estimator
            )
            self._partition_seconds = time.perf_counter() - started
        return self._partition

    def effective_scheduler(self) -> str:
        """``"steal"`` only where the claim lock can be fork-inherited."""
        if self.config.scheduler == "static":
            return "static"
        ctx = _fork_context(self.config.start_method)
        if ctx.get_start_method() != "fork":
            return "static"
        return "steal"

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._setup_lock:
            if self._pool is not None:
                return self._pool
            dataset = self.dataset
            partition = self.partition
            if self._store is None:
                order: list[int] = []
                for shard in partition.shards:
                    order.extend(shard.rows)
                self._store = SharedPointStore(
                    dataset.points,
                    dataset.dimensions,
                    dataset.schema.num_partial,
                    order,
                )
            base_kernel = getattr(dataset.kernel, "wrapped", dataset.kernel)
            setup_blob = pickle.dumps(
                WorkerSetup(
                    schema=dataset.schema,
                    mappings=dataset.mappings,
                    strategy=dataset.strategy,
                    native_mode=dataset.native_mode,
                    kernel_name=dataset.kernel_name,
                    faithful_gate=base_kernel.faithful_gate,
                    max_entries=dataset.max_entries,
                    bulk_load=dataset.bulk_load,
                )
            )
            if self.effective_scheduler() == "steal":
                # Must exist in the parent's module globals *before* the
                # pool forks its workers -- locks travel by inheritance,
                # not pickling (see repro.parallel.worker).
                ensure_claim_lock()
            self._pool = ProcessPoolExecutor(
                max_workers=min(
                    self.config.resolved_workers(), len(partition.shards)
                ),
                mp_context=_fork_context(self.config.start_method),
                initializer=init_worker,
                initargs=(setup_blob, self._store.layout),
            )
            return self._pool

    def invalidate(self) -> None:
        """Drop shards/store/pool so the next run re-shards.

        Callers mutating the dataset (insert/delete) must invalidate --
        the shared-memory arrays are a snapshot of the points at pack
        time.  The serving layer does this under its writer lock.
        """
        self._teardown()

    def _teardown(self) -> None:
        with self._setup_lock:
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
            self._partition = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if store is not None:
            store.close()

    def close(self) -> None:
        """Shut the pool down and unlink the shared-memory segment."""
        self._teardown()
        self._closed = True

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: str = "sdc+",
        *,
        stats: ComparisonStats | None = None,
        context: QueryContext | None = None,
        sink: "list[Point] | None" = None,
        **options,
    ) -> ParallelResult:
        """Execute one query, sharded when the dataset is big enough.

        ``stats`` redirects the aggregate bill (defaults to the
        dataset's bundle); ``context`` carries deadline / cancellation
        (a resource *budget* forces the serial path, see the module
        docstring); ``sink`` receives answers incrementally -- on the
        serial path per algorithm checkpoint, on the sharded path one
        batch per merged shard as its merge pass completes (each batch
        extends a valid prefix of the final emission order; under the
        steal scheduler batches arrive while later tasks still compute).
        """
        if self._closed:
            raise ParallelError("executor is closed")
        target = stats if stats is not None else self.dataset.stats
        started = time.perf_counter()

        has_budget = context is not None and context.budget is not None
        partition = self.partition
        if has_budget or partition.mode == "serial":
            reason = "budget" if has_budget else (partition.reason or "serial")
            return self._run_serial(
                algorithm,
                target,
                context,
                sink,
                options,
                started,
                mode="serial",
                fallback=False,
                fallback_reason=None,
                routed_reason=reason,
            )

        scheduler = self.effective_scheduler()
        try:
            if scheduler == "steal":
                outcome = self._run_stealing(
                    algorithm, target, context, sink, options, started, partition
                )
            else:
                outcome = self._run_sharded(
                    algorithm, target, context, sink, options, started, partition
                )
        except ResilienceError:
            # Deadline / cancellation stops are the query's own control
            # flow, not a pool failure -- never recompute after them.
            raise
        except Exception as err:
            if not self.config.fallback:
                raise
            self._teardown()  # the pool is broken; rebuild lazily
            message = (
                f"parallel worker pool failed mid-query "
                f"({type(err).__name__}: {err}); recomputing serially "
                f"(algorithm={algorithm}, shards={len(partition.shards)})"
            )
            logger.warning(message)
            warnings.warn(message, ParallelFallbackWarning, stacklevel=2)
            if sink is not None and len(sink):
                # The merge may have streamed some shard batches before
                # the failure; the serial recompute restarts emission
                # from scratch, so retract the stale prefix (push sinks
                # propagate this as a typed reset).
                reset = getattr(sink, "reset", None)
                if reset is not None:
                    reset()
                else:
                    del sink[:]
            return self._run_serial(
                algorithm,
                target,
                _remaining_context(context),
                sink,
                options,
                started,
                mode=partition.mode,
                fallback=True,
                fallback_reason=f"{type(err).__name__}: {err}",
                routed_reason=None,
            )
        return outcome

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        algorithm: str,
        target: ComparisonStats,
        context: QueryContext | None,
        sink,
        options: dict,
        started: float,
        *,
        mode: str,
        fallback: bool,
        fallback_reason: str | None,
        routed_reason: str | None,
    ) -> ParallelResult:
        view = self.dataset.query_view(stats=target)
        before = target.snapshot()
        result = execute(view, algorithm, context, sink=sink, **options)
        return ParallelResult(
            points=result.points,
            algorithm=result.algorithm,
            elapsed=time.perf_counter() - started,
            mode=mode,
            parallel=False,
            workers=0,
            shard_sizes=(),
            eliminated_shards=(),
            counters=target.diff(before),
            worker_counters=[],
            merge_counters={},
            fallback=fallback,
            fallback_reason=fallback_reason,
            scheduler="serial",
            tasks=0,
            steals=0,
            routed_serial=routed_reason is not None,
            routed_reason=routed_reason,
            stage_seconds=_stage_dict(partition=self._partition_seconds),
        )

    # -- static scheduler ----------------------------------------------
    def _run_sharded(
        self,
        algorithm: str,
        target: ComparisonStats,
        context: QueryContext | None,
        sink,
        options: dict,
        started: float,
        partition: Partition,
    ) -> ParallelResult:
        dataset = self.dataset
        config = self.config
        setup_started = time.perf_counter()
        pool = self._ensure_pool()
        pool_setup = time.perf_counter() - setup_started
        deadline = context.deadline if context is not None else None
        cancel = context.cancel if context is not None else None
        expires = started + deadline if deadline is not None else None

        chaos = config.chaos
        futures = []
        cursor = 0
        compute_started = time.perf_counter()
        for shard in partition.shards:
            kill = False
            if chaos is not None:
                try:
                    chaos.maybe_fail(f"parallel.dispatch.shard{shard.index}")
                except Exception:
                    kill = True
            remaining = None
            if expires is not None:
                remaining = max(1e-6, expires - time.perf_counter())
            task = ShardTask(
                shard_index=shard.index,
                start=cursor,
                stop=cursor + len(shard.rows),
                algorithm=algorithm,
                options=dict(options),
                deadline=remaining,
                kill=kill,
            )
            cursor += len(shard.rows)
            futures.append(pool.submit(run_shard_task, task))

        pending = set(futures)
        while pending:
            done, pending = wait(
                pending, timeout=config.poll_interval, return_when=FIRST_EXCEPTION
            )
            for future in done:
                future.result()  # raises on a broken pool / worker fault
            if cancel is not None and cancel.cancelled:
                self._stop_pending(pending)
                raise self._control_stop(
                    QueryCancelledError(), algorithm, target, futures, started
                )
            if expires is not None and time.perf_counter() > expires:
                self._stop_pending(pending)
                raise self._control_stop(
                    QueryTimeoutError(deadline, time.perf_counter() - started),
                    algorithm,
                    target,
                    futures,
                    started,
                )
        compute_seconds = time.perf_counter() - compute_started

        outcomes = sorted((f.result() for f in futures), key=lambda o: o.shard_index)
        if any(o.status == "timeout" for o in outcomes):
            raise self._control_stop(
                QueryTimeoutError(deadline, time.perf_counter() - started),
                algorithm,
                target,
                futures,
                started,
            )

        local_skylines = [
            [dataset.points[row] for row in outcome.rows] for outcome in outcomes
        ]
        merge_stats = ComparisonStats()
        merge_view = dataset.query_view(stats=merge_stats)
        # The sink rides through the merge itself: each shard's survivor
        # batch is pushed the moment that shard's pass finishes, so a
        # streaming consumer sees progressive per-bucket delivery
        # instead of one terminal batch.
        merge_started = time.perf_counter()
        merged = merge_local_skylines(merge_view, local_skylines, sink=sink)
        merge_seconds = time.perf_counter() - merge_started

        worker_counters = [outcome.counters for outcome in outcomes]
        aggregate = ComparisonStats()
        for snapshot in worker_counters:
            aggregate.add_snapshot(snapshot)
        aggregate.merge(merge_stats)
        for snapshot in worker_counters:
            target.add_snapshot(snapshot)
        target.merge(merge_stats)

        return ParallelResult(
            points=merged.points,
            algorithm=algorithm,
            elapsed=time.perf_counter() - started,
            mode=partition.mode,
            parallel=True,
            workers=min(config.resolved_workers(), len(partition.shards)),
            shard_sizes=partition.sizes,
            eliminated_shards=merged.eliminated,
            counters=aggregate.snapshot(),
            worker_counters=worker_counters,
            merge_counters=merge_stats.snapshot(),
            fallback=False,
            fallback_reason=None,
            scheduler="static",
            tasks=len(partition.shards),
            steals=0,
            routed_serial=False,
            routed_reason=None,
            stage_seconds=_stage_dict(
                partition=self._partition_seconds,
                pool_setup=pool_setup,
                compute=compute_seconds,
                merge=merge_seconds,
            ),
        )

    # -- steal scheduler -----------------------------------------------
    def _run_stealing(
        self,
        algorithm: str,
        target: ComparisonStats,
        context: QueryContext | None,
        sink,
        options: dict,
        started: float,
        partition: Partition,
    ) -> ParallelResult:
        dataset = self.dataset
        config = self.config
        setup_started = time.perf_counter()
        pool = self._ensure_pool()
        n_tasks = len(partition.shards)
        slots = min(config.resolved_workers(), n_tasks)
        deadline = context.deadline if context is not None else None
        cancel = context.cancel if context is not None else None
        expires = started + deadline if deadline is not None else None
        deadline_epoch = (
            time.time() + (expires - time.perf_counter())
            if expires is not None
            else None
        )

        block = ControlBlock.create(
            partition.shards,
            slots,
            dataset.dimensions,
            config.board_reps,
            filter_mode=config.filter,
            filter_chunk=config.filter_chunk,
            deadline_epoch=deadline_epoch,
        )
        try:
            if config.filter != "off":
                # Deterministic parent-side board seed: every task gets
                # its static representatives *before* any worker starts,
                # so static-filter counters are claim-order independent.
                for shard in partition.shards:
                    block.seed_static_reps(
                        shard.index,
                        static_representatives(dataset.points, shard.rows),
                    )
            chaos = config.chaos
            if chaos is not None:
                for shard in partition.shards:
                    try:
                        chaos.maybe_fail(f"parallel.dispatch.shard{shard.index}")
                    except Exception:
                        block.kill[shard.index] = 1
            pool_setup = time.perf_counter() - setup_started

            compute_started = time.perf_counter()
            futures = [
                pool.submit(
                    run_steal_drain, block.layout, slot, algorithm, dict(options)
                )
                for slot in range(slots)
            ]

            merge_stats = ComparisonStats()
            merge_view = dataset.query_view(stats=merge_stats)
            merger = IncrementalMerger(merge_view, sink=sink)
            frontier = 0
            merge_seconds = 0.0
            compute_seconds = None
            pending = set(futures)
            while True:
                if pending:
                    done, pending = wait(
                        pending,
                        timeout=config.poll_interval,
                        return_when=FIRST_EXCEPTION,
                    )
                    for future in done:
                        future.result()  # raises on a broken pool
                    if not pending:
                        compute_seconds = time.perf_counter() - compute_started
                # Absorb every newly finished shard at the frontier --
                # merging while later tasks are still computing.
                while (
                    frontier < n_tasks
                    and int(block.status[frontier]) != TASK_PENDING
                ):
                    if int(block.status[frontier]) == TASK_TIMEOUT:
                        block.cancel()
                        raise self._steal_stop(
                            QueryTimeoutError(
                                deadline, time.perf_counter() - started
                            ),
                            algorithm,
                            target,
                            block,
                            merge_stats,
                            merger,
                            started,
                        )
                    lo = int(block.bounds[frontier, 0])
                    count = int(block.result_count[frontier])
                    rows = block.result_rows[lo : lo + count].tolist()
                    candidates = [dataset.points[row] for row in rows]
                    absorb_started = time.perf_counter()
                    merger.absorb(frontier, candidates)
                    merge_seconds += time.perf_counter() - absorb_started
                    frontier += 1
                # Control checks come before the exit test: a cancelled
                # or expired query must raise even when every task
                # happened to finish inside the first poll interval
                # (same semantics as the static path's wait loop).
                if cancel is not None and cancel.cancelled:
                    block.cancel()
                    raise self._steal_stop(
                        QueryCancelledError(),
                        algorithm,
                        target,
                        block,
                        merge_stats,
                        merger,
                        started,
                    )
                if expires is not None and time.perf_counter() > expires:
                    block.cancel()
                    raise self._steal_stop(
                        QueryTimeoutError(deadline, time.perf_counter() - started),
                        algorithm,
                        target,
                        block,
                        merge_stats,
                        merger,
                        started,
                    )
                if frontier >= n_tasks and not pending:
                    break
            if compute_seconds is None:  # pragma: no cover - defensive
                compute_seconds = time.perf_counter() - compute_started

            merged = merger.outcome()
            worker_counters = [block.task_counters(i) for i in range(n_tasks)]
            aggregate = ComparisonStats()
            for snapshot in worker_counters:
                aggregate.add_snapshot(snapshot)
            aggregate.merge(merge_stats)
            for snapshot in worker_counters:
                target.add_snapshot(snapshot)
            target.merge(merge_stats)

            from repro.parallel.board import REP_DYNAMIC

            return ParallelResult(
                points=merged.points,
                algorithm=algorithm,
                elapsed=time.perf_counter() - started,
                mode=partition.mode,
                parallel=True,
                workers=slots,
                shard_sizes=partition.sizes,
                eliminated_shards=merged.eliminated,
                counters=aggregate.snapshot(),
                worker_counters=worker_counters,
                merge_counters=merge_stats.snapshot(),
                fallback=False,
                fallback_reason=None,
                scheduler="steal",
                tasks=n_tasks,
                steals=int(block.steals.sum()),
                routed_serial=False,
                routed_reason=None,
                stage_seconds=_stage_dict(
                    partition=self._partition_seconds,
                    pool_setup=pool_setup,
                    compute=compute_seconds,
                    steal_wait=float(block.claim_seconds.sum()),
                    merge=merge_seconds,
                ),
                filter_reps_published=int(
                    (block.rep_state == REP_DYNAMIC).sum()
                ),
            )
        finally:
            block.close()

    @staticmethod
    def _stop_pending(pending) -> None:
        for future in pending:
            future.cancel()

    @staticmethod
    def _control_stop(error, algorithm: str, target: ComparisonStats, futures, started):
        """Package a deadline/cancel stop: bill finished shards, attach
        an (empty) partial -- static sharded execution emits nothing
        until the merge, so a stopped query has no answer prefix."""
        for future in futures:
            if future.done() and not future.cancelled() and future.exception() is None:
                target.add_snapshot(future.result().counters)
        error.partial = PartialResult(
            points=[],
            complete=False,
            exhausted_reason=(
                "deadline" if isinstance(error, QueryTimeoutError) else "cancelled"
            ),
            algorithm=algorithm,
            elapsed=time.perf_counter() - started,
        )
        return error

    @staticmethod
    def _steal_stop(
        error,
        algorithm: str,
        target: ComparisonStats,
        block: ControlBlock,
        merge_stats: ComparisonStats,
        merger: IncrementalMerger,
        started: float,
    ):
        """Package a steal-mode stop: bill every finished task plus the
        merge work done so far, and attach the already-absorbed shard
        prefix (a valid prefix of the final emission order -- strictly
        more useful than the static path's empty partial)."""
        for i in range(block.layout.n_tasks):
            if int(block.status[i]) != TASK_PENDING:
                target.add_snapshot(block.task_counters(i))
        target.merge(merge_stats)
        error.partial = PartialResult(
            points=list(merger.outcome().points),
            complete=False,
            exhausted_reason=(
                "deadline" if isinstance(error, QueryTimeoutError) else "cancelled"
            ),
            algorithm=algorithm,
            elapsed=time.perf_counter() - started,
        )
        return error


def _remaining_context(context: QueryContext | None) -> QueryContext | None:
    """A fresh context carrying what is left of ``context``'s deadline
    (re-arming the original would restart its clock)."""
    if context is None:
        return None
    deadline = context.deadline
    if deadline is not None and context._expires_at is not None:
        deadline = max(1e-6, context._expires_at - time.monotonic())
    return QueryContext(deadline=deadline, budget=context.budget, cancel=context.cancel)


def parallel_skyline(
    dataset: "TransformedDataset",
    algorithm: str = "sdc+",
    config: ParallelConfig | int | None = None,
    *,
    stats: ComparisonStats | None = None,
    context: QueryContext | None = None,
    **options,
) -> ParallelResult:
    """One-shot sharded query (creates and closes a throwaway executor)."""
    with ParallelSkylineExecutor(dataset, config) as executor:
        return executor.run(algorithm, stats=stats, context=context, **options)
