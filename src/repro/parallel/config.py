"""Configuration for the multi-core work-stealing skyline executor."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.chaos import FaultInjector

__all__ = ["ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """How to shard a query across worker processes.

    Parameters
    ----------
    workers:
        Worker-process slots.  ``None`` (default) resolves to
        ``os.cpu_count()`` -- the pool is sized by the hardware unless
        the caller pins it.  The partitioner may still produce fewer
        tasks than slots (small datasets, few strata), in which case
        the pool shrinks to match.
    min_shard_points:
        Floor on the average task size: with ``n`` points at most
        ``n // min_shard_points`` tasks are created.  When that leaves
        fewer than two tasks the query is routed serial (sharding
        overhead would dominate) and the routing is *counted* -- see
        :attr:`ParallelResult.routed_serial` and the ``routed_serial``
        counter in the server's ``parallel`` metrics section.
    max_stratum_skew:
        Strata-mode eligibility threshold: when one SDC+ stratum holds
        more than this fraction of all points, category partitioning
        cannot balance and the partitioner falls back to grid mode.
    mode:
        ``"auto"`` (default) picks strata partitioning when the schema
        has a poset attribute and the strata are balanced enough, grid
        otherwise; ``"strata"`` / ``"grid"`` force one strategy
        (``"strata"`` still degrades to grid when no poset attribute
        exists).
    scheduler:
        ``"steal"`` (default): over-partition into fine-grained tasks
        (about :attr:`tasks_per_worker` per slot, scaled down when the
        cost model predicts little work) drained from a shared task
        deque with steal accounting, cross-shard filter propagation
        through the shared-memory board, and an incremental merge that
        absorbs finished shards while others still compute.
        ``"static"``: the legacy one-task-per-worker partition/merge
        path (the baseline the comparison-reduction benchmark measures
        against).  Platforms without the ``fork`` start method degrade
        ``"steal"`` to ``"static"`` (the claim lock is inherited).
    tasks_per_worker:
        Steal-mode over-partitioning target: aim for this many tasks
        per worker slot so skewed strata cannot leave slots idle.
    min_task_work:
        Steal-mode work floor, in estimated dominance comparisons per
        task.  The task count adapts to the admission cost model's
        per-``n log n`` work estimate (calibrated when an estimator is
        supplied, analytic otherwise): light queries get fewer, larger
        tasks so per-task dispatch overhead cannot dominate.
    filter:
        Filter-board behaviour.  ``"dynamic"`` (default): workers
        consult the board before and between chunks of their shard scan
        and publish improved representatives from each finished local
        skyline -- best pruning, but the visible board depends on task
        timing so counter *magnitudes* (never answers) can vary
        run-to-run.  ``"static"``: only the parent's deterministic
        seed representatives are consulted -- bit-reproducible
        counters, used by the CI comparison-reduction gate.  ``"off"``:
        no board pruning (pure scheduling benefit).
    board_reps:
        Per-task filter-board capacity: the parent seeds up to two
        static representatives per task and workers may publish into
        the remaining slots.
    filter_chunk:
        Rows per filter pass: steal workers prune their shard in chunks
        of this size, re-reading the board between chunks so
        representatives published mid-query prune the remainder.
    start_method:
        ``multiprocessing`` start method for the pool.  ``None`` picks
        ``"fork"`` when the platform offers it (cheapest: the worker
        inherits the parent's modules) and the platform default
        otherwise.
    poll_interval:
        Seconds between cancellation/deadline/merge-frontier checks
        while the parent waits on workers.
    fallback:
        When ``True`` (default) a broken worker pool degrades to serial
        recomputation with a :class:`~repro.exceptions.ParallelFallbackWarning`;
        when ``False`` the underlying failure propagates.
    chaos:
        Optional :class:`~repro.resilience.chaos.FaultInjector` fired at
        the ``parallel.dispatch.shard<i>`` sites.  An injected fault
        marks that task so the worker process hard-exits the moment it
        *claims* it -- a deterministic stand-in for a worker crash
        (``kill -9``) mid-steal, used by the chaos suite.
    """

    workers: int | None = None
    min_shard_points: int = 32
    max_stratum_skew: float = 0.8
    mode: str = "auto"
    scheduler: str = "steal"
    tasks_per_worker: int = 4
    min_task_work: float = 8_000.0
    filter: str = "dynamic"
    board_reps: int = 4
    filter_chunk: int = 4096
    start_method: str | None = None
    poll_interval: float = 0.02
    fallback: bool = True
    chaos: "FaultInjector | None" = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in ("auto", "strata", "grid"):
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.scheduler not in ("steal", "static"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.filter not in ("dynamic", "static", "off"):
            raise ValueError(f"unknown filter mode {self.filter!r}")
        if self.min_shard_points < 1:
            raise ValueError(
                f"min_shard_points must be >= 1, got {self.min_shard_points}"
            )
        if self.tasks_per_worker < 1:
            raise ValueError(
                f"tasks_per_worker must be >= 1, got {self.tasks_per_worker}"
            )
        if self.min_task_work <= 0:
            raise ValueError(f"min_task_work must be > 0, got {self.min_task_work}")
        if self.board_reps < 2:
            raise ValueError(f"board_reps must be >= 2, got {self.board_reps}")
        if self.filter_chunk < 1:
            raise ValueError(f"filter_chunk must be >= 1, got {self.filter_chunk}")
        if not 0.0 < self.max_stratum_skew <= 1.0:
            raise ValueError(
                f"max_stratum_skew must be in (0, 1], got {self.max_stratum_skew}"
            )
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")

    def resolved_workers(self) -> int:
        """Worker slots: the explicit count, or ``os.cpu_count()``."""
        if self.workers is not None:
            return self.workers
        return max(1, os.cpu_count() or 1)

    @staticmethod
    def coerce(value: "ParallelConfig | int | None") -> "ParallelConfig | None":
        """Normalise an ``engine.run(parallel=...)`` argument.

        Accepts a ready :class:`ParallelConfig`, a bare worker count, or
        ``None`` (meaning: run serially).
        """
        if value is None or isinstance(value, ParallelConfig):
            return value
        if isinstance(value, bool):  # bool is an int subclass; reject it
            raise TypeError("parallel= expects a ParallelConfig or a worker count")
        if isinstance(value, int):
            return ParallelConfig(workers=value)
        raise TypeError(
            f"parallel= expects a ParallelConfig or a worker count, got {value!r}"
        )
