"""Configuration for the multi-core sharded skyline executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.chaos import FaultInjector

__all__ = ["ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """How to shard a query across worker processes.

    Parameters
    ----------
    workers:
        Target process-pool size.  The partitioner may produce fewer
        shards than workers (small datasets, few strata), in which case
        the pool shrinks to match.
    min_shard_points:
        Floor on the average shard size: with ``n`` points at most
        ``n // min_shard_points`` shards are created.  When that leaves
        fewer than two shards the query simply runs serially (sharding
        overhead would dominate).
    max_stratum_skew:
        Strata-mode eligibility threshold: when one SDC+ stratum holds
        more than this fraction of all points, category partitioning
        cannot balance and the partitioner falls back to grid mode.
    mode:
        ``"auto"`` (default) picks strata partitioning when the schema
        has a poset attribute and the strata are balanced enough, grid
        otherwise; ``"strata"`` / ``"grid"`` force one strategy
        (``"strata"`` still degrades to grid when no poset attribute
        exists).
    start_method:
        ``multiprocessing`` start method for the pool.  ``None`` picks
        ``"fork"`` when the platform offers it (cheapest: the worker
        inherits the parent's modules) and the platform default
        otherwise.
    poll_interval:
        Seconds between cancellation/deadline checks while the parent
        waits on worker futures.
    fallback:
        When ``True`` (default) a broken worker pool degrades to serial
        recomputation with a :class:`~repro.exceptions.ParallelFallbackWarning`;
        when ``False`` the underlying failure propagates.
    chaos:
        Optional :class:`~repro.resilience.chaos.FaultInjector` fired at
        the ``parallel.dispatch.shard<i>`` sites.  An injected fault
        marks that shard's task so the worker process hard-exits on
        receipt -- a deterministic stand-in for a worker crash
        (``kill -9``) used by the chaos suite.
    """

    workers: int = 2
    min_shard_points: int = 32
    max_stratum_skew: float = 0.8
    mode: str = "auto"
    start_method: str | None = None
    poll_interval: float = 0.02
    fallback: bool = True
    chaos: "FaultInjector | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in ("auto", "strata", "grid"):
            raise ValueError(f"unknown partition mode {self.mode!r}")

    @staticmethod
    def coerce(value: "ParallelConfig | int | None") -> "ParallelConfig | None":
        """Normalise an ``engine.run(parallel=...)`` argument.

        Accepts a ready :class:`ParallelConfig`, a bare worker count, or
        ``None`` (meaning: run serially).
        """
        if value is None or isinstance(value, ParallelConfig):
            return value
        if isinstance(value, bool):  # bool is an int subclass; reject it
            raise TypeError("parallel= expects a ParallelConfig or a worker count")
        if isinstance(value, int):
            return ParallelConfig(workers=value)
        raise TypeError(
            f"parallel= expects a ParallelConfig or a worker count, got {value!r}"
        )
