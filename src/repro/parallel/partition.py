"""Dataset partitioning for sharded skyline execution.

Two strategies (cf. Ciaccia & Martinenghi's grid/stratum partitioning):

**Strata mode** groups *consecutive* SDC+ strata (``R_cp, R_cc, R^1_pp,
R^1_pc, ...``; see :mod:`repro.transform.stratification`) into balanced
shards.  The stratification order carries a one-directional dominance
guarantee -- a point can only be dominated by points in its own or an
*earlier* stratum -- so shard-local skylines merge with a single ordered
pass (earlier shards' survivors are definite; see
:mod:`repro.parallel.merge`).

**Grid mode** is the fallback when no poset attribute exists, a single
stratum holds (almost) all points, or the caller forces it: points are
rank-partitioned on the monotone L1 key of the transformed vector
(``Point.key``) into contiguous chunks.  Key rank is one-directional for
dominance too: dominance implies m-dominance (the transform's
necessary-condition property, Section 4.2), and m-dominance implies a
strictly smaller key -- so a point in a later chunk can never dominate a
point in an earlier one and the same ordered merge applies.

**Task sizing** is adaptive under the ``"steal"`` scheduler:
:func:`plan_tasks` targets :attr:`~repro.parallel.config.ParallelConfig.tasks_per_worker`
tasks per worker slot (so skewed strata cannot leave slots idle), scaled
down when the admission cost model's calibrated per-``n log n`` work
estimate says the query is too light to amortise that many dispatches,
and floored by ``min_shard_points``.  The legacy ``"static"`` scheduler
keeps one task per slot.  Every serial routing decision carries an
explicit ``reason`` so callers can *count* it (the ``routed_serial``
metric) instead of silently falling through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Category
from repro.transform.dataset import TransformedDataset

from repro.parallel.config import ParallelConfig

__all__ = ["Shard", "Partition", "TaskPlan", "plan_tasks", "partition_dataset"]


@dataclass(frozen=True)
class Shard:
    """One unit of worker-local skyline work.

    ``rows`` are indexes into the parent's ``dataset.points`` list; they
    are laid out contiguously in the shared ``order`` array so a task
    payload is just a ``[start, stop)`` slice.
    """

    index: int
    rows: tuple[int, ...]
    #: Stratum labels grouped into this shard ("grid" chunks have none).
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class Partition:
    """The sharding decision for one dataset."""

    shards: tuple[Shard, ...]
    #: ``"strata"``, ``"grid"`` or ``"serial"`` (too small to shard).
    mode: str
    #: Whether shard order carries the one-directional dominance
    #: guarantee (earlier shards cannot be dominated by later ones).
    ordered: bool
    #: Why the partitioner chose this outcome -- always set for serial
    #: routings (``"tiny-data"``, ``"shard-floor"``, ``"single-stratum"``,
    #: ``"strata-collapsed"``, ``"grid-collapsed"``), informational
    #: otherwise (``"skewed-strata"`` for a skew-forced grid, ``None``
    #: for a plain strata/grid split).
    reason: str | None = None
    #: Worker slots the plan was sized for.
    slots: int = 0

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(len(s.rows) for s in self.shards)


@dataclass(frozen=True)
class TaskPlan:
    """How many tasks :func:`partition_dataset` should aim for."""

    slots: int
    tasks: int
    #: Estimated total dominance comparisons the sizing was based on.
    estimated_comparisons: float
    #: ``True`` when the estimate came from a calibrated cost profile.
    calibrated: bool
    #: Set when the plan routes the query serial.
    serial_reason: str | None = None


def _serial(reason: str, slots: int = 0) -> Partition:
    return Partition(
        shards=(), mode="serial", ordered=True, reason=reason, slots=slots
    )


def _estimated_work(n: int, dimensions: int, estimator) -> tuple[float, bool]:
    """Total-comparison estimate driving the task-count adaptation."""
    if estimator is not None:
        try:
            return estimator.peak_comparisons(n, dimensions)
        except AttributeError:  # duck-typed estimator without the hook
            pass
    from repro.serving.admission import _analytic_skyline_size

    return n * _analytic_skyline_size(n, dimensions), False


def plan_tasks(
    dataset: TransformedDataset, config: ParallelConfig, estimator=None
) -> TaskPlan:
    """Pick the task count for one dataset under one config.

    Static scheduler: one task per worker slot (legacy behaviour).
    Steal scheduler: ``slots * tasks_per_worker`` tasks, scaled down to
    ``estimated_work / min_task_work`` when the cost model predicts the
    query is light, floored at one task per slot and capped by the
    ``min_shard_points`` floor.  Fewer than two viable tasks routes the
    query serial with an explicit reason.
    """
    n = len(dataset.points)
    slots = config.resolved_workers()
    floor_cap = n // max(1, config.min_shard_points)
    if n == 0 or n < 2 * config.min_shard_points:
        return TaskPlan(slots, 0, 0.0, False, serial_reason="tiny-data")
    if config.scheduler == "static":
        tasks = min(slots, floor_cap)
        if tasks < 2:
            return TaskPlan(slots, tasks, 0.0, False, serial_reason="shard-floor")
        return TaskPlan(slots, tasks, 0.0, False)
    work, calibrated = _estimated_work(n, dataset.dimensions, estimator)
    by_work = int(work // config.min_task_work)
    tasks = max(slots, min(slots * config.tasks_per_worker, max(1, by_work)))
    tasks = min(tasks, floor_cap)
    if tasks < 2:
        return TaskPlan(
            slots, tasks, work, calibrated, serial_reason="shard-floor"
        )
    return TaskPlan(slots, tasks, work, calibrated)


def _balanced_groups(sizes: list[int], groups: int) -> list[list[int]]:
    """Greedily group consecutive blocks into ``groups`` balanced runs."""
    total = sum(sizes)
    target = total / groups
    out: list[list[int]] = []
    current: list[int] = []
    acc = 0
    for i, size in enumerate(sizes):
        current.append(i)
        acc += size
        if acc >= target and len(out) < groups - 1:
            out.append(current)
            current = []
            acc = 0
    if current:
        out.append(current)
    return out


def partition_dataset(
    dataset: TransformedDataset, config: ParallelConfig, estimator=None
) -> Partition:
    """Split ``dataset`` into shards per the configured strategy.

    ``estimator`` (a :class:`~repro.serving.admission.CostEstimator`, or
    anything with its ``peak_comparisons`` hook) feeds the steal
    scheduler's adaptive task sizing; without one the analytic
    cold-start work bound is used.
    """
    n = len(dataset.points)
    plan = plan_tasks(dataset, config, estimator)
    if plan.serial_reason is not None:
        return _serial(plan.serial_reason, plan.slots)

    mode = config.mode
    if mode in ("auto", "strata") and dataset.schema.num_partial > 0:
        strata = dataset.stratification.strata
        if len(strata) < 2:
            # All points share one stratum (e.g. a single-category
            # dataset): category partitioning is impossible.
            return _grid_partition(dataset, plan, reason="single-stratum")
        if max(len(s) for s in strata) > config.max_stratum_skew * n:
            return _grid_partition(dataset, plan, reason="skewed-strata")
        return _strata_partition(dataset, strata, plan)
    return _grid_partition(dataset, plan, reason=None)


def _strata_partition(dataset, strata, plan: TaskPlan) -> Partition:
    position = {id(p): i for i, p in enumerate(dataset.points)}
    sizes = [len(s) for s in strata]
    # A stratum is never split: within one stratum there is no dominance
    # direction, so a split would break the ordered-merge invariant (and
    # the serial SDC+ emission order).  Fine granularity comes from
    # grouping fewer strata per task.
    groups = _balanced_groups(sizes, min(plan.tasks, len(strata)))
    shards = []
    for gi, stratum_ixs in enumerate(groups):
        rows: list[int] = []
        labels: list[str] = []
        for si in stratum_ixs:
            stratum = strata[si]
            labels.append(stratum.label)
            rows.extend(position[id(p)] for p in stratum.points)
        shards.append(Shard(index=gi, rows=tuple(rows), labels=tuple(labels)))
    shards = [s for s in shards if s.rows]
    if len(shards) < 2:
        return _serial("strata-collapsed", plan.slots)
    shards = tuple(
        Shard(index=i, rows=s.rows, labels=s.labels) for i, s in enumerate(shards)
    )
    return Partition(
        shards=shards, mode="strata", ordered=True, reason=None, slots=plan.slots
    )


def _grid_partition(dataset, plan: TaskPlan, reason: str | None) -> Partition:
    n = len(dataset.points)
    ranked = sorted(range(n), key=lambda i: (dataset.points[i].key, i))
    base, extra = divmod(n, plan.tasks)
    shards = []
    cursor = 0
    for gi in range(plan.tasks):
        size = base + (1 if gi < extra else 0)
        if size == 0:
            continue
        shards.append(
            Shard(index=len(shards), rows=tuple(ranked[cursor : cursor + size]))
        )
        cursor += size
    if len(shards) < 2:
        return _serial("grid-collapsed", plan.slots)
    # Key rank is one-directional for dominance even with posets:
    # dominance => m-dominance => strictly smaller key.
    return Partition(
        shards=tuple(shards), mode="grid", ordered=True, reason=reason,
        slots=plan.slots,
    )


def shard_categories(dataset, shard: Shard) -> frozenset[Category]:
    """Categories present in a shard (used by the merge prefilter)."""
    return frozenset(dataset.points[i].category for i in shard.rows)
