"""Dataset partitioning for sharded skyline execution.

Two strategies (cf. Ciaccia & Martinenghi's grid/stratum partitioning):

**Strata mode** groups *consecutive* SDC+ strata (``R_cp, R_cc, R^1_pp,
R^1_pc, ...``; see :mod:`repro.transform.stratification`) into balanced
shards.  The stratification order carries a one-directional dominance
guarantee -- a point can only be dominated by points in its own or an
*earlier* stratum -- so shard-local skylines merge with a single ordered
pass (earlier shards' survivors are definite; see
:mod:`repro.parallel.merge`).

**Grid mode** is the fallback when no poset attribute exists, a single
stratum holds (almost) all points, or the caller forces it: points are
rank-partitioned on the monotone L1 key of the transformed vector
(``Point.key``) into contiguous chunks.  Key rank is one-directional for
dominance too: dominance implies m-dominance (the transform's
necessary-condition property, Section 4.2), and m-dominance implies a
strictly smaller key -- so a point in a later chunk can never dominate a
point in an earlier one and the same ordered merge applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Category
from repro.transform.dataset import TransformedDataset

from repro.parallel.config import ParallelConfig

__all__ = ["Shard", "Partition", "partition_dataset"]


@dataclass(frozen=True)
class Shard:
    """One unit of worker-local skyline work.

    ``rows`` are indexes into the parent's ``dataset.points`` list; they
    are laid out contiguously in the shared ``order`` array so a task
    payload is just a ``[start, stop)`` slice.
    """

    index: int
    rows: tuple[int, ...]
    #: Stratum labels grouped into this shard ("grid" chunks have none).
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class Partition:
    """The sharding decision for one dataset."""

    shards: tuple[Shard, ...]
    #: ``"strata"``, ``"grid"`` or ``"serial"`` (too small to shard).
    mode: str
    #: Whether shard order carries the one-directional dominance
    #: guarantee (earlier shards cannot be dominated by later ones).
    ordered: bool

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(len(s.rows) for s in self.shards)


def _serial(reason: str) -> Partition:  # noqa: ARG001 - reason is for callers/debug
    return Partition(shards=(), mode="serial", ordered=True)


def _balanced_groups(sizes: list[int], groups: int) -> list[list[int]]:
    """Greedily group consecutive blocks into ``groups`` balanced runs."""
    total = sum(sizes)
    target = total / groups
    out: list[list[int]] = []
    current: list[int] = []
    acc = 0
    for i, size in enumerate(sizes):
        current.append(i)
        acc += size
        if acc >= target and len(out) < groups - 1:
            out.append(current)
            current = []
            acc = 0
    if current:
        out.append(current)
    return out


def partition_dataset(
    dataset: TransformedDataset, config: ParallelConfig
) -> Partition:
    """Split ``dataset`` into shards per the configured strategy."""
    n = len(dataset.points)
    shards_wanted = min(config.workers, max(1, n // max(1, config.min_shard_points)))
    if n == 0 or shards_wanted < 2:
        return _serial("too small")

    mode = config.mode
    if mode in ("auto", "strata") and dataset.schema.num_partial > 0:
        strata = dataset.stratification.strata
        if len(strata) >= 2 and max(len(s) for s in strata) <= config.max_stratum_skew * n:
            return _strata_partition(dataset, strata, shards_wanted)
        # Skewed or single-stratum data: fall through to grid.
    return _grid_partition(dataset, shards_wanted)


def _strata_partition(dataset, strata, shards_wanted: int) -> Partition:
    position = {id(p): i for i, p in enumerate(dataset.points)}
    sizes = [len(s) for s in strata]
    groups = _balanced_groups(sizes, min(shards_wanted, len(strata)))
    shards = []
    for gi, stratum_ixs in enumerate(groups):
        rows: list[int] = []
        labels: list[str] = []
        for si in stratum_ixs:
            stratum = strata[si]
            labels.append(stratum.label)
            rows.extend(position[id(p)] for p in stratum.points)
        shards.append(Shard(index=gi, rows=tuple(rows), labels=tuple(labels)))
    shards = [s for s in shards if s.rows]
    if len(shards) < 2:
        return _serial("strata collapsed")
    return Partition(shards=tuple(shards), mode="strata", ordered=True)


def _grid_partition(dataset, shards_wanted: int) -> Partition:
    n = len(dataset.points)
    ranked = sorted(range(n), key=lambda i: (dataset.points[i].key, i))
    base, extra = divmod(n, shards_wanted)
    shards = []
    cursor = 0
    for gi in range(shards_wanted):
        size = base + (1 if gi < extra else 0)
        if size == 0:
            continue
        shards.append(
            Shard(index=len(shards), rows=tuple(ranked[cursor : cursor + size]))
        )
        cursor += size
    if len(shards) < 2:
        return _serial("grid collapsed")
    # Key rank is one-directional for dominance even with posets:
    # dominance => m-dominance => strictly smaller key.
    return Partition(shards=tuple(shards), mode="grid", ordered=True)


def shard_categories(dataset, shard: Shard) -> frozenset[Category]:
    """Categories present in a shard (used by the merge prefilter)."""
    return frozenset(dataset.points[i].category for i in shard.rows)
