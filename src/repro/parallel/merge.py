"""Cross-shard merge of shard-local skylines.

Both partition modes are *ordered* (see :mod:`repro.parallel.partition`):
a point in shard ``g`` can only be dominated by points in shards
``h <= g``.  The merge is therefore a single pass in shard order -- each
shard's candidates are checked against the running definite set ``S``
and the survivors are promoted into ``S`` afterwards (never during: a
shard's candidates are its local skyline, hence mutually non-dominated).

That single-pass structure is what makes the merge *incremental*:
:class:`IncrementalMerger` absorbs one shard at a time, so the
work-stealing executor can merge shard ``g`` the moment tasks
``0..g`` have finished, while later tasks are still computing -- no
barrier on the full fan-out, and each absorbed shard's survivors stream
to the sink immediately (they are definite: only earlier shards could
have dominated them).  :func:`merge_local_skylines` is the one-shot
wrapper over the same pass, bit-identical in answers and counters.

Two paper devices make the pass cheap:

**Lemma 4.1 restriction.**  ``S`` is bucketed by category and a
candidate ``p`` only scans the buckets in ``dominators_of(p.category)``
-- dominance is impossible from any other category.  With the batch
kernel the buckets are :class:`~repro.core.batch.SkylineBuffer` objects
seeded per shard with the bulk ``extend`` promotion; counters are
identical to the scalar scan by the buffer contract.

**Representative prefilter (Lemma 4.2).**  Before any per-point work,
each shard nominates up to two representatives from its local skyline
(its minimum-key point, and its minimum-key *completely covering* point)
and earlier shards' representatives try to knock out whole later shards:
``rep`` eliminates shard ``g`` when (a) every category present in ``g``
is reachable from ``rep.category`` over a *bold* edge -- where
m-dominance coincides with dominance -- and (b) ``rep`` strictly
m-dominates the componentwise min corner of ``g``'s candidates, which
makes it m-dominate (hence, by (a), dominate) every one of them.  The
corner strictness also protects transformed-space duplicates of ``rep``:
if some candidate shares ``rep``'s vector the corner test cannot be
strict and the shard survives to the per-point pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Category, dominators_of, is_bold, ordered_categories
from repro.transform.point import Point

__all__ = ["MergeOutcome", "IncrementalMerger", "merge_local_skylines"]


@dataclass
class MergeOutcome:
    """The merged skyline plus what the prefilter managed to skip."""

    points: list[Point]
    #: Shard indexes whose entire local skyline the prefilter eliminated.
    eliminated: tuple[int, ...]


def _min_corner(points: list[Point]) -> list[float]:
    mins = list(points[0].vector)
    for p in points[1:]:
        vector = p.vector
        for k in range(len(mins)):
            if vector[k] < mins[k]:
                mins[k] = vector[k]
    return mins


def _representatives(points: list[Point]) -> list[Point]:
    """Min-key candidate, plus the min-key completely covering one."""
    best = min(range(len(points)), key=lambda i: (points[i].key, i))
    reps = [points[best]]
    covering = [
        i for i, p in enumerate(points) if p.category.completely_covering
    ]
    if covering:
        best_cov = min(covering, key=lambda i: (points[i].key, i))
        if best_cov != best:
            reps.append(points[best_cov])
    return reps


class IncrementalMerger:
    """Absorb shard-local skylines one at a time, **in shard order**.

    ``dataset`` supplies the dominance kernel and the counter bundle the
    merge phase bills to (callers pass an isolated ``query_view``).
    ``sink``, when given, receives each shard's survivor batch the
    moment :meth:`absorb` finishes with it -- long before later shards
    merge; each batch extends a valid prefix of the final emission
    order, which is shard order x local emission order and identical to
    the serial SDC+ order under strata partitioning.
    """

    def __init__(self, dataset, sink=None) -> None:
        self._kernel = dataset.kernel
        self._batch = getattr(self._kernel, "is_batch", False)
        self._sink = sink
        #: Representatives of absorbed, non-eliminated, non-empty shards.
        self._reps: list[list[Point]] = []
        #: Running definite set, bucketed by category (Lemma 4.1).
        self._S: dict[Category, object] = {}
        self._out: list[Point] = []
        self._eliminated: list[int] = []

    def absorb(self, shard_index: int, candidates: list[Point]) -> list[Point]:
        """Merge one shard's local skyline; returns its survivors."""
        if not candidates:
            return []

        # Representative prefilter (Lemma 4.2): earlier shards try to
        # knock out this whole shard before any per-point work.
        corner = tuple(_min_corner(candidates))
        cats = frozenset(p.category for p in candidates)
        for reps in self._reps:
            for rep in reps:
                if all(is_bold(rep.category, c) for c in cats) and (
                    self._kernel.m_dominates_mins(rep, corner)
                ):
                    self._eliminated.append(shard_index)
                    return []

        survivors: list[Point] = []
        for p in candidates:
            dominated = False
            for scat in ordered_categories(dominators_of(p.category)):
                bucket = self._S.get(scat)
                if bucket is None or not len(bucket):
                    continue
                if self._batch:
                    dominated = bucket.scan_compare(p)
                else:
                    for q in bucket:
                        if self._kernel.compare_dominance(p, q) == 1:
                            dominated = True
                            break
                if dominated:
                    break
            if not dominated:
                survivors.append(p)
        self._out.extend(survivors)
        self._reps.append(_representatives(candidates))
        if not survivors:
            return []
        if self._sink is not None:
            self._sink.extend(survivors)
        # Bulk promotion into the definite buckets (one array fill per
        # category with the batch kernel; see SkylineBuffer.extend).
        by_cat: dict[Category, list[Point]] = {}
        for p in survivors:
            by_cat.setdefault(p.category, []).append(p)
        for cat, group in by_cat.items():
            bucket = self._S.get(cat)
            if bucket is None:
                if self._batch:
                    from repro.core.batch import SkylineBuffer

                    self._S[cat] = SkylineBuffer.from_points(self._kernel, group)
                else:
                    self._S[cat] = list(group)
            else:
                bucket.extend(group)
        return survivors

    def outcome(self) -> MergeOutcome:
        """Global skyline so far (emission order) + eliminated shards."""
        return MergeOutcome(points=self._out, eliminated=tuple(self._eliminated))


def merge_local_skylines(dataset, local_skylines: list[list[Point]],
                         sink=None) -> MergeOutcome:
    """Merge per-shard local skylines (shard order) into the global one.

    One-shot wrapper over :class:`IncrementalMerger`; see its docstring
    for the emission-order and progressive-delivery guarantees.
    """
    merger = IncrementalMerger(dataset, sink=sink)
    for g, candidates in enumerate(local_skylines):
        merger.absorb(g, candidates)
    return merger.outcome()
