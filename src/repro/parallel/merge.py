"""Cross-shard merge of shard-local skylines.

Both partition modes are *ordered* (see :mod:`repro.parallel.partition`):
a point in shard ``g`` can only be dominated by points in shards
``h <= g``.  The merge is therefore a single pass in shard order -- each
shard's candidates are checked against the running definite set ``S``
and the survivors are promoted into ``S`` afterwards (never during: a
shard's candidates are its local skyline, hence mutually non-dominated).

Two paper devices make the pass cheap:

**Lemma 4.1 restriction.**  ``S`` is bucketed by category and a
candidate ``p`` only scans the buckets in ``dominators_of(p.category)``
-- dominance is impossible from any other category.  With the batch
kernel the buckets are :class:`~repro.core.batch.SkylineBuffer` objects
seeded per shard with the bulk ``extend`` promotion; counters are
identical to the scalar scan by the buffer contract.

**Representative prefilter (Lemma 4.2).**  Before any per-point work,
each shard nominates up to two representatives from its local skyline
(its minimum-key point, and its minimum-key *completely covering* point)
and earlier shards' representatives try to knock out whole later shards:
``rep`` eliminates shard ``g`` when (a) every category present in ``g``
is reachable from ``rep.category`` over a *bold* edge -- where
m-dominance coincides with dominance -- and (b) ``rep`` strictly
m-dominates the componentwise min corner of ``g``'s candidates, which
makes it m-dominate (hence, by (a), dominate) every one of them.  The
corner strictness also protects transformed-space duplicates of ``rep``:
if some candidate shares ``rep``'s vector the corner test cannot be
strict and the shard survives to the per-point pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.categories import Category, dominators_of, is_bold, ordered_categories
from repro.transform.point import Point

__all__ = ["MergeOutcome", "merge_local_skylines"]


@dataclass
class MergeOutcome:
    """The merged skyline plus what the prefilter managed to skip."""

    points: list[Point]
    #: Shard indexes whose entire local skyline the prefilter eliminated.
    eliminated: tuple[int, ...]


def _min_corner(points: list[Point]) -> list[float]:
    mins = list(points[0].vector)
    for p in points[1:]:
        vector = p.vector
        for k in range(len(mins)):
            if vector[k] < mins[k]:
                mins[k] = vector[k]
    return mins


def _representatives(points: list[Point]) -> list[Point]:
    """Min-key candidate, plus the min-key completely covering one."""
    best = min(range(len(points)), key=lambda i: (points[i].key, i))
    reps = [points[best]]
    covering = [
        i for i, p in enumerate(points) if p.category.completely_covering
    ]
    if covering:
        best_cov = min(covering, key=lambda i: (points[i].key, i))
        if best_cov != best:
            reps.append(points[best_cov])
    return reps


def merge_local_skylines(dataset, local_skylines: list[list[Point]],
                         sink=None) -> MergeOutcome:
    """Merge per-shard local skylines (shard order) into the global one.

    ``dataset`` supplies the dominance kernel and the counter bundle the
    merge phase bills to (callers pass an isolated ``query_view``).  The
    returned emission order is shard order x local emission order --
    deterministic for every algorithm, and identical to the serial SDC+
    order under strata partitioning.

    ``sink``, when given, receives each shard's survivor batch the
    moment that shard's merge pass finishes (progressive delivery: a
    shard's survivors are definite skyline members -- only earlier
    shards could have dominated them -- so each batch extends a valid
    prefix of the final emission order long before later shards merge).
    """
    kernel = dataset.kernel
    batch = getattr(kernel, "is_batch", False)
    k = len(local_skylines)

    corners = [_min_corner(c) if c else None for c in local_skylines]
    cats = [frozenset(p.category for p in c) for c in local_skylines]
    reps = [_representatives(c) if c else [] for c in local_skylines]

    eliminated = [False] * k
    for g in range(k):
        if not local_skylines[g]:
            continue
        corner = tuple(corners[g])
        for h in range(g):
            if eliminated[h] or not local_skylines[h]:
                continue
            for rep in reps[h]:
                if all(is_bold(rep.category, c) for c in cats[g]) and (
                    kernel.m_dominates_mins(rep, corner)
                ):
                    eliminated[g] = True
                    break
            if eliminated[g]:
                break

    # Running definite set, bucketed by category (Lemma 4.1).
    S: dict[Category, object] = {}
    out: list[Point] = []
    for g, candidates in enumerate(local_skylines):
        if eliminated[g] or not candidates:
            continue
        survivors: list[Point] = []
        for p in candidates:
            dominated = False
            for scat in ordered_categories(dominators_of(p.category)):
                bucket = S.get(scat)
                if bucket is None or not len(bucket):
                    continue
                if batch:
                    dominated = bucket.scan_compare(p)
                else:
                    for q in bucket:
                        if kernel.compare_dominance(p, q) == 1:
                            dominated = True
                            break
                if dominated:
                    break
            if not dominated:
                survivors.append(p)
        out.extend(survivors)
        if not survivors:
            continue
        if sink is not None:
            sink.extend(survivors)
        # Bulk promotion into the definite buckets (one array fill per
        # category with the batch kernel; see SkylineBuffer.extend).
        by_cat: dict[Category, list[Point]] = {}
        for p in survivors:
            by_cat.setdefault(p.category, []).append(p)
        for cat, group in by_cat.items():
            bucket = S.get(cat)
            if bucket is None:
                if batch:
                    from repro.core.batch import SkylineBuffer

                    S[cat] = SkylineBuffer.from_points(kernel, group)
                else:
                    S[cat] = list(group)
            else:
                bucket.extend(group)

    return MergeOutcome(
        points=out,
        eliminated=tuple(i for i, e in enumerate(eliminated) if e),
    )
