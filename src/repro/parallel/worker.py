"""Worker-process side of the sharded skyline executor.

Each pool worker runs :func:`init_worker` exactly once: it unpickles the
setup blob (schema + domain mappings, pickled **once** in the parent)
and attaches the shared-memory point store.  Every subsequent
:func:`run_shard_task` call rebuilds its shard's points from shared
array rows, assembles a standalone shard dataset (own counters, own
kernel, own lazily-built R-trees), runs the requested algorithm locally
and ships back only the emitted **global row ids** plus a counter
snapshot -- a few KB per task regardless of shard size.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass, field

from repro.exceptions import QueryTimeoutError

__all__ = ["WorkerSetup", "ShardTask", "ShardOutcome", "init_worker", "run_shard_task"]


@dataclass(frozen=True)
class WorkerSetup:
    """Pickled-once pool configuration (everything points don't carry)."""

    schema: object
    mappings: tuple
    strategy: object
    native_mode: str
    kernel_name: str
    faithful_gate: bool
    max_entries: int
    bulk_load: bool


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order: a slice of the shared ``order`` array."""

    shard_index: int
    start: int
    stop: int
    algorithm: str
    options: dict = field(default_factory=dict)
    #: Remaining wall-clock seconds (parent deadline minus setup time).
    deadline: float | None = None
    #: Chaos switch: hard-exit the worker on receipt, simulating a crash.
    kill: bool = False


@dataclass(frozen=True)
class ShardOutcome:
    """Shard-local skyline as global row ids, plus the counter bill."""

    shard_index: int
    #: Emitted local-skyline rows in emission order (``None`` on timeout).
    rows: list[int] | None
    counters: dict[str, int]
    status: str  # "ok" | "timeout"


# Per-process state installed by the pool initializer.
_SETUP: WorkerSetup | None = None
_STORE = None
#: Caches that survive across tasks in one worker process (batch-kernel
#: relation memo keyed by nothing -- one dataset per pool).
_CACHES: dict = {}


def init_worker(setup_blob: bytes, layout) -> None:
    """Pool initializer: unpickle setup, attach shared memory."""
    global _SETUP, _STORE
    from repro.parallel.shard import AttachedPointStore

    _SETUP = pickle.loads(setup_blob)
    _STORE = AttachedPointStore(layout)
    _CACHES.clear()


def _make_shard_dataset(points, stats, context):
    """A standalone :class:`TransformedDataset` over rebuilt shard points.

    Mirrors ``TransformedDataset.subset_view`` construction, but with a
    worker-local kernel bound to this task's fresh counter bundle (the
    batch kernel's relation memo is reused across tasks in the same
    process -- it depends only on the mappings).
    """
    from repro.core.dominance import DominanceKernel
    from repro.transform.dataset import TransformedDataset

    setup = _SETUP
    closures = (
        tuple(m.closure for m in setup.mappings)
        if setup.native_mode == "closure" and setup.mappings
        else None
    )
    if setup.kernel_name == "numpy":
        from repro.core.batch import BatchDominanceKernel

        kernel = BatchDominanceKernel(
            setup.schema, stats, setup.faithful_gate, closures, setup.mappings
        )
        memo = _CACHES.get("relations")
        if memo is not None:
            kernel._relations = memo
    else:
        kernel = DominanceKernel(setup.schema, stats, setup.faithful_gate, closures)

    ds = TransformedDataset.__new__(TransformedDataset)
    ds.schema = setup.schema
    ds.records = [p.record for p in points]
    ds.strategy = setup.strategy
    ds.stats = stats
    ds.mappings = setup.mappings
    ds.native_mode = setup.native_mode
    ds.kernel_name = setup.kernel_name
    ds.kernel = kernel
    ds.max_entries = setup.max_entries
    ds.bulk_load = setup.bulk_load
    ds.context = context
    ds.points = list(points)
    ds._index = None
    ds._stratification = None
    ds._buffer_pool = None
    ds._build_lock = threading.RLock()
    ds._base = None
    ds._kernel_injector = None
    ds._update_injector = None
    return ds


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Compute one shard's local skyline inside the worker process."""
    if task.kill:
        # Deterministic stand-in for a worker crash (chaos harness):
        # bypass all python-level cleanup, exactly like SIGKILL.
        os._exit(17)

    from repro.algorithms.base import get_algorithm
    from repro.core.stats import ComparisonStats
    from repro.resilience.context import NULL_CONTEXT, QueryContext

    stats = ComparisonStats()
    if task.deadline is not None:
        context = QueryContext(deadline=task.deadline)
        context.start(stats)
    else:
        context = NULL_CONTEXT

    points = _STORE.build_points(_SETUP.mappings, task.start, task.stop)
    dataset = _make_shard_dataset(points, stats, context)
    algorithm = get_algorithm(task.algorithm, **task.options)
    try:
        local = list(algorithm.run(dataset))
    except QueryTimeoutError:
        return ShardOutcome(task.shard_index, None, stats.snapshot(), "timeout")

    if _SETUP.kernel_name == "numpy" and "relations" not in _CACHES:
        memo = getattr(dataset.kernel, "_relations", None)
        if memo is not None:
            _CACHES["relations"] = memo

    rows = [p.record.rid for p in local]
    return ShardOutcome(task.shard_index, rows, stats.snapshot(), "ok")
