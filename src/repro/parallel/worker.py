"""Worker-process side of the sharded skyline executor.

Each pool worker runs :func:`init_worker` exactly once: it unpickles the
setup blob (schema + domain mappings, pickled **once** in the parent)
and attaches the shared-memory point store.

Two execution disciplines share that setup:

* **Static** (:func:`run_shard_task`): the parent dispatches one
  pre-assigned shard per call; the worker rebuilds the shard's points
  from shared array rows, assembles a standalone shard dataset (own
  counters, own kernel, own lazily-built R-trees), runs the requested
  algorithm locally and ships back only the emitted **global row ids**
  plus a counter snapshot -- a few KB per task regardless of shard size.

* **Work-stealing** (:func:`run_steal_drain`): the parent submits one
  *drain* per worker slot.  Each drain claims fine-grained tasks from
  the shared control block -- its own home queue front-to-back first,
  then steals from the back of the most-loaded victim -- until the deque
  is empty.  Before (and, in dynamic filter mode, during) each shard
  scan it prunes rows against the cross-shard filter board, and results
  travel back through the control block's shared arrays rather than the
  future's return value, so the parent can merge finished shards while
  the drain is still running.

The claim lock is a module global installed by the parent **before**
pool creation: ``multiprocessing`` locks cannot be pickled into
``initargs``, but a ``fork``-started worker inherits the module state
as of the fork, lock included.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import QueryTimeoutError

__all__ = [
    "WorkerSetup",
    "ShardTask",
    "ShardOutcome",
    "init_worker",
    "run_shard_task",
    "run_steal_drain",
    "ensure_claim_lock",
]


@dataclass(frozen=True)
class WorkerSetup:
    """Pickled-once pool configuration (everything points don't carry)."""

    schema: object
    mappings: tuple
    strategy: object
    native_mode: str
    kernel_name: str
    faithful_gate: bool
    max_entries: int
    bulk_load: bool


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order: a slice of the shared ``order`` array."""

    shard_index: int
    start: int
    stop: int
    algorithm: str
    options: dict = field(default_factory=dict)
    #: Remaining wall-clock seconds (parent deadline minus setup time).
    deadline: float | None = None
    #: Chaos switch: hard-exit the worker on receipt, simulating a crash.
    kill: bool = False


@dataclass(frozen=True)
class ShardOutcome:
    """Shard-local skyline as global row ids, plus the counter bill."""

    shard_index: int
    #: Emitted local-skyline rows in emission order (``None`` on timeout).
    rows: list[int] | None
    counters: dict[str, int]
    status: str  # "ok" | "timeout"


# Per-process state installed by the pool initializer.
_SETUP: WorkerSetup | None = None
_STORE = None
#: Caches that survive across tasks in one worker process (batch-kernel
#: relation memo keyed by nothing -- one dataset per pool).
_CACHES: dict = {}
#: Steal-mode claim lock, created parent-side *before* the pool forks
#: (see module docstring).  One process-wide lock serves every pool a
#: parent creates -- coarser than strictly necessary (claims across two
#: executors serialise on it), but it guarantees a late-forked worker of
#: any pool inherits *the* lock, never a stale one.
_CLAIM_LOCK = None


def ensure_claim_lock():
    """Parent-side: create (once) the fork-inherited claim lock."""
    global _CLAIM_LOCK
    if _CLAIM_LOCK is None:
        import multiprocessing

        _CLAIM_LOCK = multiprocessing.Lock()
    return _CLAIM_LOCK


def init_worker(setup_blob: bytes, layout) -> None:
    """Pool initializer: unpickle setup, attach shared memory."""
    global _SETUP, _STORE
    from repro.parallel.shard import AttachedPointStore

    _SETUP = pickle.loads(setup_blob)
    _STORE = AttachedPointStore(layout)
    _CACHES.clear()


def _make_shard_dataset(points, stats, context):
    """A standalone :class:`TransformedDataset` over rebuilt shard points.

    Mirrors ``TransformedDataset.subset_view`` construction, but with a
    worker-local kernel bound to this task's fresh counter bundle (the
    batch kernel's relation memo is reused across tasks in the same
    process -- it depends only on the mappings).
    """
    from repro.core.dominance import DominanceKernel
    from repro.transform.dataset import TransformedDataset

    setup = _SETUP
    closures = (
        tuple(m.closure for m in setup.mappings)
        if setup.native_mode == "closure" and setup.mappings
        else None
    )
    if setup.kernel_name == "numpy":
        from repro.core.batch import BatchDominanceKernel

        kernel = BatchDominanceKernel(
            setup.schema, stats, setup.faithful_gate, closures, setup.mappings
        )
        memo = _CACHES.get("relations")
        if memo is not None:
            kernel._relations = memo
    else:
        kernel = DominanceKernel(setup.schema, stats, setup.faithful_gate, closures)

    ds = TransformedDataset.__new__(TransformedDataset)
    ds.schema = setup.schema
    ds.records = [p.record for p in points]
    ds.strategy = setup.strategy
    ds.stats = stats
    ds.mappings = setup.mappings
    ds.native_mode = setup.native_mode
    ds.kernel_name = setup.kernel_name
    ds.kernel = kernel
    ds.max_entries = setup.max_entries
    ds.bulk_load = setup.bulk_load
    ds.context = context
    ds.points = list(points)
    ds._index = None
    ds._stratification = None
    ds._buffer_pool = None
    ds._build_lock = threading.RLock()
    ds._base = None
    ds._kernel_injector = None
    ds._update_injector = None
    return ds


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Compute one shard's local skyline inside the worker process."""
    if task.kill:
        # Deterministic stand-in for a worker crash (chaos harness):
        # bypass all python-level cleanup, exactly like SIGKILL.
        os._exit(17)

    from repro.algorithms.base import get_algorithm
    from repro.core.stats import ComparisonStats
    from repro.resilience.context import NULL_CONTEXT, QueryContext

    stats = ComparisonStats()
    if task.deadline is not None:
        context = QueryContext(deadline=task.deadline)
        context.start(stats)
    else:
        context = NULL_CONTEXT

    shard_rows = _STORE.order[task.start : task.stop].tolist()
    points = _STORE.build_rows(_SETUP.mappings, shard_rows)
    # Stub rids are *original* record ids (heap tie-break parity); map
    # emitted points back to global rows by identity.
    row_of = {id(p): g for p, g in zip(points, shard_rows)}
    dataset = _make_shard_dataset(points, stats, context)
    algorithm = get_algorithm(task.algorithm, **task.options)
    try:
        local = list(algorithm.run(dataset))
    except QueryTimeoutError:
        return ShardOutcome(task.shard_index, None, stats.snapshot(), "timeout")

    if _SETUP.kernel_name == "numpy" and "relations" not in _CACHES:
        memo = getattr(dataset.kernel, "_relations", None)
        if memo is not None:
            _CACHES["relations"] = memo

    rows = [row_of[id(p)] for p in local]
    return ShardOutcome(task.shard_index, rows, stats.snapshot(), "ok")


def _claim_task(block, slot: int):
    """Claim one task under the inherited lock, stealing when dry.

    Own home queue front-to-back first (preserves shard locality), then
    the *back* of the victim slot with the most unclaimed tasks -- the
    classic steal-from-the-tail discipline, which takes the work its
    owner would reach last.  Lock hold plus scan time is billed to the
    per-slot ``claim_seconds`` cell (the bench's ``steal_wait`` stage).
    """
    started = time.perf_counter()
    with _CLAIM_LOCK:
        claims = block.claims
        home = block.home
        mine = None
        for i in range(block.layout.n_tasks):
            if home[i] == slot and not claims[i]:
                mine = i
                break
        stolen = False
        if mine is None:
            per_slot: dict[int, list[int]] = {}
            for i in range(block.layout.n_tasks):
                if not claims[i]:
                    per_slot.setdefault(int(home[i]), []).append(i)
            if per_slot:
                victim = max(per_slot, key=lambda s: (len(per_slot[s]), -s))
                mine = per_slot[victim][-1]
                stolen = True
        if mine is not None:
            claims[mine] = 1
            if stolen:
                block.steals[slot] += 1
        block.claim_seconds[slot] += time.perf_counter() - started
    return mine


def _board_prune(block, rows, stats):
    """Filter one task's rows against the board; returns survivors.

    Rows are scanned in ``filter_chunk``-sized passes; in dynamic filter
    mode the board is re-read between passes so representatives
    published by other workers mid-query prune the remainder of this
    shard too.  Billing goes to the dedicated ``filter_board_*``
    counters, never to the algorithms' own dominance bill.
    """
    import numpy as np

    from repro.parallel.board import FILTER_MODES, prune_chunk

    mode = block.filter_mode
    if mode == FILTER_MODES["off"] or len(rows) == 0:
        return rows
    vectors = _STORE.vectors[rows]
    cats = _STORE.cats[rows]
    alive = np.ones(len(rows), dtype=bool)
    chunk = max(1, block.filter_chunk)
    rep_vecs, rep_cats = block.read_reps(mode)
    for lo in range(0, len(rows), chunk):
        if lo and mode == FILTER_MODES["dynamic"]:
            rep_vecs, rep_cats = block.read_reps(mode)
        if not len(rep_vecs):
            continue
        hi = min(lo + chunk, len(rows))
        checks, hits = prune_chunk(
            vectors[lo:hi], cats[lo:hi], alive[lo:hi], rep_vecs, rep_cats
        )
        stats.filter_board_checks += checks
        stats.filter_board_hits += hits
    return rows[alive]


def _local_representatives(points, local) -> list:
    """Min-key local-skyline representative per category, best first."""
    from repro.parallel.shard import CATEGORY_CODES

    best: dict = {}
    for p in local:
        cur = best.get(p.category)
        if cur is None or p.key < cur.key:
            best[p.category] = p
    ranked = sorted(best.values(), key=lambda p: (p.key, CATEGORY_CODES[p.category]))
    return [(CATEGORY_CODES[p.category], p.vector) for p in ranked]


def _run_steal_task(block, task_ix: int, algorithm: str, options: dict) -> None:
    """Execute one claimed task; all output goes through the block.

    The status word is written *last* so the parent's incremental merge
    never observes a half-written result region.
    """
    from repro.algorithms.base import get_algorithm
    from repro.core.stats import ComparisonStats
    from repro.parallel.board import (
        FILTER_MODES,
        TASK_OK,
        TASK_TIMEOUT,
    )
    from repro.resilience.context import NULL_CONTEXT, QueryContext

    started = time.perf_counter()
    stats = ComparisonStats()
    start, stop = (int(v) for v in block.bounds[task_ix])
    rows = _STORE.order[start:stop]

    remaining = block.remaining_seconds()
    if remaining is not None and remaining <= 0:
        block.write_task_counters(task_ix, stats)
        block.task_elapsed[task_ix] = time.perf_counter() - started
        block.status[task_ix] = TASK_TIMEOUT
        return
    if remaining is not None:
        # Deadline re-arming: the worker-side budget is whatever is left
        # of the parent's absolute deadline at *claim* time.
        context = QueryContext(deadline=remaining)
        context.start(stats)
    else:
        context = NULL_CONTEXT

    surviving = _board_prune(block, rows, stats).tolist()
    points = _STORE.build_rows(_SETUP.mappings, surviving)
    # Stub rids are *original* record ids (heap tie-break parity); map
    # emitted points back to global rows by identity.
    row_of = {id(p): g for p, g in zip(points, surviving)}
    dataset = _make_shard_dataset(points, stats, context)
    algo = get_algorithm(algorithm, **options)
    try:
        local = list(algo.run(dataset))
    except QueryTimeoutError:
        block.write_task_counters(task_ix, stats)
        block.task_elapsed[task_ix] = time.perf_counter() - started
        block.status[task_ix] = TASK_TIMEOUT
        return

    if _SETUP.kernel_name == "numpy" and "relations" not in _CACHES:
        memo = getattr(dataset.kernel, "_relations", None)
        if memo is not None:
            _CACHES["relations"] = memo

    if block.filter_mode == FILTER_MODES["dynamic"] and local:
        block.publish_dynamic_reps(task_ix, _local_representatives(points, local))

    count = len(local)
    block.result_rows[start : start + count] = [row_of[id(p)] for p in local]
    block.result_count[task_ix] = count
    block.write_task_counters(task_ix, stats)
    block.task_elapsed[task_ix] = time.perf_counter() - started
    block.status[task_ix] = TASK_OK


def run_steal_drain(control_layout, slot: int, algorithm: str, options: dict) -> int:
    """Drain the shared task deque from worker slot ``slot``.

    Claims (or steals) tasks until none remain or the query is
    cancelled, running each through the board filter and the shard-local
    algorithm.  Returns the number of tasks this slot executed; results
    travel through the control block, not the future.
    """
    from repro.parallel.board import ControlBlock

    block = ControlBlock.attach(control_layout)
    executed = 0
    try:
        while not block.cancelled:
            task_ix = _claim_task(block, slot)
            if task_ix is None:
                break
            if block.kill[task_ix]:
                # Deterministic stand-in for a worker crash mid-steal
                # (chaos harness): bypass all python-level cleanup,
                # exactly like SIGKILL.
                os._exit(17)
            _run_steal_task(block, task_ix, algorithm, options)
            executed += 1
    finally:
        block.close()
    return executed
