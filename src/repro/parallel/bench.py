"""Scaling + comparison-reduction benchmark for the parallel backend.

Drives the fig12a lineup (BNL, BNL+, BBS+, SDC, SDC+) through
:class:`~repro.parallel.executor.ParallelSkylineExecutor` and writes
``benchmarks/results/parallel_scaling.json`` with two independent gates:

* **Speedup curve** (hardware-dependent): wall-clock at 1/2/4/8 workers
  under the default steal scheduler, parity-checked against the serial
  engine on every run.  The report records ``cpu_count`` alongside every
  timing: speedup from process-level sharding is bounded by the physical
  cores available, and a curve measured on a 1-core container honestly
  shows slowdown (fork + shared-memory attach overhead with zero
  hardware parallelism).  The assertion only *evaluates* on machines
  with at least :data:`SPEEDUP_REQUIRED_CORES` cores.

* **Comparison reduction** (hardware-independent): aggregate dominance
  comparisons of steal-mode with cross-shard filter propagation vs. the
  legacy static partition/merge path, at a pinned worker-slot count.
  Counters are exact sums, and the gated run uses ``filter="static"``
  (parent-seeded board representatives only) so the numbers are
  bit-reproducible regardless of claim timing or core count -- this is
  the CI gate a 1-core container can still enforce.  The steal bill
  honestly *includes* every ``filter_board_checks`` test the board
  performed.  A ``filter="dynamic"`` run is recorded alongside for
  reference (answers exact; counter magnitudes timing-dependent).
"""

from __future__ import annotations

import os
import time

from repro.bench.artifacts import write_artifact
from repro.engine import SkylineEngine
from repro.parallel.config import ParallelConfig
from repro.parallel.executor import ParallelSkylineExecutor
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__all__ = [
    "FIG12A_LINEUP",
    "run_parallel_bench",
    "speedup_assertion",
    "comparison_assertion",
]

#: The paper's Fig. 12(a) algorithm lineup (large-dataset experiment).
FIG12A_LINEUP = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")

#: Physical cores below which a speedup assertion is meaningless: with
#: fewer, sharding honestly measures pure fork/attach overhead.
SPEEDUP_REQUIRED_CORES = 4

#: Worker-slot count the comparison-reduction section is pinned to --
#: counters depend on the partition (slots x tasks_per_worker tasks),
#: never on how many physical cores executed them, so one fixed setting
#: is comparable across every host.
COMPARISON_WORKERS = 4

#: Minimum relative comparison reduction the CI gate requires.
COMPARISON_REDUCTION_REQUIRED = 0.15


def speedup_assertion(curve: dict, cpu_count: int | None) -> dict:
    """Evaluate the CI speedup gate over a measured worker curve.

    The assertion -- best multi-worker aggregate speedup must exceed
    1.0x serial -- is only *evaluated* when the machine has at least
    :data:`SPEEDUP_REQUIRED_CORES` cores and the curve includes a
    multi-worker point; on smaller machines it reports
    ``evaluated: false`` (skipped) so a 1-core container's honest
    slowdown curve never fails CI, and never gets committed as if it
    were a scaling result.
    """
    multi = {
        int(count): entry["aggregate_speedup"]
        for count, entry in curve.items()
        if int(count) > 1
    }
    evaluated = (cpu_count or 0) >= SPEEDUP_REQUIRED_CORES and bool(multi)
    best_workers, best = (
        max(multi, key=multi.get),
        max(multi.values()),
    ) if multi else (None, 0.0)
    return {
        "required_cores": SPEEDUP_REQUIRED_CORES,
        "cpu_count": cpu_count,
        "evaluated": evaluated,
        "best_workers": best_workers,
        "best_aggregate_speedup": best,
        "passed": bool(best > 1.0) if evaluated else None,
    }


def comparison_assertion(
    comparison: dict, threshold: float = COMPARISON_REDUCTION_REQUIRED
) -> dict:
    """Evaluate the hardware-independent comparison-reduction gate.

    Passes when steal-mode with (deterministic) filter propagation spent
    at least ``threshold`` fewer aggregate dominance comparisons --
    filter-board checks included -- than the static partition/merge path
    over the whole lineup.
    """
    return {
        "required_reduction": threshold,
        "reduction": comparison["reduction"],
        "static_comparisons": comparison["static_comparisons"],
        "steal_comparisons": comparison["steal_comparisons"],
        "evaluated": True,
        "passed": bool(comparison["reduction"] >= threshold),
    }


def _billed_comparisons(counters: dict) -> int:
    """Dominance work plus the filter board's own tests (honest bill)."""
    return (
        counters.get("m_dominance_point", 0)
        + counters.get("native_set", 0)
        + counters.get("native_closure", 0)
        + counters.get("native_numeric", 0)
        + counters.get("filter_board_checks", 0)
    )


def _run_entry(executor: ParallelSkylineExecutor, name: str, serial_rids) -> dict:
    begin = time.perf_counter()
    result = executor.run(name)
    seconds = time.perf_counter() - begin
    return {
        "seconds": seconds,
        "answers": len(result.points),
        "mode": result.mode,
        "scheduler": result.scheduler,
        "sharded": result.parallel,
        "tasks": result.tasks,
        "steals": result.steals,
        "shards": list(result.shard_sizes),
        "eliminated_shards": list(result.eliminated_shards),
        "fallback": result.fallback,
        "routed_serial": result.routed_serial,
        "filter_board_checks": result.filter_board_checks,
        "filter_board_hits": result.filter_board_hits,
        "filter_reps_published": result.filter_reps_published,
        "stage_seconds": {k: round(v, 6) for k, v in result.stage_seconds.items()},
        "comparisons": _billed_comparisons(result.counters),
        "parity": {p.record.rid for p in result.points} == set(serial_rids),
    }


def _comparison_section(dataset, algorithms, mode: str, serial: dict) -> dict:
    """Static-scheduler vs. steal-scheduler counter bill, per algorithm."""
    variants = {
        "static": ParallelConfig(
            workers=COMPARISON_WORKERS, mode=mode, scheduler="static"
        ),
        "steal": ParallelConfig(
            workers=COMPARISON_WORKERS, mode=mode, scheduler="steal",
            filter="static",
        ),
        "steal_dynamic": ParallelConfig(
            workers=COMPARISON_WORKERS, mode=mode, scheduler="steal",
            filter="dynamic",
        ),
    }
    per_algorithm: dict[str, dict] = {}
    totals = dict.fromkeys(variants, 0)
    parity_ok = True
    for label, config in variants.items():
        with ParallelSkylineExecutor(dataset, config) as executor:
            for name in algorithms:
                entry = _run_entry(executor, name, serial[name]["rids"])
                parity_ok = parity_ok and entry["parity"]
                per_algorithm.setdefault(name, {})[label] = entry
                totals[label] += entry["comparisons"]
    for name, entry in per_algorithm.items():
        static_cost = entry["static"]["comparisons"]
        entry["reduction"] = (
            1.0 - entry["steal"]["comparisons"] / static_cost if static_cost else 0.0
        )
    static_total = totals["static"]
    return {
        "workers": COMPARISON_WORKERS,
        "filter": "static",
        "per_algorithm": per_algorithm,
        "static_comparisons": static_total,
        "steal_comparisons": totals["steal"],
        "steal_dynamic_comparisons": totals["steal_dynamic"],
        "reduction": (
            1.0 - totals["steal"] / static_total if static_total else 0.0
        ),
        "parity_ok": parity_ok,
    }


def run_parallel_bench(
    size: int = 20_000,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    algorithms: tuple[str, ...] | None = None,
    kernel: str = "numpy",
    seed: int = 7,
    mode: str = "auto",
    filter: str = "dynamic",
    output: str | None = None,
) -> dict:
    """Measure the scaling curve + comparison bill; return the report.

    Every sharded run is parity-checked against the serial answer (rid
    sequence for the deterministic serial baseline vs. merged rid set);
    a mismatch marks ``parity: false`` in the report and flips the
    top-level ``parity_ok`` flag, which the CLI turns into a non-zero
    exit code.
    """
    algorithms = tuple(algorithms) if algorithms else FIG12A_LINEUP
    workload = generate_workload(WorkloadConfig.default(data_size=size, seed=seed))
    engine = SkylineEngine(workload.schema, workload.records, kernel=kernel)
    dataset = engine.dataset

    serial: dict[str, dict] = {}
    for name in algorithms:
        begin = time.perf_counter()
        points = list(engine.run_points(name))
        serial[name] = {
            "seconds": time.perf_counter() - begin,
            "answers": len(points),
            "rids": [p.record.rid for p in points],
        }

    curve: dict[str, dict] = {}
    parity_ok = True
    for count in workers:
        per_algorithm: dict[str, dict] = {}
        config = ParallelConfig(workers=count, mode=mode, filter=filter)
        with ParallelSkylineExecutor(dataset, config) as executor:
            for name in algorithms:
                entry = _run_entry(executor, name, serial[name]["rids"])
                entry["speedup"] = (
                    serial[name]["seconds"] / entry["seconds"]
                    if entry["seconds"]
                    else 0.0
                )
                parity_ok = parity_ok and entry["parity"]
                per_algorithm[name] = entry
        serial_total = sum(serial[name]["seconds"] for name in algorithms)
        sharded_total = sum(entry["seconds"] for entry in per_algorithm.values())
        curve[str(count)] = {
            "algorithms": per_algorithm,
            "total_seconds": sharded_total,
            "aggregate_speedup": serial_total / sharded_total if sharded_total else 0.0,
        }

    comparison = _comparison_section(dataset, algorithms, mode, serial)
    parity_ok = parity_ok and comparison["parity_ok"]

    report = {
        "benchmark": "parallel_scaling",
        "experiment": "fig12a-lineup",
        "records": size,
        "kernel": kernel,
        "seed": seed,
        "mode": mode,
        "filter": filter,
        "cpu_count": os.cpu_count(),
        "parity_ok": parity_ok,
        "speedup_assertion": speedup_assertion(curve, os.cpu_count()),
        "comparison": comparison,
        "comparison_assertion": comparison_assertion(comparison),
        "serial": {
            name: {k: v for k, v in entry.items() if k != "rids"}
            for name, entry in serial.items()
        },
        "workers": curve,
    }
    if output:
        write_artifact(output, report)
    return report
