"""Speedup-curve benchmark for the sharded process-pool backend.

Drives the fig12a lineup (BNL, BNL+, BBS+, SDC, SDC+) through
:class:`~repro.parallel.executor.ParallelSkylineExecutor` at 1/2/4/8
workers, asserts parity with the serial engine on every run, and writes
the curve to ``benchmarks/results/parallel_scaling.json``.

The report records ``cpu_count`` alongside every timing: speedup from
process-level sharding is bounded by the physical cores available, and a
curve measured on a 1-core container honestly shows slowdown (fork +
shared-memory attach overhead with zero hardware parallelism).  Consumers
must read the numbers against ``cpu_count``, not against the worker axis
alone.
"""

from __future__ import annotations

import os
import time

from repro.bench.artifacts import write_artifact
from repro.engine import SkylineEngine
from repro.parallel.config import ParallelConfig
from repro.parallel.executor import ParallelSkylineExecutor
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__all__ = ["FIG12A_LINEUP", "run_parallel_bench", "speedup_assertion"]

#: The paper's Fig. 12(a) algorithm lineup (large-dataset experiment).
FIG12A_LINEUP = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")

#: Physical cores below which a speedup assertion is meaningless: with
#: fewer, sharding honestly measures pure fork/attach overhead.
SPEEDUP_REQUIRED_CORES = 4


def speedup_assertion(curve: dict, cpu_count: int | None) -> dict:
    """Evaluate the CI speedup gate over a measured worker curve.

    The assertion -- best multi-worker aggregate speedup must exceed
    1.0x serial -- is only *evaluated* when the machine has at least
    :data:`SPEEDUP_REQUIRED_CORES` cores and the curve includes a
    multi-worker point; on smaller machines it reports
    ``evaluated: false`` (skipped) so a 1-core container's honest
    slowdown curve never fails CI, and never gets committed as if it
    were a scaling result.
    """
    multi = {
        int(count): entry["aggregate_speedup"]
        for count, entry in curve.items()
        if int(count) > 1
    }
    evaluated = (cpu_count or 0) >= SPEEDUP_REQUIRED_CORES and bool(multi)
    best_workers, best = (
        max(multi, key=multi.get),
        max(multi.values()),
    ) if multi else (None, 0.0)
    return {
        "required_cores": SPEEDUP_REQUIRED_CORES,
        "cpu_count": cpu_count,
        "evaluated": evaluated,
        "best_workers": best_workers,
        "best_aggregate_speedup": best,
        "passed": bool(best > 1.0) if evaluated else None,
    }


def run_parallel_bench(
    size: int = 20_000,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    algorithms: tuple[str, ...] | None = None,
    kernel: str = "numpy",
    seed: int = 7,
    mode: str = "auto",
    output: str | None = None,
) -> dict:
    """Measure the worker-count speedup curve; return the report dict.

    Every sharded run is parity-checked against the serial answer (rid
    sequence for the deterministic serial baseline vs. merged rid set);
    a mismatch marks ``parity: false`` in the report and flips the
    top-level ``parity_ok`` flag, which the CLI turns into a non-zero
    exit code.
    """
    algorithms = tuple(algorithms) if algorithms else FIG12A_LINEUP
    workload = generate_workload(WorkloadConfig.default(data_size=size, seed=seed))
    engine = SkylineEngine(workload.schema, workload.records, kernel=kernel)
    dataset = engine.dataset

    serial: dict[str, dict] = {}
    for name in algorithms:
        begin = time.perf_counter()
        points = list(engine.run_points(name))
        serial[name] = {
            "seconds": time.perf_counter() - begin,
            "answers": len(points),
            "rids": [p.record.rid for p in points],
        }

    curve: dict[str, dict] = {}
    parity_ok = True
    for count in workers:
        per_algorithm: dict[str, dict] = {}
        config = ParallelConfig(workers=count, mode=mode)
        with ParallelSkylineExecutor(dataset, config) as executor:
            for name in algorithms:
                begin = time.perf_counter()
                result = executor.run(name)
                seconds = time.perf_counter() - begin
                parity = {p.record.rid for p in result.points} == set(
                    serial[name]["rids"]
                )
                parity_ok = parity_ok and parity
                per_algorithm[name] = {
                    "seconds": seconds,
                    "answers": len(result.points),
                    "speedup": serial[name]["seconds"] / seconds if seconds else 0.0,
                    "mode": result.mode,
                    "sharded": result.parallel,
                    "shards": list(result.shard_sizes),
                    "eliminated_shards": list(result.eliminated_shards),
                    "fallback": result.fallback,
                    "parity": parity,
                }
        serial_total = sum(serial[name]["seconds"] for name in algorithms)
        sharded_total = sum(entry["seconds"] for entry in per_algorithm.values())
        curve[str(count)] = {
            "algorithms": per_algorithm,
            "total_seconds": sharded_total,
            "aggregate_speedup": serial_total / sharded_total if sharded_total else 0.0,
        }

    report = {
        "benchmark": "parallel_scaling",
        "experiment": "fig12a-lineup",
        "records": size,
        "kernel": kernel,
        "seed": seed,
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "parity_ok": parity_ok,
        "speedup_assertion": speedup_assertion(curve, os.cpu_count()),
        "serial": {
            name: {k: v for k, v in entry.items() if k != "rids"}
            for name, entry in serial.items()
        },
        "workers": curve,
    }
    if output:
        write_artifact(output, report)
    return report
