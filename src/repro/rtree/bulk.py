"""Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE'97).

Builds a packed R-tree bottom-up: points are recursively sorted and tiled
one dimension at a time into runs of (roughly) equal size, leaves are
packed to ``fill * max_entries``, and parent levels are packed over the
child MBR centers the same way.  The result plugs into the same
:class:`~repro.rtree.rstar.RStarTree` container so traversals, validation
and statistics are shared with the dynamic path.
"""

from __future__ import annotations

import math

from repro.core.stats import ComparisonStats
from repro.exceptions import RTreeError
from repro.rtree.geometry import rect_center
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.transform.point import Point

__all__ = ["str_bulk_load"]


def _tile(
    items: list,
    key_for_dim,
    dimensions: int,
    capacity: int,
) -> list[list]:
    """Recursively sort-and-tile ``items`` into runs of <= capacity."""

    def recurse(chunk: list, dim: int) -> list[list]:
        if len(chunk) <= capacity:
            return [chunk]
        if dim >= dimensions - 1:
            chunk = sorted(chunk, key=key_for_dim(dim))
            return [chunk[i : i + capacity] for i in range(0, len(chunk), capacity)]
        pages = math.ceil(len(chunk) / capacity)
        slabs = math.ceil(pages ** (1.0 / (dimensions - dim)))
        slab_size = math.ceil(len(chunk) / slabs)
        chunk = sorted(chunk, key=key_for_dim(dim))
        out: list[list] = []
        for i in range(0, len(chunk), slab_size):
            out.extend(recurse(chunk[i : i + slab_size], dim + 1))
        return out

    return recurse(list(items), 0)


def str_bulk_load(
    points: list[Point],
    dimensions: int,
    max_entries: int = 50,
    fill: float = 0.7,
    stats: ComparisonStats | None = None,
) -> RStarTree:
    """Build a packed R-tree over ``points``.

    Parameters
    ----------
    points:
        Transformed points (may be empty).
    dimensions:
        Vector dimensionality (must match the points).
    max_entries:
        Node capacity (paper default 50).
    fill:
        Packing factor; leaves/internal nodes are packed to
        ``ceil(fill * max_entries)`` entries.
    stats:
        Counter bundle shared with the caller.
    """
    if not 0.0 < fill <= 1.0:
        raise RTreeError("fill must be in (0, 1]")
    tree = RStarTree(dimensions, max_entries=max_entries, stats=stats)
    if not points:
        return tree
    for p in points:
        if len(p.vector) != dimensions:
            raise RTreeError(
                f"point has {len(p.vector)} dimensions, expected {dimensions}"
            )
    capacity = max(2, int(math.ceil(fill * max_entries)))

    def point_key(dim: int):
        return lambda p: p.vector[dim]

    groups = _tile(points, point_key, dimensions, capacity)
    level: list[Node] = [Node(leaf=True, entries=group) for group in groups]
    height = 1

    def node_key(dim: int):
        return lambda n: rect_center(n.mins, n.maxs)[dim]

    while len(level) > 1:
        groups = _tile(level, node_key, dimensions, capacity)
        level = [Node(leaf=False, entries=group) for group in groups]
        height += 1

    tree.root = level[0]
    tree.height = height
    tree.size = len(points)
    tree.packed = True
    return tree
