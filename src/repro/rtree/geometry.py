"""Axis-aligned rectangle (MBR) arithmetic.

Rectangles are represented as two coordinate tuples ``(mins, maxs)``
handled as separate arguments for speed; points are bare coordinate
tuples.  All functions work in any dimensionality.
"""

from __future__ import annotations

__all__ = [
    "rect_union",
    "rect_union_point",
    "rect_area",
    "rect_margin",
    "rect_overlap",
    "rect_intersects",
    "rect_contains",
    "rect_contains_point",
    "rect_enlargement",
    "rect_center",
    "point_rect_distance2",
    "mbr_of_points",
    "mbr_of_rects",
]


def rect_union(
    mins_a: tuple[float, ...],
    maxs_a: tuple[float, ...],
    mins_b: tuple[float, ...],
    maxs_b: tuple[float, ...],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Smallest rectangle covering both arguments."""
    return (
        tuple(a if a < b else b for a, b in zip(mins_a, mins_b)),
        tuple(a if a > b else b for a, b in zip(maxs_a, maxs_b)),
    )


def rect_union_point(
    mins: tuple[float, ...],
    maxs: tuple[float, ...],
    point: tuple[float, ...],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Smallest rectangle covering the rectangle and the point."""
    return (
        tuple(a if a < b else b for a, b in zip(mins, point)),
        tuple(a if a > b else b for a, b in zip(maxs, point)),
    )


def rect_area(mins: tuple[float, ...], maxs: tuple[float, ...]) -> float:
    """Hyper-volume of the rectangle."""
    area = 1.0
    for lo, hi in zip(mins, maxs):
        area *= hi - lo
    return area


def rect_margin(mins: tuple[float, ...], maxs: tuple[float, ...]) -> float:
    """Sum of side lengths (the R* margin criterion)."""
    return sum(hi - lo for lo, hi in zip(mins, maxs))


def rect_overlap(
    mins_a: tuple[float, ...],
    maxs_a: tuple[float, ...],
    mins_b: tuple[float, ...],
    maxs_b: tuple[float, ...],
) -> float:
    """Hyper-volume of the intersection (0 when disjoint)."""
    volume = 1.0
    for lo_a, hi_a, lo_b, hi_b in zip(mins_a, maxs_a, mins_b, maxs_b):
        lo = lo_a if lo_a > lo_b else lo_b
        hi = hi_a if hi_a < hi_b else hi_b
        if hi <= lo:
            return 0.0
        volume *= hi - lo
    return volume


def rect_intersects(
    mins_a: tuple[float, ...],
    maxs_a: tuple[float, ...],
    mins_b: tuple[float, ...],
    maxs_b: tuple[float, ...],
) -> bool:
    """Whether the rectangles share at least one point (boundaries
    inclusive; correct for degenerate/zero-volume boxes, unlike testing
    ``rect_overlap() > 0``)."""
    return all(
        lo_a <= hi_b and lo_b <= hi_a
        for lo_a, hi_a, lo_b, hi_b in zip(mins_a, maxs_a, mins_b, maxs_b)
    )


def rect_contains(
    mins_outer: tuple[float, ...],
    maxs_outer: tuple[float, ...],
    mins_inner: tuple[float, ...],
    maxs_inner: tuple[float, ...],
) -> bool:
    """Whether the first rectangle fully contains the second."""
    return all(
        lo_o <= lo_i and hi_i <= hi_o
        for lo_o, hi_o, lo_i, hi_i in zip(mins_outer, maxs_outer, mins_inner, maxs_inner)
    )


def rect_contains_point(
    mins: tuple[float, ...], maxs: tuple[float, ...], point: tuple[float, ...]
) -> bool:
    """Whether the rectangle contains the point (boundaries inclusive)."""
    return all(lo <= x <= hi for lo, hi, x in zip(mins, maxs, point))


def rect_enlargement(
    mins: tuple[float, ...],
    maxs: tuple[float, ...],
    point: tuple[float, ...],
) -> float:
    """Area growth needed for the rectangle to absorb the point."""
    new_area = 1.0
    old_area = 1.0
    for lo, hi, x in zip(mins, maxs, point):
        old_area *= hi - lo
        new_area *= (hi if hi > x else x) - (lo if lo < x else x)
    return new_area - old_area


def rect_center(
    mins: tuple[float, ...], maxs: tuple[float, ...]
) -> tuple[float, ...]:
    """Geometric center of the rectangle."""
    return tuple((lo + hi) / 2.0 for lo, hi in zip(mins, maxs))


def point_rect_distance2(
    point: tuple[float, ...], mins: tuple[float, ...], maxs: tuple[float, ...]
) -> float:
    """Squared Euclidean distance from a point to a rectangle."""
    acc = 0.0
    for x, lo, hi in zip(point, mins, maxs):
        if x < lo:
            acc += (lo - x) ** 2
        elif x > hi:
            acc += (x - hi) ** 2
    return acc


def mbr_of_points(
    vectors: list[tuple[float, ...]],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Bounding rectangle of a non-empty list of points."""
    mins = tuple(min(col) for col in zip(*vectors))
    maxs = tuple(max(col) for col in zip(*vectors))
    return mins, maxs


def mbr_of_rects(
    rects: list[tuple[tuple[float, ...], tuple[float, ...]]],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Bounding rectangle of a non-empty list of rectangles."""
    mins = tuple(min(col) for col in zip(*(r[0] for r in rects)))
    maxs = tuple(max(col) for col in zip(*(r[1] for r in rects)))
    return mins, maxs
