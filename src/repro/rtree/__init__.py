"""From-scratch R*-tree substrate.

Implements the index of the paper's step (S2): an R*-tree (Beckmann et
al., SIGMOD'90) over the transformed minimisation space, with

* dynamic insertion (ChooseSubtree with minimum-overlap at the leaf level,
  R* axis/distribution splits, one round of forced reinsertion per level),
* STR bulk loading (Leutenegger et al.) for fast index construction,
* per-entry aggregated dominance-category bits, as described in the
  paper's Section 5 ("each entry in the index nodes has two additional
  bits indicating whether the entry is partially/completely
  covered/covering"), and
* a node-access counter, the paper's I/O proxy.
"""

from repro.rtree.geometry import (
    rect_area,
    rect_contains,
    rect_enlargement,
    rect_margin,
    rect_overlap,
    rect_union,
)
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.rtree.bulk import str_bulk_load

__all__ = [
    "rect_area",
    "rect_margin",
    "rect_union",
    "rect_overlap",
    "rect_contains",
    "rect_enlargement",
    "Node",
    "RStarTree",
    "str_bulk_load",
]
