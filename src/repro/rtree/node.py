"""R-tree nodes.

Leaf nodes hold :class:`~repro.transform.point.Point` entries; internal
nodes hold child :class:`Node` entries.  Every node maintains its MBR and
the paper's two aggregated dominance-classification bits:

* ``covered_all`` -- every point below is completely covered;
* ``covering_all`` -- every point below is completely covering.

The bits let SDC/SDC+ restrict which intermediate-skyline subsets an index
entry needs to be checked against during heap pruning.
"""

from __future__ import annotations

from typing import Union

from repro.core.categories import Category
from repro.transform.point import Point

__all__ = ["Node"]


class Node:
    """One R-tree node (page)."""

    __slots__ = ("leaf", "entries", "mins", "maxs", "covered_all", "covering_all")

    def __init__(self, leaf: bool, entries: list[Union["Node", Point]] | None = None) -> None:
        self.leaf = leaf
        self.entries: list[Union[Node, Point]] = entries if entries is not None else []
        self.mins: tuple[float, ...] = ()
        self.maxs: tuple[float, ...] = ()
        self.covered_all = True
        self.covering_all = True
        if self.entries:
            self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute the MBR and category bits from the entries."""
        if not self.entries:
            self.mins = ()
            self.maxs = ()
            self.covered_all = True
            self.covering_all = True
            return
        if self.leaf:
            vectors = [p.vector for p in self.entries]
            self.mins = tuple(min(col) for col in zip(*vectors))
            self.maxs = tuple(max(col) for col in zip(*vectors))
            self.covered_all = all(p.category.completely_covered for p in self.entries)
            self.covering_all = all(p.category.completely_covering for p in self.entries)
        else:
            self.mins = tuple(min(col) for col in zip(*(c.mins for c in self.entries)))
            self.maxs = tuple(max(col) for col in zip(*(c.maxs for c in self.entries)))
            self.covered_all = all(c.covered_all for c in self.entries)
            self.covering_all = all(c.covering_all for c in self.entries)

    def extend_for(self, entry: Union["Node", Point]) -> None:
        """Grow the MBR/bits to absorb one entry (cheaper than refresh)."""
        if isinstance(entry, Point):
            lo = hi = entry.vector
            covered = entry.category.completely_covered
            covering = entry.category.completely_covering
        else:
            lo, hi = entry.mins, entry.maxs
            covered = entry.covered_all
            covering = entry.covering_all
        if not self.mins:
            self.mins, self.maxs = tuple(lo), tuple(hi)
        else:
            self.mins = tuple(a if a < b else b for a, b in zip(self.mins, lo))
            self.maxs = tuple(a if a > b else b for a, b in zip(self.maxs, hi))
        self.covered_all = self.covered_all and covered
        self.covering_all = self.covering_all and covering

    # ------------------------------------------------------------------
    @property
    def min_key(self) -> float:
        """BBS priority of the node: L1 distance of its best corner."""
        return sum(self.mins)

    def possible_categories(self) -> frozenset[Category]:
        """Point categories that may occur beneath this node.

        Derived conservatively from the two aggregated bits: a ``c`` bit
        pins the component, a ``p`` bit admits both values.
        """
        covered_opts = (True,) if self.covered_all else (True, False)
        covering_opts = (True,) if self.covering_all else (True, False)
        return frozenset(
            Category.of(cov, ing) for cov in covered_opts for ing in covering_opts
        )

    def count_points(self) -> int:
        """Number of data points in the subtree (test helper)."""
        if self.leaf:
            return len(self.entries)
        return sum(c.count_points() for c in self.entries)

    def depth(self) -> int:
        """Height of the subtree (1 for a leaf)."""
        if self.leaf:
            return 1
        return 1 + max(c.depth() for c in self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.leaf else "internal"
        return f"Node({kind}, fanout={len(self.entries)})"
