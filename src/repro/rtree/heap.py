"""Min-heap over R-tree entries keyed by BBS priority.

BBS visits index entries in ascending order of their L1 distance to the
ideal corner of the (normalised minimisation) space: ``sum(mins)`` for a
node, ``sum(vector)`` for a point.  That ordering guarantees a point is
popped only after every point that could m-dominate it.

Ties are broken canonically, not structurally: at equal priority every
*node* pops before any *point* (a node with ``min_key == k`` may still
contain key-``k`` points, so expanding it first guarantees all tied
points are in the heap before the first one pops), and tied points pop
in record-id order.  The pop sequence of data points is therefore a
pure function of the point set itself -- independent of how the R-tree
happened to group them -- which is what lets sharded execution prune
provably dominated points from a shard (the parallel filter board)
without perturbing the emission order of the survivors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Union

from repro.core.stats import ComparisonStats
from repro.rtree.node import Node
from repro.transform.point import Point

__all__ = ["EntryHeap", "entry_key"]


def entry_key(entry: Union[Node, Point]) -> float:
    """BBS priority of a heap entry."""
    if isinstance(entry, Point):
        return entry.key
    return entry.min_key


class EntryHeap:
    """Priority queue of mixed node/point entries with canonical tie-breaks."""

    __slots__ = ("_heap", "_tie", "stats")

    def __init__(self, stats: ComparisonStats | None = None) -> None:
        self._heap: list[tuple] = []
        self._tie = itertools.count()
        self.stats = stats if stats is not None else ComparisonStats()

    def push(self, entry: Union[Node, Point]) -> None:
        """Insert an entry with its BBS priority."""
        self.stats.heap_pushes += 1
        if isinstance(entry, Point):
            # Points tie-break on rid when it is an int (canonical,
            # tree-shape independent); other rid types keep the legacy
            # insertion-order tie-break -- rids of mixed/unorderable
            # types cannot be compared, and such datasets never ride
            # the sharded path that needs canonical order.
            rid = entry.record.rid
            tie = (0, rid) if isinstance(rid, int) else (1, next(self._tie))
            item = (entry.key, 1, tie, entry)
        else:
            item = (entry.min_key, 0, (0, next(self._tie)), entry)
        heapq.heappush(self._heap, item)

    def pop(self) -> Union[Node, Point]:
        """Remove and return the entry with the smallest priority."""
        self.stats.heap_pops += 1
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
