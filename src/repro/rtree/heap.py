"""Min-heap over R-tree entries keyed by BBS priority.

BBS visits index entries in ascending order of their L1 distance to the
ideal corner of the (normalised minimisation) space: ``sum(mins)`` for a
node, ``sum(vector)`` for a point.  That ordering guarantees a point is
popped only after every point that could m-dominate it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Union

from repro.core.stats import ComparisonStats
from repro.rtree.node import Node
from repro.transform.point import Point

__all__ = ["EntryHeap", "entry_key"]


def entry_key(entry: Union[Node, Point]) -> float:
    """BBS priority of a heap entry."""
    if isinstance(entry, Point):
        return entry.key
    return entry.min_key


class EntryHeap:
    """Priority queue of mixed node/point entries with stable tie-breaks."""

    __slots__ = ("_heap", "_tie", "stats")

    def __init__(self, stats: ComparisonStats | None = None) -> None:
        self._heap: list[tuple[float, int, Union[Node, Point]]] = []
        self._tie = itertools.count()
        self.stats = stats if stats is not None else ComparisonStats()

    def push(self, entry: Union[Node, Point]) -> None:
        """Insert an entry with its BBS priority."""
        self.stats.heap_pushes += 1
        heapq.heappush(self._heap, (entry_key(entry), next(self._tie), entry))

    def pop(self) -> Union[Node, Point]:
        """Remove and return the entry with the smallest priority."""
        self.stats.heap_pops += 1
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
