"""R*-tree with dynamic insertion (Beckmann et al., SIGMOD'90).

Node heights are counted from the leaves (a leaf has height 1), so
pending forced-reinsert entries keep a stable target height even when the
root splits.  The implementation follows the R* paper:

* **ChooseSubtree** -- minimum overlap enlargement when the children are
  leaves (ties: minimum area enlargement, then minimum area), minimum
  area enlargement otherwise;
* **OverflowTreatment** -- one forced reinsertion of the 30% of entries
  farthest from the node center per level per insertion, then splits;
* **Split** -- choose the axis with the least margin sum over all
  distributions, then the distribution with the least overlap (ties:
  least combined area).

The paper indexes transformed data points with "page sizes of 4K bytes
and node capacity of 50"; ``max_entries`` defaults to 50 accordingly.
"""

from __future__ import annotations

import math
from typing import Iterator, Union

from repro.core.stats import ComparisonStats
from repro.exceptions import RTreeError
from repro.rtree.geometry import (
    rect_area,
    rect_center,
    rect_contains,
    rect_contains_point,
    rect_enlargement,
    rect_intersects,
    rect_overlap,
    rect_union,
)
from repro.rtree.node import Node
from repro.transform.point import Point

__all__ = ["RStarTree"]

Entry = Union[Node, Point]


def _entry_rect(entry: Entry) -> tuple[tuple[float, ...], tuple[float, ...]]:
    if isinstance(entry, Point):
        return entry.vector, entry.vector
    return entry.mins, entry.maxs


class RStarTree:
    """An in-memory R*-tree over transformed points."""

    REINSERT_FRACTION = 0.3

    def __init__(
        self,
        dimensions: int,
        max_entries: int = 50,
        min_fill: float = 0.4,
        reinsert: bool = True,
        stats: ComparisonStats | None = None,
    ) -> None:
        if dimensions < 1:
            raise RTreeError("dimensions must be positive")
        if max_entries < 4:
            raise RTreeError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise RTreeError("min_fill must be in (0, 0.5]")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = max(2, int(math.ceil(min_fill * max_entries)))
        self.reinsert_enabled = reinsert
        self.stats = stats if stats is not None else ComparisonStats()
        self.root = Node(leaf=True)
        self.height = 1
        self.size = 0
        self.packed = False  # set by STR bulk loading (relaxes occupancy checks)
        #: Optional :class:`~repro.bench.costmodel.BufferPool`; when
        #: attached, :meth:`access` classifies node reads as hits/misses.
        self.buffer_pool = None
        self._reinserted_heights: set[int] = set()
        self._pending: list[tuple[Entry, int]] = []

    # ------------------------------------------------------------------
    # Page access accounting
    # ------------------------------------------------------------------
    def access(self, node: Node) -> None:
        """Record one node (page) read during query processing."""
        self.stats.node_accesses += 1
        if self.buffer_pool is not None and not self.buffer_pool.access(node):
            self.stats.page_misses += 1

    def view(self, stats: ComparisonStats, buffer_pool=None) -> "RStarTree":
        """A read-only view of this tree counting into ``stats``.

        The view shares every node with the original (no copying), so it
        is only safe while the original is not mutated -- the serving
        layer guarantees this by draining in-flight queries before
        updates.  It exists so concurrent queries over one shared tree
        can each charge ``node_accesses`` / ``page_misses`` to their own
        per-query counter bundle instead of racing on a shared one.
        """
        clone = RStarTree.__new__(RStarTree)
        clone.__dict__.update(self.__dict__)
        clone.stats = stats
        clone.buffer_pool = buffer_pool if buffer_pool is not None else self.buffer_pool
        clone._reinserted_heights = set()
        clone._pending = []
        return clone

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert one transformed point."""
        if len(point.vector) != self.dimensions:
            raise RTreeError(
                f"point has {len(point.vector)} dimensions, tree has {self.dimensions}"
            )
        self._reinserted_heights = set()
        self._pending = [(point, 1)]
        while self._pending:
            entry, target_height = self._pending.pop()
            self._root_insert(entry, target_height)
        self.size += 1

    def extend(self, points: list[Point]) -> None:
        """Insert many points one by one."""
        for point in points:
            self.insert(point)

    def _root_insert(self, entry: Entry, target_height: int) -> None:
        split, _ = self._insert(self.root, entry, target_height, self.height)
        if split is not None:
            self.root = Node(leaf=False, entries=[self.root, split])
            self.height += 1

    def _insert(
        self, node: Node, entry: Entry, target_height: int, height: int
    ) -> tuple[Node | None, bool]:
        """Recursive insert; returns ``(split_sibling, subtree_shrunk)``."""
        shrunk = False
        if height == target_height:
            node.entries.append(entry)
            node.extend_for(entry)
        else:
            child = self._choose_child(node, entry, height)
            split, child_shrunk = self._insert(child, entry, target_height, height - 1)
            if split is not None:
                node.entries.append(split)
            if child_shrunk or split is not None:
                node.refresh()
                shrunk = True
            else:
                node.extend_for(entry)
        if len(node.entries) > self.max_entries:
            sibling, removed = self._overflow(node, height)
            return sibling, shrunk or removed
        return None, shrunk

    def _choose_child(self, node: Node, entry: Entry, height: int) -> Node:
        mins_e, maxs_e = _entry_rect(entry)
        children: list[Node] = node.entries  # type: ignore[assignment]
        if height - 1 == 1:
            # Children are leaves: minimise overlap enlargement.
            best = None
            best_key = None
            for i, child in enumerate(children):
                new_mins, new_maxs = rect_union(child.mins, child.maxs, mins_e, maxs_e)
                overlap_before = 0.0
                overlap_after = 0.0
                for j, other in enumerate(children):
                    if i == j:
                        continue
                    overlap_before += rect_overlap(
                        child.mins, child.maxs, other.mins, other.maxs
                    )
                    overlap_after += rect_overlap(new_mins, new_maxs, other.mins, other.maxs)
                enlargement = rect_area(new_mins, new_maxs) - rect_area(
                    child.mins, child.maxs
                )
                key = (
                    overlap_after - overlap_before,
                    enlargement,
                    rect_area(child.mins, child.maxs),
                )
                if best_key is None or key < best_key:
                    best, best_key = child, key
            return best  # type: ignore[return-value]
        best = None
        best_key = None
        for child in children:
            enlargement = rect_enlargement(child.mins, child.maxs, mins_e) + rect_enlargement(
                child.mins, child.maxs, maxs_e
            )
            key = (enlargement, rect_area(child.mins, child.maxs))
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Overflow treatment
    # ------------------------------------------------------------------
    def _overflow(self, node: Node, height: int) -> tuple[Node | None, bool]:
        if (
            self.reinsert_enabled
            and node is not self.root
            and height not in self._reinserted_heights
        ):
            self._reinserted_heights.add(height)
            self._forced_reinsert(node, height)
            return None, True
        sibling = self._split(node)
        return sibling, True

    def _forced_reinsert(self, node: Node, height: int) -> None:
        center = rect_center(node.mins, node.maxs)
        scored: list[tuple[float, Entry]] = []
        for entry in node.entries:
            mins_e, maxs_e = _entry_rect(entry)
            ecenter = rect_center(mins_e, maxs_e)
            dist = sum((a - b) ** 2 for a, b in zip(center, ecenter))
            scored.append((dist, entry))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        count = max(1, int(self.REINSERT_FRACTION * len(node.entries)))
        removed = [entry for _, entry in scored[:count]]
        node.entries = [entry for _, entry in scored[count:]]
        node.refresh()
        # Close reinsert: nearest-first so entries likely land back nearby.
        for entry in reversed(removed):
            self._pending.append((entry, height))

    # ------------------------------------------------------------------
    # R* split
    # ------------------------------------------------------------------
    def _split(self, node: Node) -> Node:
        entries = node.entries
        m = self.min_entries
        total = len(entries)
        rects = [_entry_rect(e) for e in entries]

        best_axis = -1
        best_margin = None
        for axis in range(self.dimensions):
            margin_sum = 0.0
            for sort_key in (
                lambda i: (rects[i][0][axis], rects[i][1][axis]),
                lambda i: (rects[i][1][axis], rects[i][0][axis]),
            ):
                order = sorted(range(total), key=sort_key)
                margin_sum += self._distributions_margin(order, rects, m)
            if best_margin is None or margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis

        axis = best_axis
        best_groups = None
        best_key = None
        for sort_key in (
            lambda i: (rects[i][0][axis], rects[i][1][axis]),
            lambda i: (rects[i][1][axis], rects[i][0][axis]),
        ):
            order = sorted(range(total), key=sort_key)
            prefix = self._prefix_mbrs([rects[i] for i in order])
            suffix = self._prefix_mbrs([rects[i] for i in reversed(order)])
            for k in range(m, total - m + 1):
                mins1, maxs1 = prefix[k - 1]
                mins2, maxs2 = suffix[total - k - 1]
                overlap = rect_overlap(mins1, maxs1, mins2, maxs2)
                area = rect_area(mins1, maxs1) + rect_area(mins2, maxs2)
                key = (overlap, area)
                if best_key is None or key < best_key:
                    best_key = key
                    best_groups = (
                        [entries[i] for i in order[:k]],
                        [entries[i] for i in order[k:]],
                    )

        group1, group2 = best_groups  # type: ignore[misc]
        node.entries = group1
        node.refresh()
        sibling = Node(leaf=node.leaf, entries=group2)
        return sibling

    @staticmethod
    def _prefix_mbrs(
        rects: list[tuple[tuple[float, ...], tuple[float, ...]]],
    ) -> list[tuple[tuple[float, ...], tuple[float, ...]]]:
        out = []
        mins, maxs = rects[0]
        out.append((mins, maxs))
        for lo, hi in rects[1:]:
            mins, maxs = rect_union(mins, maxs, lo, hi)
            out.append((mins, maxs))
        return out

    def _distributions_margin(
        self,
        order: list[int],
        rects: list[tuple[tuple[float, ...], tuple[float, ...]]],
        m: int,
    ) -> float:
        from repro.rtree.geometry import rect_margin

        total = len(order)
        prefix = self._prefix_mbrs([rects[i] for i in order])
        suffix = self._prefix_mbrs([rects[i] for i in reversed(order)])
        margin_sum = 0.0
        for k in range(m, total - m + 1):
            margin_sum += rect_margin(*prefix[k - 1]) + rect_margin(*suffix[total - k - 1])
        return margin_sum

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, point: Point) -> bool:
        """Remove one point; returns ``False`` when it is not stored.

        Classic R-tree deletion with CondenseTree: underfull nodes along
        the path are dissolved and their data points reinserted (orphan
        subtrees are flattened to points -- simpler than height-matched
        subtree reinsertion and equivalent for correctness).
        """
        path = self._find_leaf(self.root, point)
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e is not point]
        self.size -= 1

        orphan_points: list[Point] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e is not node]
                orphan_points.extend(self._collect_points(node))
            else:
                node.refresh()
        self.root.refresh()

        # Shrink the root while it has a single non-leaf child.
        while not self.root.leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0]  # type: ignore[assignment]
            self.height -= 1
        if not self.root.entries:
            self.root = Node(leaf=True)
            self.height = 1

        self.size -= len(orphan_points)
        for orphan in orphan_points:
            self.insert(orphan)
        return True

    def _find_leaf(self, node: Node, point: Point) -> list[Node] | None:
        if node.leaf:
            if any(e is point for e in node.entries):
                return [node]
            return None
        for child in node.entries:
            if rect_contains_point(child.mins, child.maxs, point.vector):  # type: ignore[union-attr]
                found = self._find_leaf(child, point)  # type: ignore[arg-type]
                if found is not None:
                    return [node] + found
        return None

    @staticmethod
    def _collect_points(node: Node) -> list[Point]:
        out: list[Point] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.leaf:
                out.extend(current.entries)  # type: ignore[arg-type]
            else:
                stack.extend(current.entries)  # type: ignore[arg-type]
        return out

    # ------------------------------------------------------------------
    # Queries and maintenance helpers
    # ------------------------------------------------------------------
    def points(self) -> Iterator[Point]:
        """Iterate every stored point (arbitrary order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries  # type: ignore[misc]
            else:
                stack.extend(node.entries)  # type: ignore[arg-type]

    def search(
        self, mins: tuple[float, ...], maxs: tuple[float, ...]
    ) -> list[Point]:
        """Range query: all points inside the rectangle (inclusive)."""
        out: list[Point] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.access(node)
            if node.leaf:
                for p in node.entries:
                    if rect_contains_point(mins, maxs, p.vector):  # type: ignore[union-attr]
                        out.append(p)  # type: ignore[arg-type]
            else:
                for child in node.entries:
                    if rect_intersects(mins, maxs, child.mins, child.maxs):
                        stack.append(child)  # type: ignore[arg-type]
        return out

    def __len__(self) -> int:
        return self.size

    def validate(self) -> None:
        """Check structural invariants; raises :class:`RTreeError`.

        Verifies uniform leaf depth, occupancy bounds, MBR containment and
        aggregated category-bit consistency.
        """
        if self.size == 0:
            if self.root.entries:
                raise RTreeError("empty tree has root entries")
            return
        leaf_depths: set[int] = set()

        def walk(node: Node, depth: int, is_root: bool) -> None:
            if not node.entries and not is_root:
                raise RTreeError("empty non-root node")
            if not is_root and not self.packed and not (
                self.min_entries <= len(node.entries) <= self.max_entries
            ):
                raise RTreeError(
                    f"node occupancy {len(node.entries)} outside "
                    f"[{self.min_entries}, {self.max_entries}]"
                )
            if is_root and not self.packed and len(node.entries) > self.max_entries:
                raise RTreeError("root overflow")
            if node.leaf:
                leaf_depths.add(depth)
                covered = True
                covering = True
                for p in node.entries:
                    if not rect_contains_point(node.mins, node.maxs, p.vector):  # type: ignore[union-attr]
                        raise RTreeError("leaf MBR does not contain a point")
                    covered = covered and p.category.completely_covered  # type: ignore[union-attr]
                    covering = covering and p.category.completely_covering  # type: ignore[union-attr]
                if covered != node.covered_all or covering != node.covering_all:
                    raise RTreeError("leaf category bits inconsistent")
                return
            covered = True
            covering = True
            for child in node.entries:
                if not rect_contains(node.mins, node.maxs, child.mins, child.maxs):  # type: ignore[union-attr]
                    raise RTreeError("node MBR does not contain child MBR")
                covered = covered and child.covered_all  # type: ignore[union-attr]
                covering = covering and child.covering_all  # type: ignore[union-attr]
                walk(child, depth + 1, False)  # type: ignore[arg-type]
            if covered != node.covered_all or covering != node.covering_all:
                raise RTreeError("internal category bits inconsistent")

        walk(self.root, 1, True)
        if len(leaf_depths) != 1:
            raise RTreeError(f"leaves at different depths: {sorted(leaf_depths)}")
        count = self.root.count_points()
        if count != self.size:
            raise RTreeError(f"size {self.size} != stored points {count}")
