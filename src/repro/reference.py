"""Reference (brute-force) implementations straight from the definitions.

These oracles exist so downstream users -- and this repository's own test
suite -- can verify any evaluator against the Section 4.2 definitions
with no shared code paths: dominance is computed attribute by attribute
from the schema (numeric direction comparisons plus poset reachability),
and the skyline/skyband by quadratic scans.

They are deliberately simple and unoptimised; use the real algorithms for
anything beyond validation-sized inputs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.record import Record
from repro.core.schema import Schema

__all__ = [
    "reference_dominates",
    "reference_skyline",
    "reference_skyband",
    "reference_dominance_count",
]


def reference_dominates(schema: Schema, r1: Record, r2: Record) -> bool:
    """Native dominance of ``r1`` over ``r2`` per Section 4.2.

    ``r1`` dominates ``r2`` iff it is at least as good on every attribute
    (direction-aware for numeric attributes, partial-order ``<=`` for
    poset attributes) and strictly better on at least one.
    """
    strict = False
    for attr, a, b in zip(schema.total_attrs, r1.totals, r2.totals):
        na, nb = attr.normalize(a), attr.normalize(b)
        if na > nb:
            return False
        if na < nb:
            strict = True
    for attr, a, b in zip(schema.partial_attrs, r1.partials, r2.partials):
        if a == b:
            continue
        if attr.poset.dominates(a, b):
            strict = True
            continue
        return False
    return strict


def reference_skyline(schema: Schema, records: Sequence[Record]) -> list[Record]:
    """The exact skyline by an O(n^2) scan (order of input preserved)."""
    return [
        r
        for i, r in enumerate(records)
        if not any(
            reference_dominates(schema, other, r)
            for j, other in enumerate(records)
            if i != j
        )
    ]


def reference_dominance_count(
    schema: Schema, records: Sequence[Record], record: Record
) -> int:
    """Number of records in ``records`` that dominate ``record``."""
    return sum(
        1
        for other in records
        if other is not record and reference_dominates(schema, other, record)
    )


def reference_skyband(
    schema: Schema, records: Sequence[Record], k: int
) -> list[Record]:
    """The exact k-skyband (dominated by fewer than ``k`` records)."""
    return [
        r
        for r in records
        if reference_dominance_count(schema, records, r) < k
    ]
