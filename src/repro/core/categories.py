"""Dominance categories and the dominance graph DG (Fig. 5, Lemma 4.1/4.2).

A value (or record) is tagged ``(covered, covering)`` where each component
is ``c`` (completely) or ``p`` (partially); see
:mod:`repro.posets.classification`.  Fig. 5 of the paper is an image, so
the edge set is re-derived here from first principles (and property-tested
in ``tests/test_categories.py`` against brute-force dominance):

* If ``x`` is completely covering and ``x`` dominates ``y``, every
  outgoing path of ``x`` -- including the witnessing path extended past
  ``y`` -- lies in the spanning forest, hence *y is completely covering
  too*.  So a source with covering ``c`` only reaches targets with
  covering ``c``.
* Dually, if ``y`` is completely covered and ``x`` dominates ``y``, every
  incoming path of ``x`` extends to an incoming path of ``y`` and lies in
  the forest, hence *x is completely covered too*.  So a target with
  covered ``c`` is only reached from sources with covered ``c``.

Together these rules give exactly the edges below (self-loops included;
the relation is reflexive, antisymmetric and transitive as the paper
notes).  An edge is **bold** -- meaning dominance and m-dominance coincide
across it (Lemma 4.2) -- when the source is completely covering or the
target is completely covered.
"""

from __future__ import annotations

import enum

__all__ = [
    "Category",
    "DOMINANCE_EDGES",
    "BOLD_EDGES",
    "CATEGORY_SCAN_ORDER",
    "can_dominate",
    "is_bold",
    "dominators_of",
    "targets_of",
    "dominators_of_set",
    "ordered_categories",
]


class Category(enum.Enum):
    """``(covered, covering)`` dominance category of a value or record."""

    CC = ("c", "c")
    CP = ("c", "p")
    PC = ("p", "c")
    PP = ("p", "p")

    def __init__(self, covered: str, covering: str) -> None:
        self._covered = covered
        self._covering = covering

    @property
    def covered(self) -> str:
        """``'c'`` when completely covered, ``'p'`` otherwise."""
        return self._covered

    @property
    def covering(self) -> str:
        """``'c'`` when completely covering, ``'p'`` otherwise."""
        return self._covering

    @property
    def completely_covered(self) -> bool:
        """Whether the covered component is ``c``."""
        return self._covered == "c"

    @property
    def completely_covering(self) -> bool:
        """Whether the covering component is ``c``."""
        return self._covering == "c"

    @staticmethod
    def of(covered: bool, covering: bool) -> "Category":
        """Category from boolean (covered, covering) flags."""
        return _BY_FLAGS[(covered, covering)]

    def __str__(self) -> str:
        return f"({self._covered},{self._covering})"


_BY_FLAGS = {
    (True, True): Category.CC,
    (True, False): Category.CP,
    (False, True): Category.PC,
    (False, False): Category.PP,
}


def _derive_edges() -> frozenset[tuple[Category, Category]]:
    edges = set()
    for src in Category:
        for dst in Category:
            if src.completely_covering and not dst.completely_covering:
                continue  # covering sources only dominate covering targets
            if dst.completely_covered and not src.completely_covered:
                continue  # covered targets only dominated by covered sources
            edges.add((src, dst))
    return frozenset(edges)


#: All ``(source, target)`` category pairs across which dominance is
#: possible (Lemma 4.1).  Self-loops are present: the relation is
#: reflexive.
DOMINANCE_EDGES: frozenset[tuple[Category, Category]] = _derive_edges()

#: The subset of :data:`DOMINANCE_EDGES` across which dominance and
#: m-dominance coincide (Lemma 4.2, the bold edges of Fig. 5).
BOLD_EDGES: frozenset[tuple[Category, Category]] = frozenset(
    (src, dst)
    for (src, dst) in DOMINANCE_EDGES
    if src.completely_covering or dst.completely_covered
)


def can_dominate(src: Category, dst: Category) -> bool:
    """Whether a record in ``src`` can possibly dominate one in ``dst``."""
    return (src, dst) in DOMINANCE_EDGES


def is_bold(src: Category, dst: Category) -> bool:
    """Whether dominance across ``(src, dst)`` implies m-dominance."""
    return (src, dst) in BOLD_EDGES


def dominators_of(dst: Category) -> frozenset[Category]:
    """Categories whose records can dominate a record in ``dst``."""
    return _DOMINATORS[dst]


def targets_of(src: Category) -> frozenset[Category]:
    """Categories whose records can be dominated by a record in ``src``."""
    return _TARGETS[src]


def dominators_of_set(dsts: frozenset[Category]) -> frozenset[Category]:
    """Union of :func:`dominators_of` over a set of target categories.

    Used for heap pruning of R-tree entries whose aggregated category bits
    admit several point categories.
    """
    return _DOMINATORS_OF_SET[dsts]


_DOMINATORS = {
    dst: frozenset(src for src in Category if (src, dst) in DOMINANCE_EDGES)
    for dst in Category
}
_TARGETS = {
    src: frozenset(dst for dst in Category if (src, dst) in DOMINANCE_EDGES)
    for src in Category
}


def _powerset_dominators() -> dict[frozenset[Category], frozenset[Category]]:
    cats = list(Category)
    table: dict[frozenset[Category], frozenset[Category]] = {}
    for mask in range(1, 1 << len(cats)):
        subset = frozenset(cats[i] for i in range(len(cats)) if mask >> i & 1)
        acc: frozenset[Category] = frozenset()
        for dst in subset:
            acc |= _DOMINATORS[dst]
        table[subset] = acc
    return table


_DOMINATORS_OF_SET = _powerset_dominators()

#: Canonical order for iterating category subsets.  Fixed (rather than
#: Python's id-dependent set order) so comparison counts are reproducible
#: across processes; ``(c,p)`` first because its members can dominate
#: everything and hence prune earliest.
CATEGORY_SCAN_ORDER: tuple[Category, ...] = (
    Category.CP,
    Category.CC,
    Category.PP,
    Category.PC,
)


def ordered_categories(cats: frozenset[Category]) -> tuple[Category, ...]:
    """``cats`` as a tuple in :data:`CATEGORY_SCAN_ORDER`."""
    return tuple(c for c in CATEGORY_SCAN_ORDER if c in cats)
