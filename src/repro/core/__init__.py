"""Core record model, dominance kernel and the paper's dominance graph."""

from repro.core.categories import (
    BOLD_EDGES,
    DOMINANCE_EDGES,
    Category,
    can_dominate,
    dominators_of,
    dominators_of_set,
    is_bold,
    targets_of,
)
from repro.core.record import Record
from repro.core.schema import AttributeKind, NumericAttribute, PosetAttribute, Schema
from repro.core.stats import ComparisonStats
from repro.core.dominance import DominanceKernel

__all__ = [
    "Category",
    "DOMINANCE_EDGES",
    "BOLD_EDGES",
    "can_dominate",
    "is_bold",
    "dominators_of",
    "dominators_of_set",
    "targets_of",
    "Record",
    "Schema",
    "AttributeKind",
    "NumericAttribute",
    "PosetAttribute",
    "ComparisonStats",
    "DominanceKernel",
]
