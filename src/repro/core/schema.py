"""Schemas mixing totally- and partially-ordered attributes (Section 4.2).

A :class:`Schema` is an ordered list of attribute specifications:

* :class:`NumericAttribute` -- a totally-ordered attribute with a
  preference direction (``MIN`` like the hotel price, or ``MAX``);
* :class:`PosetAttribute` -- a partially-ordered attribute whose values
  live in a :class:`~repro.posets.poset.Poset`; an optional
  :class:`~repro.posets.setvalued.SetValuedDomain` supplies the *native*
  set representation used for the expensive original-domain comparisons
  the paper evaluates.

Records (:class:`~repro.core.record.Record`) store totally-ordered values
and partially-ordered values in two parallel tuples, in schema order
within each kind.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterable, Sequence
from math import isfinite
from typing import Optional

from repro.exceptions import SchemaError
from repro.posets.poset import Poset
from repro.posets.setvalued import SetValuedDomain

__all__ = ["AttributeKind", "NumericAttribute", "PosetAttribute", "Schema"]


class AttributeKind(enum.Enum):
    """Whether an attribute is totally or partially ordered."""

    TOTAL = "total"
    PARTIAL = "partial"


class NumericAttribute:
    """A totally-ordered attribute.

    Parameters
    ----------
    name:
        Attribute name (unique within a schema).
    direction:
        ``"min"`` when smaller values are preferred (dominate), ``"max"``
        otherwise.
    """

    __slots__ = ("name", "direction")
    kind = AttributeKind.TOTAL

    def __init__(self, name: str, direction: str = "min") -> None:
        if direction not in ("min", "max"):
            raise SchemaError(f"direction must be 'min' or 'max', got {direction!r}")
        self.name = name
        self.direction = direction

    @property
    def sign(self) -> int:
        """Multiplier that maps raw values onto minimisation coordinates."""
        return 1 if self.direction == "min" else -1

    def normalize(self, value: float) -> float:
        """Raw value -> minimisation coordinate (smaller is better)."""
        return value * self.sign

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumericAttribute({self.name!r}, {self.direction!r})"


class PosetAttribute:
    """A partially-ordered attribute over a poset domain.

    Parameters
    ----------
    name:
        Attribute name.
    poset:
        The partial order of the domain; a value dominates another when a
        directed path connects them in the DAG.
    set_domain:
        Optional set-valued representation.  When present, native
        dominance checks compare actual sets by containment -- the
        realistic expensive comparison the paper's experiments measure.
        When absent, native checks fall back to poset reachability.
    """

    __slots__ = ("name", "poset", "set_domain")
    kind = AttributeKind.PARTIAL

    def __init__(
        self, name: str, poset: Poset, set_domain: Optional[SetValuedDomain] = None
    ) -> None:
        if set_domain is not None and set_domain.poset is not poset:
            raise SchemaError(f"set domain of {name!r} was built from a different poset")
        self.name = name
        self.poset = poset
        self.set_domain = set_domain

    @classmethod
    def set_valued(cls, name: str, poset: Poset) -> "PosetAttribute":
        """Build with a canonical set-valued representation derived from
        the poset (containment isomorphic to the order)."""
        return cls(name, poset, SetValuedDomain.from_poset(poset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "set-valued" if self.set_domain is not None else "reachability"
        return f"PosetAttribute({self.name!r}, |D|={len(self.poset)}, {tag})"


class Schema:
    """An ordered collection of attributes defining the skyline query."""

    __slots__ = ("attributes", "total_attrs", "partial_attrs", "_names")

    def __init__(self, attributes: Iterable[NumericAttribute | PosetAttribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        self.attributes = attrs
        self.total_attrs: tuple[NumericAttribute, ...] = tuple(
            a for a in attrs if a.kind is AttributeKind.TOTAL
        )
        self.partial_attrs: tuple[PosetAttribute, ...] = tuple(
            a for a in attrs if a.kind is AttributeKind.PARTIAL
        )
        self._names = {a.name: a for a in attrs}

    # ------------------------------------------------------------------
    @property
    def num_total(self) -> int:
        """Number of totally-ordered attributes."""
        return len(self.total_attrs)

    @property
    def num_partial(self) -> int:
        """Number of partially-ordered attributes."""
        return len(self.partial_attrs)

    @property
    def transformed_dimensions(self) -> int:
        """Dimensionality after the interval transformation (S1)."""
        return self.num_total + 2 * self.num_partial

    @property
    def is_totally_ordered(self) -> bool:
        """``True`` for a classic TOS-query schema (no poset attributes)."""
        return not self.partial_attrs

    def attribute(self, name: str) -> NumericAttribute | PosetAttribute:
        """Look an attribute up by name."""
        try:
            return self._names[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def validate_record(
        self, totals: Sequence[float], partials: Sequence[Hashable]
    ) -> None:
        """Raise :class:`SchemaError` when a record does not fit the schema."""
        if len(totals) != self.num_total:
            raise SchemaError(
                f"expected {self.num_total} totally-ordered values, got {len(totals)}"
            )
        if len(partials) != self.num_partial:
            raise SchemaError(
                f"expected {self.num_partial} partially-ordered values, got {len(partials)}"
            )
        for attr, value in zip(self.total_attrs, totals):
            # NaN poisons every comparison silently (all orderings are
            # False) and infinities break the normalised key space, so
            # both are rejected at the boundary.
            try:
                finite = isfinite(value)
            except TypeError:
                raise SchemaError(
                    f"non-numeric value {value!r} for attribute {attr.name!r}"
                ) from None
            if not finite:
                raise SchemaError(
                    f"non-finite value {value!r} for attribute {attr.name!r}"
                )
        for attr, value in zip(self.partial_attrs, partials):
            if value not in attr.poset:
                raise SchemaError(
                    f"value {value!r} is not in the domain of attribute {attr.name!r}"
                )

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema(total={self.num_total}, partial={self.num_partial})"
