"""Vectorized batch dominance backend (the ``kernel="numpy"`` option).

The pure-Python :class:`~repro.core.dominance.DominanceKernel` compares
one point pair at a time, which makes the skyline-buffer scan -- the
paper's dominant cost (Section 5, Figs. 10-12) -- O(|buffer|)
interpreted iterations per candidate.  This module keeps each skyline
buffer as a contiguous ``float64`` numpy matrix (grown incrementally,
with per-row poset-node-index side arrays) and answers the two hot
questions

* "is this candidate m-dominated by any buffer point?"  and
* "which buffer points does this candidate dominate?"

as single vectorized reductions.  Expensive original-domain comparisons
are memoized: per-poset-attribute relations are packed once into numpy
**bitset matrices** (built from the real native sets, the
:class:`~repro.posets.closure.IntervalClosure`, or the
:class:`~repro.posets.poset.Poset`, per the dataset's ``native_mode``)
so a native verdict is a handful of array lookups; domains too large to
square are served by an LRU pair-cache instead.

Counter fidelity
----------------
Both backends must stay interpretable against the paper's
comparison-count analysis, so every operation here charges
:class:`~repro.core.stats.ComparisonStats` for **exactly the logical
comparisons the Python backend would have performed**: key-bounded scans
charge up to the first dominator (or the whole ``key < bound`` prefix),
update scans charge each row up to the early-exit row, and native
counters split into ``native_numeric`` vs ``native_set``/``native_closure``
per pair exactly as :meth:`DominanceKernel.native_dominates` does.  The
randomized parity suite (``tests/test_batch_kernel.py``) asserts
identical answer sequences *and* identical counter bundles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.dominance import DominanceKernel
from repro.core.schema import Schema
from repro.core.stats import ComparisonStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.mapping import DomainMapping
    from repro.transform.point import Point

__all__ = ["BatchDominanceKernel", "SkylineBuffer", "batch_bnl_passes"]


# ---------------------------------------------------------------------------
# Bitset helpers
# ---------------------------------------------------------------------------
# Largest poset domain whose relation matrices are additionally kept as
# unpacked bool arrays (n x n bytes each) for single-gather vectorized
# lookups; beyond this only the 8x-smaller packed bitsets are stored.
_UNPACK_NODES = 2048


def _bits_rows(bits: np.ndarray, rows: np.ndarray, j: int) -> np.ndarray:
    """Bit ``(rows[k], j)`` of a packed (n, ceil(n/8)) matrix, as bools."""
    return ((bits[rows, j >> 3] >> (7 - (j & 7))) & 1).astype(bool)


def _bits_cols(bits: np.ndarray, i: int, cols: np.ndarray) -> np.ndarray:
    """Bit ``(i, cols[k])`` of a packed matrix, as bools."""
    row = bits[i]
    return ((row[cols >> 3] >> (7 - (cols & 7))) & 1).astype(bool)


class _AttrRelation:
    """Memoized ``(ge, gt)`` node-pair relations of one poset attribute.

    ``ge(i, j)`` is the non-strict original-domain relation ("value i is
    at least as good as value j"): set containment ``set_j <= set_i`` for
    set-valued attributes, ``i == j or i reaches j`` otherwise.
    ``gt(i, j)`` is the strict part.  Domains with at most
    ``max_bitset_nodes`` values are packed into two n x ceil(n/8) uint8
    bitset matrices; larger domains fall back to an LRU pair-cache over
    the scalar comparison (so repeated pairs are still O(1)).
    """

    __slots__ = ("mode", "n", "ge_bits", "gt_bits", "ge_bool", "gt_bool",
                 "ge_boolT", "gt_boolT", "_ge_ints", "_gt_ints", "_sets",
                 "_sizes", "_closure", "_cache", "_cache_cap")

    def __init__(
        self,
        mapping: "DomainMapping",
        closure,
        max_bitset_nodes: int,
        pair_cache_size: int,
    ) -> None:
        attr = mapping.attribute
        self.n = n = len(attr.poset)
        self._cache: OrderedDict[tuple[int, int], tuple[bool, bool]] = OrderedDict()
        self._cache_cap = pair_cache_size
        self.ge_bits = None
        self.gt_bits = None
        self.ge_bool = None
        self.gt_bool = None
        self.ge_boolT = None
        self.gt_boolT = None
        self._ge_ints = None
        self._gt_ints = None
        self._sets = None
        self._sizes = None
        self._closure = None
        if closure is not None:
            self.mode = "closure"
            self._closure = closure
        elif attr.set_domain is not None:
            self.mode = "set"
            dom = attr.set_domain
            self._sets = tuple(dom.set_of_ix(i) for i in range(n))
            self._sizes = tuple(len(s) for s in self._sets)
        else:
            self.mode = "reach"
            # The interval closure over the mapping's own forest is an
            # exact reachability index (ABJ'89), so its verdicts match
            # Poset.dominates_ix while building in vectorized passes.
            self._closure = mapping.closure
        if n <= max_bitset_nodes:
            self._build_bits()

    # ------------------------------------------------------------------
    def _build_bits(self) -> None:
        n = self.n
        if self.mode == "set":
            # Membership-matrix route: |a & b| == |b|  <=>  b <= a.
            index: dict = {}
            for s in self._sets:
                for item in s:
                    if item not in index:
                        index[item] = len(index)
            members = np.zeros((n, max(1, len(index))), dtype=np.float32)
            for i, s in enumerate(self._sets):
                for item in s:
                    members[i, index[item]] = 1.0
            inter = members @ members.T
            sizes = np.asarray(self._sizes, dtype=np.float32)
            ge = inter == sizes[None, :]
            gt = ge & (sizes[:, None] > sizes[None, :])
        else:
            closure = self._closure
            posts = np.asarray(
                [closure.encoding.interval_ix(i)[1] for i in range(n)],
                dtype=np.int64,
            )
            covers = np.zeros((n, n), dtype=bool)
            for i in range(n):
                row = covers[i]
                for lo, hi in closure.intervals_ix(i):
                    row |= (posts >= lo) & (posts <= hi)
            eye = np.eye(n, dtype=bool)
            gt = covers & ~eye
            ge = gt | eye
        self.ge_bits = np.packbits(ge, axis=1)
        self.gt_bits = np.packbits(gt, axis=1)
        if n <= _UNPACK_NODES:
            # Unpacked bool matrices (and their transposes) for the
            # vectorized gathers: indexing a contiguous *row* and then
            # fancy-gathering from the resulting 1-D view is ~3x cheaper
            # than a 2-D fancy index, so `rows` reads the transpose and
            # `cols` the original.
            self.ge_bool = np.ascontiguousarray(ge)
            self.gt_bool = np.ascontiguousarray(gt)
            self.ge_boolT = np.ascontiguousarray(ge.T)
            self.gt_boolT = np.ascontiguousarray(gt.T)
        # Arbitrary-precision row masks (bit j of row i = relation(i, j))
        # for the scalar path: `(mask >> j) & 1` is a few tens of ns,
        # far cheaper than indexing a numpy scalar out of the packed
        # matrix.  The vectorized paths keep using the packed matrices.
        self._ge_ints = self._row_ints(ge)
        self._gt_ints = self._row_ints(gt)

    @staticmethod
    def _row_ints(rel: np.ndarray) -> list[int]:
        n = rel.shape[1]
        packed = np.packbits(rel[:, ::-1], axis=1)
        shift = packed.shape[1] * 8 - n
        data = packed.tobytes()
        width = packed.shape[1]
        return [
            int.from_bytes(data[i * width : (i + 1) * width], "big") >> shift
            for i in range(rel.shape[0])
        ]

    def _pair_slow(self, i: int, j: int) -> tuple[bool, bool]:
        if self.mode == "set":
            sp, sq = self._sets[i], self._sets[j]
            ge = sq <= sp
            return ge, ge and self._sizes[i] > self._sizes[j]
        gt = self._closure.reachable_ix(i, j)
        return gt or i == j, gt

    # ------------------------------------------------------------------
    def pair(self, i: int, j: int) -> tuple[bool, bool]:
        """Scalar ``(ge, gt)`` for one node-index pair (memoized)."""
        ints = self._ge_ints
        if ints is not None:
            if not (ints[i] >> j) & 1:
                return False, False
            return True, bool((self._gt_ints[i] >> j) & 1)
        cache = self._cache
        key = (i, j)
        hit = cache.get(key)
        if hit is not None:
            # The memo may be shared by concurrent per-query kernels; a
            # concurrent eviction between get() and move_to_end() only
            # loses the recency bump, never the (pure) verdict.
            try:
                cache.move_to_end(key)
            except KeyError:
                pass
            return hit
        verdict = self._pair_slow(i, j)
        cache[key] = verdict
        if len(cache) > self._cache_cap:
            cache.popitem(last=False)
        return verdict

    def rows(self, rows_pix: np.ndarray, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(ge, gt)`` of many row nodes vs one target node."""
        if self.ge_boolT is not None:
            return self.ge_boolT[j][rows_pix], self.gt_boolT[j][rows_pix]
        if self.ge_bits is not None:
            ge = _bits_rows(self.ge_bits, rows_pix, j)
            gt = _bits_rows(self.gt_bits, rows_pix, j)
            return ge, gt
        out = [self.pair(int(i), j) for i in rows_pix]
        if not out:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        arr = np.asarray(out, dtype=bool)
        return arr[:, 0], arr[:, 1]

    def cols(self, i: int, cols_pix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(ge, gt)`` of one source node vs many row nodes."""
        if self.ge_bool is not None:
            return self.ge_bool[i][cols_pix], self.gt_bool[i][cols_pix]
        if self.ge_bits is not None:
            ge = _bits_cols(self.ge_bits, i, cols_pix)
            gt = _bits_cols(self.gt_bits, i, cols_pix)
            return ge, gt
        out = [self.pair(i, int(j)) for j in cols_pix]
        if not out:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        arr = np.asarray(out, dtype=bool)
        return arr[:, 0], arr[:, 1]


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------
class BatchDominanceKernel(DominanceKernel):
    """Drop-in :class:`DominanceKernel` with vectorized buffer operations.

    The scalar API (``m_dominates``, ``native_dominates``,
    ``compare_dominance``, ``full_dominates``) keeps working -- native
    comparisons are answered through the bitset memo with identical
    counters -- so algorithms and queries without a dedicated batch path
    run unchanged.  Algorithms with a batch path obtain vectorized
    skyline buffers from :meth:`new_buffer`.

    Parameters
    ----------
    mappings:
        The dataset's per-poset-attribute
        :class:`~repro.transform.mapping.DomainMapping` objects, from
        which the relation memo is built.
    max_bitset_nodes:
        Largest poset domain that gets a packed n x n bitset matrix
        (quadratic space); larger domains use the LRU pair-cache.
    pair_cache_size:
        Capacity of the LRU pair-cache used beyond the bitset limit.
    """

    is_batch = True

    __slots__ = ("_mappings", "_relations", "_max_bitset_nodes", "_pair_cache_size")

    def __init__(
        self,
        schema: Schema,
        stats: ComparisonStats | None = None,
        faithful_gate: bool = False,
        closures: tuple | None = None,
        mappings: tuple = (),
        max_bitset_nodes: int = 4096,
        pair_cache_size: int = 1 << 20,
    ) -> None:
        super().__init__(schema, stats, faithful_gate, closures)
        self._mappings = tuple(mappings)
        self._relations: tuple[_AttrRelation, ...] | None = None
        self._max_bitset_nodes = max_bitset_nodes
        self._pair_cache_size = pair_cache_size

    # ------------------------------------------------------------------
    def relations(self) -> tuple[_AttrRelation, ...]:
        """The per-attribute relation memo (built on first use)."""
        rels = self._relations
        if rels is None:
            closures = self._closures or (None,) * len(self._mappings)
            rels = tuple(
                _AttrRelation(
                    mapping, closure, self._max_bitset_nodes, self._pair_cache_size
                )
                for mapping, closure in zip(self._mappings, closures)
            )
            self._relations = rels
        return rels

    def warm(self) -> None:
        """Force the relation memo to exist (offline build, like indexes)."""
        self.relations()

    def new_buffer(self) -> "SkylineBuffer":
        """A fresh vectorized skyline buffer bound to this kernel."""
        return SkylineBuffer(self)

    @staticmethod
    def point_array(point: "Point") -> np.ndarray:
        """The point's vector as a cached float64 array."""
        arr = point._arr
        if arr is None:
            arr = point._arr = np.asarray(point.vector, dtype=np.float64)
        return arr

    # ------------------------------------------------------------------
    # Scalar native dominance through the memo (identical counters)
    # ------------------------------------------------------------------
    def native_dominates(self, p: "Point", q: "Point") -> bool:
        nt = self._num_total
        pv, qv = p.vector, q.vector
        stats = self.stats
        strict = False
        for k in range(nt):
            a, b = pv[k], qv[k]
            if a > b:
                stats.native_numeric += 1
                return False
            if a < b:
                strict = True
        if not self._posets:
            stats.native_numeric += 1
            return strict
        if self._closures is not None:
            stats.native_closure += 1
        else:
            stats.native_set += 1
        ppix, qpix = p.pix, q.pix
        rels = self._relations
        if rels is None:
            rels = self.relations()
        for k, rel in enumerate(rels):
            # Inlined rel.pair() fast path: the int-bitmask probes avoid
            # a method call and tuple allocation per attribute, which is
            # most of this function's cost on the BNL scalar prefix.
            ge_ints = rel._ge_ints
            i, j = ppix[k], qpix[k]
            if ge_ints is not None:
                if not (ge_ints[i] >> j) & 1:
                    return False
                if not strict and (rel._gt_ints[i] >> j) & 1:
                    strict = True
            else:
                ge, gt = rel.pair(i, j)
                if not ge:
                    return False
                if gt:
                    strict = True
        return strict

    def compare_native_tail(self, x: "Point", y: "Point") -> int:
        """The original-domain tail of ``compare_dominance`` (Fig. 6
        steps 5-9), applied when m-dominance was inconclusive.  The
        caller accounts for the m-dominance part of the comparison."""
        x_cat, y_cat = x.category, y.category
        if self.faithful_gate:
            if not x_cat.completely_covering and not y_cat.completely_covered:
                if self.native_dominates(y, x):
                    return 1
                if self.native_dominates(x, y):
                    return -1
            return 0
        if not y_cat.completely_covering and not x_cat.completely_covered:
            if self.native_dominates(y, x):
                return 1
        if not x_cat.completely_covering and not y_cat.completely_covered:
            if self.native_dominates(x, y):
                return -1
        return 0


# ---------------------------------------------------------------------------
# Vectorized dominance masks over transposed row blocks
# ---------------------------------------------------------------------------
# All mask kernels work on *transposed* buffers -- ``Vt`` has one
# contiguous row per transformed dimension -- and fold column-wise 1-D
# comparisons against Python-float scalars.  At the few-hundred-row
# block sizes these scans see, a handful of contiguous 1-D ufunc calls
# is several times cheaper than the equivalent 2-D elementwise compare
# plus axis-1 reduction (whose fixed setup cost dominates).


def _m_le_both(Vt: np.ndarray, wvec) -> tuple[np.ndarray, np.ndarray]:
    """``(row <= w everywhere, row >= w everywhere)`` per column block."""
    w0 = wvec[0]
    col = Vt[0]
    le = col <= w0
    ge = col >= w0
    for k in range(1, len(wvec)):
        col = Vt[k]
        wk = wvec[k]
        le = le & (col <= wk)
        ge = ge & (col >= wk)
    return le, ge


def _native_masks_both(
    kernel: BatchDominanceKernel,
    Vt: np.ndarray,
    Pt: np.ndarray,
    wvec,
    wpix: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(dom1, fail1, dom2, fail2)`` per row, both native directions.

    ``dom1``: does each row dominate the target ``w``?  ``dom2``: does
    the target dominate each row?  The ``fail`` masks flag rows whose
    comparison already failed on the totally-ordered prefix (those are
    charged as ``native_numeric``).  The two directions share all totals
    comparisons: ``any(T < wt)`` -- the strictness witness of ``dom1``
    -- is exactly ``~all(T >= wt)``, the failure mask of ``dom2``.
    """
    nt = kernel._num_total
    n = Vt.shape[1]
    if nt:
        w0 = wvec[0]
        col = Vt[0]
        le1 = col <= w0
        le2 = col >= w0
        for k in range(1, nt):
            col = Vt[k]
            wk = wvec[k]
            le1 = le1 & (col <= wk)
            le2 = le2 & (col >= wk)
        fail1 = ~le1
        fail2 = ~le2
        lt1 = fail2  # some coordinate strictly better in the row
        lt2 = fail1
    else:
        le1 = le2 = np.ones(n, dtype=bool)
        lt1 = lt2 = fail1 = fail2 = np.zeros(n, dtype=bool)
    rels = kernel.relations()
    if not rels:
        return le1 & lt1, fail1, le2 & lt2, fail2
    dom1 = le1
    dom2 = le2
    gt1_any = lt1
    gt2_any = lt2
    for k, rel in enumerate(rels):
        rows_pix = Pt[k]
        j = wpix[k]
        ge1, gt1 = rel.rows(rows_pix, j)
        ge2, gt2 = rel.cols(j, rows_pix)
        dom1 = dom1 & ge1
        dom2 = dom2 & ge2
        gt1_any = gt1_any | gt1
        gt2_any = gt2_any | gt2
    return dom1 & gt1_any, fail1, dom2 & gt2_any, fail2


# ---------------------------------------------------------------------------
# Skyline buffer
# ---------------------------------------------------------------------------
# Below this many rows a buffer scan runs the exact scalar loop of the
# Python backend (same kernel methods, same counters): numpy's fixed
# per-expression overhead (~1us each, ~10 expressions per scan) only
# amortizes once a scan covers a few dozen rows.
_SCALAR_ROWS = 24

# Scalar head of every key-bounded pruning scan: rows scanned as a plain
# Python loop (with its sub-microsecond early exit) before the vectorized
# blocks take over.  Pruning hits cluster at the front of a key-sorted
# buffer, so most probes never reach the numpy expressions.
_SCALAR_HEAD = 24


class SkylineBuffer:
    """A skyline buffer backed by contiguous numpy arrays.

    Rows mirror ``self.points`` (the ordered Python point list the
    algorithms emit from).  Storage is *transposed*: ``_Vt[k]`` is the
    contiguous ``k``-th transformed coordinate of every row (so the
    column-wise mask kernels stream contiguous memory), ``_keys`` the
    BBS priorities, ``_Pt[k]`` the node indices of the ``k``-th poset
    attribute, and ``_cing``/``_ced`` the per-row category bits that
    gate the native tail of ``CompareDominance``.  All operations charge
    the kernel's :class:`ComparisonStats` exactly like the
    Python-backend scans they replace (see the module docstring).
    """

    __slots__ = (
        "kernel", "stats", "points", "_Vt", "_keys", "_Pt",
        "_cing", "_ced", "_n",
    )

    def __init__(self, kernel: BatchDominanceKernel, capacity: int = 32) -> None:
        self.kernel = kernel
        self.stats = kernel.stats
        self.points: list[Point] = []
        dims = kernel.schema.transformed_dimensions
        nposets = len(kernel._posets)
        capacity = max(4, capacity)
        self._Vt = np.empty((dims, capacity), dtype=np.float64)
        # The unused key tail stays +inf so key-bound searches can
        # binary-search the whole array without slicing out a view.
        self._keys = np.full(capacity, np.inf, dtype=np.float64)
        self._Pt = np.empty((nposets, capacity), dtype=np.int64)
        self._cing = np.empty(capacity, dtype=bool)
        self._ced = np.empty(capacity, dtype=bool)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator["Point"]:
        return iter(self.points)

    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = self._Vt.shape[1]
        if need <= cap:
            return
        new = max(need, cap * 2)
        pad = new - cap
        self._Vt = np.concatenate(
            [self._Vt, np.empty((self._Vt.shape[0], pad), dtype=np.float64)],
            axis=1,
        )
        self._keys = np.concatenate(
            [self._keys, np.full(pad, np.inf, dtype=np.float64)]
        )
        self._Pt = np.concatenate(
            [self._Pt, np.empty((self._Pt.shape[0], pad), dtype=np.int64)],
            axis=1,
        )
        self._cing = np.concatenate([self._cing, np.empty(pad, dtype=bool)])
        self._ced = np.concatenate([self._ced, np.empty(pad, dtype=bool)])

    def append(self, point: "Point") -> None:
        """Add one point at the end (callers append in key order)."""
        n = self._n
        self._grow(n + 1)
        self._Vt[:, n] = self.kernel.point_array(point)
        self._keys[n] = point.key
        if self._Pt.shape[0]:
            self._Pt[:, n] = point.pix
        cat = point.category
        self._cing[n] = cat.completely_covering
        self._ced[n] = cat.completely_covered
        self.points.append(point)
        self._n = n + 1

    def _delete_rows(self, rows: list[int]) -> list["Point"]:
        """Remove rows (sorted ascending); returns the removed points."""
        if not rows:
            return []
        points = self.points
        victims = [points[i] for i in rows]
        n = self._n
        keep = np.ones(n, dtype=bool)
        keep[rows] = False
        keep_idx = np.nonzero(keep)[0]
        m = len(keep_idx)
        self._Vt[:, :m] = self._Vt[:, keep_idx]
        self._keys[:m] = self._keys[keep_idx]
        self._keys[m:n] = np.inf
        if self._Pt.shape[0]:
            self._Pt[:, :m] = self._Pt[:, keep_idx]
        self._cing[:m] = self._cing[keep_idx]
        self._ced[:m] = self._ced[keep_idx]
        self.points = [points[i] for i in keep_idx]
        self._n = m
        return victims

    # ------------------------------------------------------------------
    # Key-bounded m-dominance pruning (the BBS-family hot path)
    # ------------------------------------------------------------------
    def _m_prunes(self, wvec, bound: float, counter: str) -> bool:
        n = self._n
        if n == 0:
            return False
        prefix = int(self._keys.searchsorted(bound))
        if prefix == 0:
            return False
        stats = self.stats
        d = len(wvec)
        # Hybrid scan: most probes are resolved by a front-row dominator
        # (the buffer is key-sorted), so the first rows run as a plain
        # Python loop with sub-microsecond early exits; only scans that
        # survive it pay the fixed cost of the vectorized blocks.
        head = prefix if prefix <= _SCALAR_HEAD else _SCALAR_HEAD
        points = self.points
        if d == 4:  # the common shape: unrolled, short-circuits on dim 0
            w0, w1, w2, w3 = wvec
            for row in range(head):
                pv = points[row].vector
                if pv[0] <= w0 and pv[1] <= w1 and pv[2] <= w2 and pv[3] <= w3:
                    setattr(stats, counter, getattr(stats, counter) + row + 1)
                    return True
        else:
            for row in range(head):
                pv = points[row].vector
                le = True
                for k in range(d):
                    if pv[k] > wvec[k]:
                        le = False
                        break
                if le:
                    setattr(stats, counter, getattr(stats, counter) + row + 1)
                    return True
        if head == prefix:
            setattr(stats, counter, getattr(stats, counter) + prefix)
            return False
        # Within the ``key < bound`` prefix, a row that is <= the probe
        # everywhere must be strictly better somewhere -- an identical
        # vector would have an identical key -- so the fold needs no
        # strictness term.  Geometrically growing blocks: dominators
        # cluster at the front of a key-sorted buffer, so most probes
        # resolve within the first block.
        Vt = self._Vt
        w0 = wvec[0]
        start = head
        block = 64
        while start < prefix:
            end = min(prefix, start + block)
            dom = Vt[0][start:end] <= w0
            for k in range(1, d):
                dom = dom & (Vt[k][start:end] <= wvec[k])
            hits = dom.nonzero()[0]
            if hits.size:
                charged = start + int(hits[0]) + 1
                setattr(stats, counter, getattr(stats, counter) + charged)
                return True
            start = end
            block = prefix  # two-stage: first block, then the remainder
        setattr(stats, counter, getattr(stats, counter) + prefix)
        return False

    def prunes_point(self, point: "Point") -> bool:
        """Key-bounded scan: is ``point`` m-dominated by a buffer row?"""
        return self._m_prunes(point.vector, point.key, "m_dominance_point")

    def prunes_mins(self, mins: tuple[float, ...], bound: float) -> bool:
        """Key-bounded scan: is an MBR's best corner m-dominated?"""
        return self._m_prunes(mins, bound, "m_dominance_mbr")

    def filters(self, point: "Point") -> bool:
        """Unbounded scan (SFS window): any row m-dominating ``point``?"""
        n = self._n
        if n == 0:
            return False
        if n <= _SCALAR_ROWS:
            kernel = self.kernel
            for p in self.points:
                if kernel.m_dominates(p, point):
                    return True
            return False
        wvec = point.vector
        wkey = point.key
        stats = self.stats
        Vt = self._Vt
        keys = self._keys
        points = self.points
        d = len(wvec)
        w0 = wvec[0]
        start = 0
        block = 64
        while start < n:
            end = min(n, start + block)
            dom = Vt[0][start:end] <= w0
            for k in range(1, d):
                dom = dom & (Vt[k][start:end] <= wvec[k])
            for h in dom.nonzero()[0].tolist():
                row = start + h
                # ``le`` plus any difference (witnessed by the key or,
                # under float rounding, the vector itself) is strict
                # m-dominance; an identical vector is not.
                if keys[row] != wkey or points[row].vector != wvec:
                    stats.m_dominance_point += row + 1
                    return True
            start = end
            block = n  # two-stage: first block, then the remainder
        stats.m_dominance_point += n
        return False

    # ------------------------------------------------------------------
    # Native UpdateSkylines (BBS+ Fig. 3; SDC comparison ablation)
    # ------------------------------------------------------------------
    def update_native(
        self, point: "Point", count_calls: bool = False
    ) -> tuple[bool, list["Point"]]:
        """Scan rows in order with native dominance both ways.

        Stops at the first row dominating ``point`` (returned flag);
        rows before the stop that ``point`` dominates are deleted and
        returned.  With ``count_calls`` each examined row is also charged
        one ``compare_dominance_calls`` (the SDC ablation's accounting).
        """
        n = self._n
        if n == 0:
            return False, []
        kernel = self.kernel
        stats = self.stats
        if n <= _SCALAR_ROWS:
            # Exact Python-backend loop (deletion timing does not change
            # which original rows get examined, so collecting victim row
            # indices and compacting once at the end is equivalent).
            points = self.points
            stopped = False
            victims_rows: list[int] = []
            for j in range(n):
                if count_calls:
                    stats.compare_dominance_calls += 1
                if kernel.native_dominates(points[j], point):
                    stopped = True
                    break
                if kernel.native_dominates(point, points[j]):
                    victims_rows.append(j)
            return stopped, self._delete_rows(victims_rows)
        dom1, fail1, dom2, fail2 = _native_masks_both(
            kernel, self._Vt[:, :n], self._Pt[:, :n], point.vector, point.pix
        )
        hits1 = dom1.nonzero()[0]
        stopped = hits1.size > 0
        stop = int(hits1[0]) if stopped else n
        examined = stop + 1 if stopped else n
        upto = stop if stopped else n  # rows that also ran the reverse test
        if kernel._posets:
            fails = int(np.count_nonzero(fail1[:examined]))
            fails += int(np.count_nonzero(fail2[:upto]))
            expensive = examined + upto - fails
            stats.native_numeric += fails
            if kernel._closures is not None:
                stats.native_closure += expensive
            else:
                stats.native_set += expensive
        else:
            stats.native_numeric += examined + upto
        if count_calls:
            stats.compare_dominance_calls += examined
        victims = self._delete_rows(dom2[:upto].nonzero()[0].tolist())
        return stopped, victims

    # ------------------------------------------------------------------
    # CompareDominance scans (SDC buckets, SDC+ local/definite sets)
    # ------------------------------------------------------------------
    def _compare_scan(
        self, point: "Point", deletes: bool
    ) -> tuple[bool, list["Point"]]:
        n = self._n
        if n == 0:
            return False, []
        kernel = self.kernel
        stats = self.stats
        if n <= _SCALAR_ROWS or kernel.faithful_gate:
            # Exact Python-backend loop (also serves the faithful-gate
            # ablation, whose call pattern is not worth vectorizing).
            points = self.points
            stopped = False
            victims_rows: list[int] = []
            for j in range(n):
                ret = kernel.compare_dominance(point, points[j])
                if ret == 1:
                    stopped = True
                    break
                if ret == -1 and deletes:
                    victims_rows.append(j)
            if not deletes:
                return stopped, []
            return stopped, self._delete_rows(victims_rows)
        wvec = point.vector
        Vt = self._Vt[:, :n]
        row_le, row_ge = _m_le_both(Vt, wvec)
        row_m_dom = row_le & ~row_ge  # compare_dominance == 1 by m-dominance
        stop = int(row_m_dom.argmax()) if row_m_dom.any() else n
        # Native tail over the m-undecided rows, Fig. 6 gates evaluated
        # from the stored per-row category bits (the candidate side of
        # each gate is a scalar).
        U = (~(row_le | row_ge)).nonzero()[0]
        native_victims = None
        if U.size:
            x_cat = point.category
            g1 = None if x_cat.completely_covered else ~self._cing[U]
            g2 = None if x_cat.completely_covering else ~self._ced[U]
            if g1 is not None or g2 is not None:
                dom1, fail1, dom2, fail2 = _native_masks_both(
                    kernel, Vt[:, U], self._Pt[:, :n][:, U], wvec, point.pix
                )
                if g1 is not None:
                    sp = U[g1 & dom1]
                    if sp.size and int(sp[0]) < stop:
                        # Scan stops on this native verdict: its own
                        # call is charged, its reverse test is not.
                        stop = int(sp[0])
                        charged1 = (U <= stop) & g1
                    else:
                        charged1 = (U < stop) & g1
                    n1 = int(np.count_nonzero(charged1))
                    f1 = int(np.count_nonzero(charged1 & fail1))
                else:
                    n1 = f1 = 0
                if g2 is not None:
                    charged2 = (U < stop) & g2
                    n2 = int(np.count_nonzero(charged2))
                    f2 = int(np.count_nonzero(charged2 & fail2))
                    if deletes:
                        native_victims = U[charged2 & dom2]
                else:
                    n2 = f2 = 0
                calls = n1 + n2
                if calls:
                    if kernel._posets:
                        f = f1 + f2
                        stats.native_numeric += f
                        if kernel._closures is not None:
                            stats.native_closure += calls - f
                        else:
                            stats.native_set += calls - f
                    else:
                        stats.native_numeric += calls
        stopped = stop < n
        examined = stop + 1 if stopped else n
        stats.compare_dominance_calls += examined
        stats.m_dominance_point += 2 * examined
        if not deletes:
            return stopped, []
        upto = stop if stopped else n
        rows = (row_ge & ~row_le)[:upto].nonzero()[0].tolist()
        if native_victims is not None and native_victims.size:
            rows = sorted(rows + native_victims.tolist())
        return stopped, self._delete_rows(rows)

    def update_compare(self, point: "Point") -> tuple[bool, list["Point"]]:
        """``CompareDominance`` scan with deletions (SDC / SDC+ local
        sets): stops at the first row dominating ``point``; rows before
        the stop that ``point`` dominates are deleted and returned."""
        return self._compare_scan(point, deletes=True)

    def scan_compare(self, point: "Point") -> bool:
        """``CompareDominance`` scan without deletions (SDC+ definite
        sets): only asks whether some row dominates ``point``."""
        return self._compare_scan(point, deletes=False)[0]

    # ------------------------------------------------------------------
    def absorb(self, other: "SkylineBuffer") -> None:
        """Key-merge ``other`` into this buffer (SDC+ stratum end).

        Replicates the Python backend's stratum merge: a stable merge by
        key when the incoming keys interleave, a plain extension
        otherwise (ties keep existing rows first, like ``heapq.merge``).
        """
        n1, n2 = self._n, other._n
        if n2 == 0:
            return
        if n1 and other._keys[0] < self._keys[n1 - 1]:
            keys = np.concatenate([self._keys[:n1], other._keys[:n2]])
            order = np.argsort(keys, kind="stable")
            Vt = np.concatenate([self._Vt[:, :n1], other._Vt[:, :n2]], axis=1)
            Pt = np.concatenate([self._Pt[:, :n1], other._Pt[:, :n2]], axis=1)
            cing = np.concatenate([self._cing[:n1], other._cing[:n2]])
            ced = np.concatenate([self._ced[:n1], other._ced[:n2]])
            self._grow(n1 + n2)
            self._Vt[:, : n1 + n2] = Vt[:, order]
            self._keys[: n1 + n2] = keys[order]
            if self._Pt.shape[0]:
                self._Pt[:, : n1 + n2] = Pt[:, order]
            self._cing[: n1 + n2] = cing[order]
            self._ced[: n1 + n2] = ced[order]
            merged = self.points + other.points
            self.points = [merged[i] for i in order]
        else:
            self._grow(n1 + n2)
            self._Vt[:, n1 : n1 + n2] = other._Vt[:, :n2]
            self._keys[n1 : n1 + n2] = other._keys[:n2]
            if self._Pt.shape[0]:
                self._Pt[:, n1 : n1 + n2] = other._Pt[:, :n2]
            self._cing[n1 : n1 + n2] = other._cing[:n2]
            self._ced[n1 : n1 + n2] = other._ced[:n2]
            self.points = self.points + other.points
        self._n = n1 + n2

    def extend(self, points: list["Point"]) -> None:
        """Bulk-append ``points`` with one array fill per column family.

        Equivalent to ``for p in points: self.append(p)`` (same rows,
        same order, no comparisons charged either way) but promotes a
        whole batch -- a stratum buffer at an SDC+ stratum boundary, a
        shard-local skyline entering the cross-shard merge -- without a
        per-point Python loop over five array writes each.
        """
        m = len(points)
        if m == 0:
            return
        n = self._n
        self._grow(n + m)
        kernel = self.kernel
        block = np.empty((m, self._Vt.shape[0]), dtype=np.float64)
        for i, p in enumerate(points):
            block[i] = kernel.point_array(p)
        self._Vt[:, n : n + m] = block.T
        self._keys[n : n + m] = [p.key for p in points]
        if self._Pt.shape[0]:
            self._Pt[:, n : n + m] = np.array(
                [p.pix for p in points], dtype=np.int64
            ).T
        self._cing[n : n + m] = [p.category.completely_covering for p in points]
        self._ced[n : n + m] = [p.category.completely_covered for p in points]
        self.points.extend(points)
        self._n = n + m

    @classmethod
    def from_points(
        cls, kernel: BatchDominanceKernel, points: list["Point"]
    ) -> "SkylineBuffer":
        """A buffer seeded from ``points`` in one bulk fill."""
        buffer = cls(kernel, capacity=max(4, len(points)))
        buffer.extend(points)
        return buffer


# ---------------------------------------------------------------------------
# Batch block-nested-loops
# ---------------------------------------------------------------------------
# Dominance tests a candidate answers through the kernel's scalar
# methods before its window scan switches to one bulk vectorized
# evaluation.  Candidates that die on the very first window rows never
# pay the fixed cost of the numpy expressions; everything else switches
# to the bulk pass quickly (profiles show most survivors scan deep).
_SCALAR_TESTS = 4

# First bulk chunk of a BNL window scan; survivors then evaluate the
# whole remaining window in one pass.
_BNL_CHUNK = 256


def batch_bnl_passes(
    points: list["Point"],
    kernel: BatchDominanceKernel,
    mode: str,
    window_size: int,
    stats: ComparisonStats,
    context=None,
) -> Iterator["Point"]:
    """Vectorized twin of :func:`repro.algorithms.bnl.bnl_passes`.

    ``mode`` is ``"m"`` (transformed-space m-dominance, the BNL+ first
    stage) or ``"native"`` (original-domain dominance).  Control flow,
    emission order and counters mirror the Python version exactly.  The
    window lives in positional matrices ``FV``/``Fpix`` that mirror the
    ``fresh`` list through every swap-pop, so each bulk evaluation is a
    zero-copy view of the live suffix.  A candidate's scan starts with
    ``_SCALAR_TESTS`` plain scalar kernel calls; after that both
    dominance directions against the remaining rows come from one
    vectorized pass.  When the candidate evicts nothing before its
    verdict (the overwhelmingly common case) the outcome and its exact
    comparison charges are reduced directly from the masks; an eviction
    is charged through the masks up to the evicted row, applied as the
    same swap-pop the Python loop performs, and the scan re-vectorizes
    from that position (verdicts depend only on the (candidate, row)
    pair, never on scan position, so recomputed masks agree).
    """
    if window_size < 1:
        from repro.exceptions import AlgorithmError

        raise AlgorithmError("window_size must be positive")
    if context is None:
        from repro.resilience.context import NULL_CONTEXT

        context = NULL_CONTEXT
    checkpoint = context.checkpoint
    guard_window = context.guard_window
    native = mode != "m"
    if native:
        scalar_dom = kernel.native_dominates
        if not kernel._posets:
            expensive = None
        elif kernel._closures is not None:
            expensive = "native_closure"
        else:
            expensive = "native_set"
    else:
        scalar_dom = kernel.m_dominates
        expensive = None
    nposets = len(kernel._posets)
    dims = kernel.schema.transformed_dimensions
    cap = 256
    FVt = np.empty((dims, cap), dtype=np.float64)
    FPt = np.empty((nposets, cap), dtype=np.int64)
    current = list(points)
    carried: list[list | None] = []  # [point, debt] or None
    while current:
        temp: list[Point] = []
        fresh: list[list] = []  # [point, overflow-count-at-insert]
        release_at = 0
        live_carried = len(carried)
        stats.tuples_scanned += len(current)
        for read_pos, r in enumerate(current, start=1):
            checkpoint()
            while release_at < len(carried):
                entry = carried[release_at]
                if entry is None:
                    release_at += 1
                elif entry[1] <= read_pos - 1:
                    yield entry[0]
                    carried[release_at] = None
                    live_carried -= 1
                    release_at += 1
                else:
                    break
            dominated = False
            # Carried entries: plain scalar comparisons (multi-pass
            # overflow only; the Python backend pays the same calls).
            for i in range(release_at, len(carried)):
                entry = carried[i]
                if entry is None:
                    continue
                w = entry[0]
                if scalar_dom(w, r):
                    dominated = True
                    break
                if scalar_dom(r, w):
                    carried[i] = None
                    live_carried -= 1
            if not dominated:
                # Window scan, scalar prefix.
                i = 0
                tests = 0
                while i < len(fresh) and tests < _SCALAR_TESTS:
                    w = fresh[i][0]
                    tests += 2
                    if scalar_dom(w, r):
                        dominated = True
                        break
                    if scalar_dom(r, w):
                        last = len(fresh) - 1
                        fresh[i] = fresh[last]
                        fresh.pop()
                        FVt[:, i] = FVt[:, last]
                        if nposets:
                            FPt[:, i] = FPt[:, last]
                        continue
                    i += 1
                # Bulk phase over the live window suffix (zero-copy
                # views of the positional matrices), in two stages: a
                # first chunk sized for the typical early death, then
                # the whole remainder.  Re-vectorizes after each
                # eviction: verdicts are pair-properties, so
                # recomputing over the compacted suffix stays exact.
                wvec = r.vector
                chunk = _BNL_CHUNK
                while not dominated and i < len(fresh):
                    nf = len(fresh)
                    m = nf if nf - i <= chunk else i + chunk
                    Vt = FVt[:, i:m]
                    if native:
                        dom1, fail1, dom2, fail2 = _native_masks_both(
                            kernel, Vt, FPt[:, i:m], wvec, r.pix
                        )
                    else:
                        le1, ge1 = _m_le_both(Vt, wvec)
                        dom1 = le1 & ~ge1
                        dom2 = ge1 & ~le1
                    hits = dom1.nonzero()[0]
                    stop = int(hits[0]) if hits.size else m - i
                    ev = dom2[:stop].nonzero()[0]
                    if ev.size == 0:
                        # No evictions before the verdict: scan order
                        # never changes, so the outcome and its charges
                        # follow from the masks directly.
                        if hits.size:
                            dominated = True
                            t1 = stop + 1
                            t2 = stop
                        else:
                            t1 = t2 = m - i
                        if not native:
                            stats.m_dominance_point += t1 + t2
                        elif expensive is None:
                            stats.native_numeric += t1 + t2
                        else:
                            fails = int(np.count_nonzero(fail1[:t1]))
                            fails += int(np.count_nonzero(fail2[:t2]))
                            stats.native_numeric += fails
                            setattr(
                                stats,
                                expensive,
                                getattr(stats, expensive) + t1 + t2 - fails,
                            )
                        if dominated:
                            break
                        i = m
                        chunk = nf  # survived the first chunk: rest at once
                        continue
                    # First eviction at relative row e: rows [0..e] ran
                    # both directions (no stop among them), then the
                    # Python loop swap-pops and retries the same
                    # position against the swapped-in tail entry.
                    e = int(ev[0])
                    if not native:
                        stats.m_dominance_point += 2 * (e + 1)
                    elif expensive is None:
                        stats.native_numeric += 2 * (e + 1)
                    else:
                        fails = int(np.count_nonzero(fail1[: e + 1]))
                        fails += int(np.count_nonzero(fail2[: e + 1]))
                        stats.native_numeric += fails
                        setattr(
                            stats,
                            expensive,
                            getattr(stats, expensive) + 2 * (e + 1) - fails,
                        )
                    pos = i + e
                    last = len(fresh) - 1
                    fresh[pos] = fresh[last]
                    fresh.pop()
                    FVt[:, pos] = FVt[:, last]
                    if nposets:
                        FPt[:, pos] = FPt[:, last]
                    i = pos
            if dominated:
                continue
            if len(fresh) + live_carried < window_size:
                guard_window(len(fresh) + live_carried + 1)
                fresh.append([r, len(temp)])
                nf = len(fresh)
                if nf > cap:
                    cap *= 2
                    FVt = np.concatenate([FVt, np.empty_like(FVt)], axis=1)
                    FPt = np.concatenate([FPt, np.empty_like(FPt)], axis=1)
                FVt[:, nf - 1] = kernel.point_array(r)
                if nposets:
                    FPt[:, nf - 1] = r.pix
                stats.window_inserts += 1
            else:
                temp.append(r)
        for i in range(release_at, len(carried)):
            entry = carried[i]
            if entry is not None:
                yield entry[0]
        carried = []
        for point, debt in fresh:
            if debt == 0:
                yield point
            else:
                carried.append([point, debt])
        current = temp
