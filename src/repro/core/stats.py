"""Operation counters shared by all algorithms.

The paper's analysis is phrased in comparison counts ("59% drop in actual
set-valued comparisons", "16% fewer m-dominance comparisons", I/O
optimality in node accesses).  Every dominance kernel, R-tree and
algorithm in this library therefore threads a :class:`ComparisonStats`
through its hot paths; the benchmark harness snapshots it at every emitted
answer to reconstruct the progressiveness curves deterministically,
independent of machine speed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ComparisonStats"]


@dataclass
class ComparisonStats:
    """Mutable counter bundle.

    Attributes
    ----------
    m_dominance_point:
        Point-vs-point m-dominance tests (two-integer interval compares
        plus totally-ordered compares on the transformed vectors).
    m_dominance_mbr:
        Point-vs-MBR m-dominance tests used for heap pruning.
    native_set:
        Original-domain dominance tests that touched at least one
        set-valued (or reachability) comparison -- the expensive kind.
    native_closure:
        Original-domain dominance tests answered through the compressed
        transitive closure (``native_mode="closure"``) -- exact but only
        a few integer comparisons each.
    native_numeric:
        Original-domain dominance tests resolved on the totally-ordered
        attributes alone (no poset attribute reached).
    compare_dominance_calls:
        Invocations of the ``CompareDominance`` routine (Fig. 6).
    node_accesses:
        R-tree nodes read (the paper's I/O proxy).
    page_misses:
        Node accesses that missed the attached buffer pool (only counted
        when a :class:`~repro.bench.costmodel.BufferPool` is attached).
    tuples_scanned:
        Records read sequentially by scan-based algorithms (BNL input
        passes) -- the sequential-I/O counterpart of ``node_accesses``.
    heap_pushes / heap_pops:
        Priority-queue traffic of the BBS-style traversals.
    window_inserts:
        Window insertions performed by block-nested-loops variants.
    kernel_fallbacks:
        Batch-kernel failures recovered by re-running the remaining work
        on the reference python kernel (see
        :mod:`repro.resilience.executor`); zero on every healthy query.
    filter_board_checks:
        Cross-shard filter-board tests performed by parallel workers
        (one Lemma 4.2 representative-vs-point Pareto test each; see
        :mod:`repro.parallel.board`).  Kept separate from
        ``m_dominance_point`` so the comparison-reduction benchmark can
        charge the filter honestly without inflating the algorithms'
        own dominance bill.
    filter_board_hits:
        Points eliminated by the filter board before they reached the
        shard-local algorithm (each saved an entire window/index scan).
    """

    m_dominance_point: int = 0
    m_dominance_mbr: int = 0
    native_set: int = 0
    native_closure: int = 0
    native_numeric: int = 0
    compare_dominance_calls: int = 0
    node_accesses: int = 0
    page_misses: int = 0
    tuples_scanned: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    window_inserts: int = 0
    kernel_fallbacks: int = 0
    filter_board_checks: int = 0
    filter_board_hits: int = 0

    def snapshot(self) -> dict[str, int]:
        """Immutable copy of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "ComparisonStats") -> None:
        """Add ``other``'s counters into this one.

        Raises :class:`ValueError` when ``other is self``: merging a
        bundle into itself silently doubles every counter, which happens
        in practice when the same object is passed both as a per-query
        ``stats=`` override and as a server-side aggregate.
        """
        if other is self:
            raise ValueError(
                "refusing to merge a ComparisonStats bundle into itself; "
                "pass distinct objects for the per-query override and the "
                "aggregate (double-counting guard)"
            )
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def add_snapshot(self, snapshot: dict[str, int]) -> None:
        """Add a :meth:`snapshot` dict (e.g. shipped from a worker
        process) into this bundle.  Unknown keys are ignored so bundles
        survive cross-version snapshots."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + snapshot.get(f.name, 0))

    def __iadd__(self, other: "ComparisonStats") -> "ComparisonStats":
        """``stats += other`` -- combine per-stratum/per-kernel bundles."""
        self.merge(other)
        return self

    @property
    def total_dominance_checks(self) -> int:
        """All point-level dominance work (m-dominance plus native)."""
        return (
            self.m_dominance_point
            + self.native_set
            + self.native_closure
            + self.native_numeric
        )

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return {name: value - earlier.get(name, 0) for name, value in self.snapshot().items()}

    def __str__(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name)}" for f in fields(self)]
        return "ComparisonStats(" + ", ".join(parts) + ")"
