"""The record model.

A :class:`Record` is a plain, immutable carrier of attribute values:
totally-ordered values in :attr:`Record.totals` and partially-ordered
values (poset domain values) in :attr:`Record.partials`, each in schema
order.  All derived information -- transformed vectors, dominance
categories, uncovered levels, native set representations -- lives on the
:class:`~repro.transform.dataset.Point` objects the transform layer builds
around records, so records stay cheap to create in bulk.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any, Optional

__all__ = ["Record"]


class Record:
    """One tuple of the input relation.

    Parameters
    ----------
    rid:
        A caller-chosen identifier (row number, primary key, ...).
    totals:
        Raw totally-ordered attribute values, in schema order.
    partials:
        Partially-ordered attribute values (poset domain values), in
        schema order.
    payload:
        Optional opaque object carried along (e.g. the full source row).
    """

    __slots__ = ("rid", "totals", "partials", "payload")

    def __init__(
        self,
        rid: Any,
        totals: tuple[float, ...] = (),
        partials: tuple[Hashable, ...] = (),
        payload: Optional[Any] = None,
    ) -> None:
        self.rid = rid
        self.totals = tuple(totals)
        self.partials = tuple(partials)
        self.payload = payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self.rid == other.rid
            and self.totals == other.totals
            and self.partials == other.partials
        )

    def __hash__(self) -> int:
        return hash((self.rid, self.totals, self.partials))

    def __repr__(self) -> str:
        return f"Record({self.rid!r}, totals={self.totals}, partials={self.partials})"
