"""Dominance kernel: native dominance, m-dominance, ``CompareDominance``.

Operates on the :class:`~repro.transform.point.Point` objects built by the
transform layer, which carry

* ``vector`` -- the normalised minimisation vector (totally-ordered
  coordinates first, then ``(low, n - post)`` per poset attribute), on
  which **m-dominance is exactly coordinate-wise Pareto dominance**;
* ``nsets`` / ``pix`` -- native set representations / poset node indices
  for the expensive original-domain comparisons;
* ``category`` -- the record's ``(covered, covering)`` dominance category.

``CompareDominance`` follows Fig. 6 of the paper: m-dominance first, and
only when that is inconclusive *and* Lemma 4.2 leaves room for a
native-only dominance does it fall back to the original domains.  One
deviation (see DESIGN.md): the original-domain checks here gate each
*direction* separately (``x`` natively dominating ``y`` is possible only
when ``x`` is partially covering and ``y`` partially covered -- and
symmetrically), whereas the figure gates both directions on the single
condition for the ``x``-dominates-``y`` direction, which can miss a
``(c,p)``/``(p,p)`` point natively dominating a ``(p,c)`` point.  The
paper-literal behaviour is available via ``faithful_gate=True`` and is
exercised by a regression test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.schema import Schema
from repro.core.stats import ComparisonStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.point import Point

__all__ = ["DominanceKernel"]


class DominanceKernel:
    """Schema-bound dominance comparisons with counters.

    Parameters
    ----------
    schema:
        The query schema; decides how many leading vector coordinates are
        totally ordered and which backend each poset attribute compares
        natively with (real sets when a
        :class:`~repro.posets.setvalued.SetValuedDomain` is attached,
        reachability otherwise).
    stats:
        Counter bundle shared with the calling algorithm.
    faithful_gate:
        Reproduce Fig. 6's single-direction gate in
        :meth:`compare_dominance` (for the regression test / ablation).
    closures:
        Optional per-poset-attribute
        :class:`~repro.posets.closure.IntervalClosure` objects.  When
        provided, original-domain comparisons are answered exactly
        through the compressed transitive closure (a few integer
        comparisons) instead of set containment / reachability -- the
        "different domain mapping function" tradeoff of the paper's
        future work.
    """

    __slots__ = (
        "schema",
        "stats",
        "faithful_gate",
        "_num_total",
        "_set_modes",
        "_posets",
        "_closures",
    )

    def __init__(
        self,
        schema: Schema,
        stats: ComparisonStats | None = None,
        faithful_gate: bool = False,
        closures: tuple | None = None,
    ) -> None:
        self.schema = schema
        self.stats = stats if stats is not None else ComparisonStats()
        self.faithful_gate = faithful_gate
        self._num_total = schema.num_total
        self._set_modes = tuple(a.set_domain is not None for a in schema.partial_attrs)
        self._posets = tuple(a.poset for a in schema.partial_attrs)
        if closures is not None and len(closures) != len(self._posets):
            from repro.exceptions import SchemaError

            raise SchemaError("one closure per poset attribute required")
        self._closures = closures

    # ------------------------------------------------------------------
    # m-dominance (transformed space)
    # ------------------------------------------------------------------
    def m_dominates(self, p: "Point", q: "Point") -> bool:
        """Whether ``p`` m-dominates ``q`` (Section 4.2).

        Pure Pareto dominance on the normalised vectors: every coordinate
        ``<=`` and at least one ``<``.
        """
        self.stats.m_dominance_point += 1
        strict = False
        for a, b in zip(p.vector, q.vector):
            if a > b:
                return False
            if a < b:
                strict = True
        return strict

    def m_dominates_mins(self, p: "Point", mins: tuple[float, ...]) -> bool:
        """Whether ``p`` m-dominates every possible point of an MBR.

        ``mins`` is the MBR's best corner.  Strictness against the corner
        is required so that transformed-space duplicates of ``p`` are
        never pruned (they are legitimate skyline answers).
        """
        self.stats.m_dominance_mbr += 1
        strict = False
        for a, b in zip(p.vector, mins):
            if a > b:
                return False
            if a < b:
                strict = True
        return strict

    # ------------------------------------------------------------------
    # Native dominance (original domains)
    # ------------------------------------------------------------------
    def native_dominates(self, p: "Point", q: "Point") -> bool:
        """Whether ``p`` dominates ``q`` on the *original* domains.

        The totally-ordered attributes are compared first (their
        normalised coordinates are the leading vector entries); poset
        attributes are compared by real set containment or reachability.
        Counted as an expensive ``native_set`` comparison only when a
        poset attribute was actually examined.
        """
        nt = self._num_total
        pv, qv = p.vector, q.vector
        strict = False
        for k in range(nt):
            a, b = pv[k], qv[k]
            if a > b:
                self.stats.native_numeric += 1
                return False
            if a < b:
                strict = True
        if not self._posets:
            self.stats.native_numeric += 1
            return strict
        if self._closures is not None:
            self.stats.native_closure += 1
            for k, closure in enumerate(self._closures):
                ip, iq = p.pix[k], q.pix[k]
                if ip == iq:
                    continue
                if closure.reachable_ix(ip, iq):
                    strict = True
                    continue
                return False
            return strict
        self.stats.native_set += 1
        for k, set_mode in enumerate(self._set_modes):
            if set_mode:
                sp, sq = p.nsets[k], q.nsets[k]
                # Element-wise containment walk: a faithful stand-in for
                # the paper's original-domain set comparisons, whose cost
                # grows with the set cardinality (Section 5.2) -- unlike
                # CPython's opaque C-level subset operator.
                contained = True
                for item in sq:
                    if item not in sp:
                        contained = False
                        break
                if not contained:
                    return False
                if len(sp) > len(sq):
                    strict = True
                continue
            ip, iq = p.pix[k], q.pix[k]
            if ip == iq:
                continue
            if self._posets[k].dominates_ix(ip, iq):
                strict = True
                continue
            return False
        return strict

    # ------------------------------------------------------------------
    # CompareDominance (Fig. 6)
    # ------------------------------------------------------------------
    def compare_dominance(self, x: "Point", y: "Point") -> int:
        """Three-way comparison: ``-1`` if ``x`` dominates ``y``, ``1`` if
        ``y`` dominates ``x``, ``0`` when incomparable.

        m-dominance is always tried first; the expensive original-domain
        comparison runs only when Lemma 4.2 admits a native-only dominance
        for the corresponding direction.
        """
        stats = self.stats
        stats.compare_dominance_calls += 1
        xv, yv = x.vector, y.vector
        # Inlined double m-dominance scan: one pass decides both
        # directions (they are mutually exclusive unless the vectors tie).
        stats.m_dominance_point += 2
        x_le = True  # x <= y so far
        y_le = True  # y <= x so far
        for a, b in zip(xv, yv):
            if a < b:
                y_le = False
                if not x_le:
                    break
            elif b < a:
                x_le = False
                if not y_le:
                    break
        if y_le and not x_le:
            return 1
        if x_le and not y_le:
            return -1
        if x_le and y_le:
            return 0  # identical vectors: identical values (f injective)
        x_cat, y_cat = x.category, y.category
        if self.faithful_gate:
            # Paper-literal single gate (Fig. 6 steps 5-9).
            if not x_cat.completely_covering and not y_cat.completely_covered:
                if self.native_dominates(y, x):
                    return 1
                if self.native_dominates(x, y):
                    return -1
            return 0
        # Direction-correct gates derived from Lemma 4.2.
        if not y_cat.completely_covering and not x_cat.completely_covered:
            if self.native_dominates(y, x):
                return 1
        if not x_cat.completely_covering and not y_cat.completely_covered:
            if self.native_dominates(x, y):
                return -1
        return 0

    def full_dominates(self, p: "Point", q: "Point") -> bool:
        """Exact original-domain dominance, trying m-dominance first.

        Used by BBS+'s ``UpdateSkylines`` (Fig. 3), which must detect
        every true dominance among intermediate skyline points.
        """
        if self.m_dominates(p, q):
            return True
        if p.category.completely_covering or q.category.completely_covered:
            return False  # Lemma 4.2: dominance would imply m-dominance
        return self.native_dominates(p, q)
