"""Per-client token-bucket rate limiting priced by the cost model.

A flat queries-per-second limit is wrong for skyline serving: one
constrained BBS probe over 1K records and one full-space SDC+ scan over
1M records are both "a query", but differ by orders of magnitude in the
comparisons they burn.  Instead each client connection gets a
:class:`TokenBucket` and every QUERY frame is *priced* from the same
shape-conditioned :class:`~repro.serving.admission.CostEstimator` the
admission controller uses -- so an expensive query drains the bucket
proportionally to the work it is predicted to cost, and shaped traffic
(subspace / constrained / skyband) is priced by its own calibrated
profile, not the full-space one.

The price is logarithmic in the predicted comparison bill
(``1 + log10(1 + comparisons)``): cheap cached-size probes cost ~1
token, million-comparison scans cost ~7-8, and the bucket's
``rate``/``capacity`` stay in human-readable units (tokens/second)
rather than raw comparison counts.
"""

from __future__ import annotations

import math
import threading
import time
from typing import TYPE_CHECKING

from repro.exceptions import RateLimitedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.admission import AdmissionController
    from repro.serving.server import QueryRequest

__all__ = ["TokenBucket", "price_request"]


class TokenBucket:
    """Classic token bucket with an injectable clock (for tests).

    ``acquire(cost)`` is non-blocking: it either debits the bucket and
    returns, or raises :class:`~repro.exceptions.RateLimitedError`
    carrying ``retry_after`` -- the seconds until the bucket will have
    refilled enough to cover ``cost`` (capped at the time to refill a
    full bucket, so an over-capacity cost still yields a finite hint).
    """

    __slots__ = ("rate", "capacity", "_tokens", "_updated", "_clock", "_lock")

    def __init__(self, rate: float, capacity: float, *, clock=None) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._clock = clock if clock is not None else time.monotonic
        self._updated = self._clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self, cost: float) -> None:
        """Debit ``cost`` tokens or raise :class:`RateLimitedError`."""
        with self._lock:
            self._refill()
            if cost <= self._tokens:
                self._tokens -= cost
                return
            deficit = min(cost, self.capacity) - self._tokens
            retry_after = deficit / self.rate
        raise RateLimitedError(cost=cost, retry_after=retry_after)

    def available(self) -> float:
        """Current token balance (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens


def price_request(
    admission: "AdmissionController",
    request: "QueryRequest",
    records: int,
    dimensions: int,
) -> float:
    """Token price of one query from the shape-conditioned cost model.

    Uses the admission controller's estimator so rate limiting and
    admission agree on what a query costs; falls back to the floor price
    of 1 token when no estimate is available for the algorithm.
    """
    try:
        estimate = admission.estimator.estimate(
            request.algorithm, records, dimensions, shape=request.shape()
        )
        comparisons = float(estimate.comparisons)
    except Exception:  # noqa: BLE001 - pricing must never kill a query
        comparisons = 0.0
    if comparisons <= 0:
        return 1.0
    return 1.0 + math.log10(1.0 + comparisons)
