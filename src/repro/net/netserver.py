"""Asyncio TCP front-end bridging remote clients onto a SkylineServer.

:class:`NetworkFrontend` accepts connections speaking the frame protocol
of :mod:`repro.net.protocol` and maps each QUERY frame onto one
:meth:`~repro.serving.server.SkylineServer.submit`.  The bridge is built
around three invariants:

**Progressive delivery.**  Each in-flight query's answers stream to the
client as POINTS frames *while the query runs*: the connection
subscribes to the handle's :class:`~repro.net.stream.EmissionChannel`
(with replay, so cache hits -- which resolve before ``submit`` returns
-- stream correctly too) and every emission event hops onto the event
loop with ``call_soon_threadsafe``.  Because the worker thread performs
its final sink mutation before resolving the handle, the loop observes
points strictly before the terminal event, and the concatenation of a
stream's POINTS frames is always a prefix of the algorithm's emission
order.  A server-side retry retracts the prefix with a typed RESET
frame first (see ``EmissionChannel.reset``).

**Bounded everything, never a hang.**  Outbound frames go through a
bounded per-connection send queue drained by one writer task (so one
stalled ``drain()`` never blocks frame *production*).  Each query
additionally buffers undelivered points on the loop: past the soft
bound emission is considered *paused* (counted in metrics and released
when the consumer drains); past the hard bound -- or when even the send
queue stays full for the configured timeout -- the stream is **shed**:
the query's cancellation token fires, the buffered points are dropped
and the client gets a typed ``slow-consumer`` ERROR frame (or, if it
is not even reading that, the connection is aborted).  No path buffers
without bound and no path waits forever.

**Disconnect == cancel.**  A client that goes away (EOF, connection
error, malformed frame) has every in-flight query cancelled through its
:class:`~repro.resilience.context.CancellationToken`, so abandoned
queries stop burning comparisons and worker slots drain back to idle.

Rate limiting sits in front of submission: each connection owns a
:class:`~repro.net.ratelimit.TokenBucket` and every QUERY is priced
from the shape-conditioned admission cost model, so expensive queries
drain the bucket proportionally to the work they are predicted to cost.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass

from repro.exceptions import (
    ProtocolError,
    RateLimitedError,
    ServingError,
    SlowConsumerError,
)
from repro.net.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    error_payload,
    read_frame,
)
from repro.net.ratelimit import TokenBucket, price_request
from repro.net.stream import EVENT_RESET
from repro.serving.server import QueryRequest

__all__ = ["NetworkConfig", "NetworkFrontend", "request_from_payload", "point_to_wire"]

logger = logging.getLogger("repro.net")

#: Frame types only the server may send; receiving one is a violation.
_SERVER_ONLY_TYPES = frozenset({"points", "progress", "reset", "done", "error"})

_REQUEST_FIELDS = (
    "algorithm",
    "deadline",
    "max_comparisons",
    "max_heap_entries",
    "max_window_entries",
    "max_answers",
    "priority",
    "fallback",
    "tag",
    "skyband_k",
    "idempotent",
)


@dataclass(frozen=True)
class NetworkConfig:
    """Tunables of one :class:`NetworkFrontend`.

    ``rate``/``burst`` parameterize each connection's token bucket (in
    cost-model tokens: ~1 per cheap query, ~7-8 per million-comparison
    scan).  ``send_queue_frames`` bounds the per-connection outbound
    queue; ``pending_soft`` / ``pending_hard`` bound each query's
    undelivered-point buffer (pause / shed); ``send_timeout`` bounds how
    long any single enqueue onto a full send queue may wait before the
    consumer is declared dead.  ``points_per_frame`` caps the batch size
    of one POINTS frame so a huge stratum never builds one giant frame.
    """

    host: str = "127.0.0.1"
    port: int = 0
    rate: float = 50.0
    burst: float = 200.0
    send_queue_frames: int = 64
    pending_soft: int = 4096
    pending_hard: int = 65536
    send_timeout: float = 10.0
    handshake_timeout: float = 5.0
    points_per_frame: int = 512


def point_to_wire(point) -> dict:
    """JSON representation of one emitted point (record id + values)."""
    record = point.record
    return {
        "rid": record.rid,
        "totals": list(record.totals),
        "partials": list(record.partials),
    }


def request_from_payload(payload: dict) -> QueryRequest:
    """Build a :class:`QueryRequest` from a QUERY frame payload.

    Raises :class:`~repro.exceptions.ProtocolError` on structurally
    invalid fields; semantic errors (unknown algorithm, invalid
    constraint values) surface later as typed serving errors on the
    stream, exactly like local submission.
    """
    kwargs = {}
    for name in _REQUEST_FIELDS:
        if payload.get(name) is not None:
            kwargs[name] = payload[name]
    options = payload.get("options")
    if options is not None:
        if not isinstance(options, dict):
            raise ProtocolError("query 'options' must be a JSON object")
        kwargs["options"] = dict(options)
    subspace = payload.get("subspace")
    if subspace is not None:
        if not isinstance(subspace, (list, tuple)):
            raise ProtocolError("query 'subspace' must be a list of names")
        kwargs["subspace"] = tuple(subspace)
    constraint = payload.get("constraint")
    if constraint is not None:
        if not isinstance(constraint, dict):
            raise ProtocolError("query 'constraint' must be a JSON object")
        from repro.queries.constrained import Constraint

        try:
            ranges = {
                name: tuple(bounds)
                for name, bounds in (constraint.get("ranges") or {}).items()
            }
            kwargs["constraint"] = Constraint(
                ranges=ranges,
                must_dominate=constraint.get("must_dominate"),
                dominated_by=constraint.get("dominated_by"),
            )
        except (TypeError, ValueError) as err:
            raise ProtocolError(f"invalid query constraint: {err}") from err
    try:
        return QueryRequest(**kwargs)
    except TypeError as err:
        raise ProtocolError(f"invalid query fields: {err}") from err


class _QueryStream:
    """Loop-side state of one streamed query on one connection.

    Emission events arrive from worker threads via
    ``call_soon_threadsafe`` and accumulate in ``pending``; one pump
    task per stream drains ``pending`` into POINTS frames on the
    connection's bounded send queue and emits the terminal DONE/ERROR
    frame after the last point.
    """

    def __init__(self, conn: "_Connection", qid, handle) -> None:
        self.conn = conn
        self.qid = qid
        self.handle = handle
        self.started = time.perf_counter()
        self.pending: list = []
        self.seq = 0
        self.sent_points = 0
        self.reset_pending = False
        self.finished = False
        self.first_point_at: float | None = None
        self.paused = False
        self.shed = False
        self.closed = False
        self.wake = asyncio.Event()
        self.progress = False
        self.unsubscribe = None
        self.pump_task: asyncio.Task | None = None

    # -- worker-thread side -------------------------------------------
    def on_emission(self, kind: str, points: list) -> None:
        """EmissionChannel callback (any thread): hop onto the loop."""
        loop = self.conn.loop
        try:
            loop.call_soon_threadsafe(self._on_event, kind, points)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def on_done(self, _handle) -> None:
        """Handle done-callback (any thread): hop onto the loop."""
        loop = self.conn.loop
        try:
            loop.call_soon_threadsafe(self._on_finished)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # -- loop side -----------------------------------------------------
    def _on_event(self, kind: str, points: list) -> None:
        if self.closed or self.shed:
            return
        metrics = self.conn.frontend.metrics
        if kind == EVENT_RESET:
            self.pending.clear()
            self.reset_pending = True
            self.paused = False
        else:
            self.pending.extend(points)
            if len(self.pending) > self.conn.frontend.config.pending_hard:
                # Hard bound: the consumer is not keeping up and the
                # buffer must not grow further -- shed the stream.
                self.shed = True
                self.pending.clear()
                metrics.on_slow_consumer_shed()
                self.handle.cancel()
            elif (
                len(self.pending) > self.conn.frontend.config.pending_soft
                and not self.paused
            ):
                self.paused = True
                metrics.on_backpressure_pause()
        self.wake.set()

    def _on_finished(self) -> None:
        self.finished = True
        self.wake.set()

    async def pump(self) -> None:
        """Drain emission events into frames until the stream ends."""
        conn = self.conn
        cfg = conn.frontend.config
        metrics = conn.frontend.metrics
        try:
            while True:
                await self.wake.wait()
                self.wake.clear()
                if self.closed:
                    return
                if self.shed:
                    await conn.send(
                        error_payload(
                            SlowConsumerError(
                                f"per-query buffer exceeded "
                                f"{cfg.pending_hard} undelivered points"
                            ),
                            qid=self.qid,
                        )
                    )
                    return
                if self.reset_pending:
                    self.reset_pending = False
                    self.seq = 0
                    self.sent_points = 0
                    metrics.on_reset_sent()
                    await conn.send({"type": "reset", "qid": self.qid})
                while self.pending and not self.shed and not self.closed:
                    batch = self.pending[: cfg.points_per_frame]
                    del self.pending[: cfg.points_per_frame]
                    frame = {
                        "type": "points",
                        "qid": self.qid,
                        "seq": self.seq,
                        "points": [point_to_wire(p) for p in batch],
                        "cached": self._cached(),
                    }
                    self.seq += 1
                    self.sent_points += len(batch)
                    if self.first_point_at is None:
                        self.first_point_at = time.perf_counter()
                        metrics.on_first_point(
                            self.first_point_at - self.started
                        )
                    await conn.send(frame)
                    if self.progress:
                        await conn.send(
                            {
                                "type": "progress",
                                "qid": self.qid,
                                "emitted": self.sent_points,
                                "elapsed": time.perf_counter() - self.started,
                            }
                        )
                if self.paused and len(self.pending) <= cfg.pending_soft:
                    self.paused = False
                if (
                    self.finished
                    and not self.pending
                    and not self.reset_pending
                    and not self.shed
                ):
                    await conn.send(self._terminal_frame())
                    return
        except asyncio.CancelledError:
            raise
        finally:
            self.close()
            conn.streams.pop(self.qid, None)

    def _cached(self) -> bool:
        result = self.handle._result
        return bool(result is not None and result.cached)

    def _terminal_frame(self) -> dict:
        handle = self.handle
        error = handle._error
        if error is not None:
            return error_payload(error, qid=self.qid)
        result = handle._result
        return {
            "type": "done",
            "qid": self.qid,
            "complete": bool(result.complete),
            "outcome": handle.outcome,
            "exhausted_reason": result.exhausted_reason,
            "elapsed": result.elapsed,
            "count": len(result.points),
            "cached": bool(result.cached),
            "fallback": bool(result.fallback),
        }

    def close(self) -> None:
        """Detach from the emission channel and stop delivering."""
        self.closed = True
        if self.unsubscribe is not None:
            self.unsubscribe()
            self.unsubscribe = None
        self.wake.set()


class _Connection:
    """One accepted client connection: dispatch loop + writer task."""

    def __init__(self, frontend: "NetworkFrontend", reader, writer) -> None:
        self.frontend = frontend
        self.reader = reader
        self.writer = writer
        self.loop = asyncio.get_running_loop()
        self.out: asyncio.Queue = asyncio.Queue(
            maxsize=frontend.config.send_queue_frames
        )
        self.streams: dict = {}
        self.bucket = TokenBucket(frontend.config.rate, frontend.config.burst)
        self.writer_task: asyncio.Task | None = None
        self.aborted = False

    async def send(self, frame: dict) -> None:
        """Enqueue one outbound frame; abort the consumer on timeout.

        The send queue is bounded; a consumer that leaves it full for
        ``send_timeout`` seconds is not reading at all -- the connection
        is aborted (which cancels every in-flight query) instead of
        waiting forever.
        """
        if self.aborted:
            return
        try:
            await asyncio.wait_for(
                self.out.put(frame), timeout=self.frontend.config.send_timeout
            )
        except asyncio.TimeoutError:
            logger.warning(
                "send queue full for %.3gs; aborting connection",
                self.frontend.config.send_timeout,
            )
            self.abort()

    def abort(self) -> None:
        """Hard-close the transport; cleanup happens in :meth:`run`."""
        self.aborted = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    async def _writer_loop(self) -> None:
        metrics = self.frontend.metrics
        try:
            while True:
                frame = await self.out.get()
                if frame is None:
                    return
                data = encode_frame(frame)
                self.writer.write(data)
                await self.writer.drain()
                points = (
                    len(frame["points"]) if frame["type"] == "points" else 0
                )
                metrics.on_frame_out(len(data), points)
        except (ConnectionError, asyncio.CancelledError, RuntimeError):
            return

    # ------------------------------------------------------------------
    async def run(self) -> None:
        metrics = self.frontend.metrics
        self.writer_task = asyncio.ensure_future(self._writer_loop())
        try:
            await self._handshake()
            while True:
                try:
                    received = await read_frame(self.reader)
                except ProtocolError as err:
                    metrics.on_malformed_frame()
                    await self.send(error_payload(err))
                    return
                if received is None:
                    return  # clean disconnect
                frame, nbytes = received
                metrics.on_frame_in(nbytes)
                await self._dispatch(frame)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            await self._cleanup()

    async def _handshake(self) -> None:
        cfg = self.frontend.config
        metrics = self.frontend.metrics
        try:
            received = await asyncio.wait_for(
                read_frame(self.reader), timeout=cfg.handshake_timeout
            )
        except asyncio.TimeoutError as err:
            raise ConnectionError("handshake timeout") from err
        except ProtocolError as err:
            metrics.on_malformed_frame()
            await self.send(error_payload(err))
            raise ConnectionError("malformed handshake") from err
        if received is None:
            raise ConnectionError("disconnected before handshake")
        frame, nbytes = received
        metrics.on_frame_in(nbytes)
        if frame["type"] != "hello" or frame.get("protocol") != PROTOCOL_VERSION:
            metrics.on_malformed_frame()
            await self.send(
                error_payload(
                    ProtocolError(
                        f"unsupported handshake (type={frame['type']!r}, "
                        f"protocol={frame.get('protocol')!r}); server "
                        f"speaks protocol {PROTOCOL_VERSION}"
                    )
                )
            )
            raise ConnectionError("handshake version mismatch")
        server = self.frontend.server
        await self.send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "server": "repro-skyline",
                "records": len(server.dataset),
                "dimensions": server.dataset.dimensions,
            }
        )

    async def _dispatch(self, frame: dict) -> None:
        kind = frame["type"]
        if kind == "query":
            await self._handle_query(frame)
        elif kind == "cancel":
            stream = self.streams.get(frame.get("qid"))
            if stream is not None:
                stream.handle.cancel()
        elif kind == "metrics":
            await self.send(
                {"type": "metrics", "data": self.frontend.metrics.snapshot()}
            )
        elif kind in _SERVER_ONLY_TYPES:
            self.frontend.metrics.on_malformed_frame()
            await self.send(
                error_payload(
                    ProtocolError(f"clients must not send {kind!r} frames"),
                    qid=frame.get("qid"),
                )
            )
        # A repeated "hello" is harmless; ignore it.

    async def _handle_query(self, frame: dict) -> None:
        metrics = self.frontend.metrics
        qid = frame.get("qid")
        if qid is None or not isinstance(qid, (int, str)):
            metrics.on_malformed_frame()
            await self.send(
                error_payload(ProtocolError("query frame needs an int/str qid"))
            )
            return
        if qid in self.streams:
            await self.send(
                error_payload(
                    ProtocolError(f"qid {qid!r} is already in flight"), qid=qid
                )
            )
            return
        try:
            request = request_from_payload(frame)
        except ProtocolError as err:
            metrics.on_malformed_frame()
            await self.send(error_payload(err, qid=qid))
            return

        server = self.frontend.server
        try:
            cost = price_request(
                server.admission, request, len(server.dataset),
                server.dataset.dimensions,
            )
            self.bucket.acquire(cost)
        except RateLimitedError as err:
            metrics.on_rate_limited()
            await self.send(error_payload(err, qid=qid))
            return

        metrics.on_net_query()
        stream = _QueryStream(self, qid, handle=None)
        stream.progress = bool(frame.get("progress"))
        try:
            handle = await self.loop.run_in_executor(
                None, server.submit, request
            )
        except Exception as err:  # typed serving errors -> ERROR frame
            await self.send(error_payload(err, qid=qid))
            return
        stream.handle = handle
        self.streams[qid] = stream
        # Replay delivers the already-emitted prefix (cache hits resolve
        # before submit() even returns) and the done callback fires
        # after the final emission -- both hop onto the loop in order.
        stream.unsubscribe = handle.subscribe(stream.on_emission, replay=True)
        stream.pump_task = asyncio.ensure_future(stream.pump())
        handle.add_done_callback(stream.on_done)

    async def _cleanup(self) -> None:
        metrics = self.frontend.metrics
        for stream in list(self.streams.values()):
            stream.close()
            if stream.handle is not None and not stream.handle.done():
                if stream.handle.cancel():
                    metrics.on_disconnect_cancellation()
            if stream.pump_task is not None:
                stream.pump_task.cancel()
        self.streams.clear()
        if self.writer_task is not None:
            try:
                self.out.put_nowait(None)
            except asyncio.QueueFull:
                self.writer_task.cancel()
            try:
                await asyncio.wait_for(self.writer_task, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self.writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


class NetworkFrontend:
    """Asyncio TCP server exposing one SkylineServer to remote clients.

    ::

        frontend = NetworkFrontend(server, NetworkConfig(port=7777))
        host, port = await frontend.start()
        ...
        await frontend.close()
    """

    def __init__(self, server, config: NetworkConfig | None = None) -> None:
        self.server = server
        self.config = config if config is not None else NetworkConfig()
        self.metrics = server.metrics
        self._tcp: asyncio.base_events.Server | None = None
        self._connections: set = set()

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._tcp is not None:
            raise ServingError("network frontend already started")
        self._tcp = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._tcp is None:
            raise ServingError("network frontend is not listening")
        sock = self._tcp.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def _on_connection(self, reader, writer) -> None:
        self.metrics.on_connection_opened()
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        try:
            await conn.run()
        except Exception:  # noqa: BLE001 - one bad connection stays local
            logger.exception("connection handler failed")
        finally:
            self._connections.discard(conn)
            self.metrics.on_connection_closed()

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` runs this)."""
        if self._tcp is None:
            await self.start()
        async with self._tcp:
            await self._tcp.serve_forever()

    async def close(self) -> None:
        """Stop accepting, abort live connections, wait for teardown."""
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for conn in list(self._connections):
            conn.abort()
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
