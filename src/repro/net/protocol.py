"""Wire protocol: length-prefixed, CRC-checked JSON frames.

Every message on a connection -- in either direction -- is one *frame*:

+---------------------+----------------------------------------------+
| bytes               | meaning                                      |
+=====================+==============================================+
| 4 (``!I``)          | payload length ``n`` (bytes, big-endian)     |
+---------------------+----------------------------------------------+
| 4 (``!I``)          | CRC-32 of the payload                        |
+---------------------+----------------------------------------------+
| ``n``               | UTF-8 JSON object with a ``"type"`` key      |
+---------------------+----------------------------------------------+

Frame types
-----------
``hello``
    Versioned handshake, both directions.  The client sends
    ``{"type": "hello", "protocol": 1}`` first; the server answers with
    its own hello carrying the negotiated protocol version, the dataset
    size and the server build.  A version the server cannot speak is
    answered with a ``protocol`` ERROR and the connection closes.
``query``
    One query submission: ``{"type": "query", "qid": ..., "algorithm":
    ..., ...}`` -- the fields of a
    :class:`~repro.serving.server.QueryRequest` (deadline, budgets,
    priority, options, tag, subspace, constraint, skyband_k).  ``qid``
    is a client-chosen identifier echoed on every frame of the stream.
``points``
    A contiguous batch of emitted skyline answers for one query:
    ``{"type": "points", "qid": ..., "seq": k, "points": [{"rid": ...,
    "totals": [...], "partials": [...]}, ...], "cached": bool}``.  The
    concatenation of a stream's ``points`` frames (in ``seq`` order,
    since the last ``reset``) is always a prefix of the algorithm's
    deterministic emission order.
``progress``
    Cheap periodic counters: ``{"type": "progress", "qid": ...,
    "emitted": n, "elapsed": seconds}``.
``reset``
    The emitted prefix was retracted (server-side retry restarted
    emission from scratch): discard everything received for ``qid`` so
    far; subsequent ``points`` frames restart at ``seq`` 0.
``done``
    Terminal success frame: ``{"type": "done", "qid": ..., "complete":
    bool, "outcome": ..., "exhausted_reason": ..., "elapsed": ...,
    "count": n, "cached": bool, "fallback": bool}``.
``error``
    Terminal failure frame (or connection-level failure when ``qid`` is
    absent): ``{"type": "error", "qid": ..., "code": ..., "message":
    ..., "detail": {...}}``.  Codes are listed in :data:`ERROR_CODES`.
``cancel``
    Client request to cancel one in-flight query: ``{"type": "cancel",
    "qid": ...}``.  The server trips the query's
    :class:`~repro.resilience.context.CancellationToken`; the stream
    terminates with a ``cancelled`` ERROR frame.
``metrics``
    Client request ``{"type": "metrics"}``; server reply
    ``{"type": "metrics", "data": {...}}`` (the full
    :meth:`~repro.serving.metrics.ServerMetrics.snapshot`, including the
    ``net`` section).

Framing errors (bad CRC, oversize, truncation, non-JSON payload,
missing type) raise :class:`~repro.exceptions.ProtocolError`; after one,
the stream position cannot be trusted and the connection must close.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib

from repro.exceptions import (
    AdmissionRejectedError,
    BudgetExhaustedError,
    LockTimeoutError,
    ProtocolError,
    QueryCancelledError,
    QueryShedError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    ServingError,
    SlowConsumerError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FRAME_TYPES",
    "ERROR_CODES",
    "encode_frame",
    "FrameReader",
    "read_frame",
    "write_frame",
    "error_payload",
]

#: Current protocol version spoken by both ends of the handshake.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload; a length prefix beyond this is a
#: protocol violation (corrupt stream or hostile peer), not an allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!II")

FRAME_TYPES = frozenset(
    {
        "hello",
        "query",
        "points",
        "progress",
        "reset",
        "done",
        "error",
        "cancel",
        "metrics",
    }
)

#: Wire error codes and the typed exceptions they originate from.  The
#: client surfaces them as
#: :class:`~repro.exceptions.RemoteQueryError` with ``code`` preserved,
#: so remote callers can dispatch on exactly the same taxonomy local
#: callers catch.
ERROR_CODES = {
    "admission-rejected": AdmissionRejectedError,
    "shed": QueryShedError,
    "timeout": QueryTimeoutError,
    "cancelled": QueryCancelledError,
    "budget": BudgetExhaustedError,
    "lock-timeout": LockTimeoutError,
    "rate-limited": RateLimitedError,
    "slow-consumer": SlowConsumerError,
    "read-only": ServingError,
    "serving": ServingError,
    "protocol": ProtocolError,
    "internal": Exception,
}


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame dict to its wire bytes.

    Raises :class:`~repro.exceptions.ProtocolError` for payloads missing
    a known ``type`` or encoding beyond :data:`MAX_FRAME_BYTES`.
    """
    frame_type = payload.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_payload(body: bytes, crc: int) -> dict:
    if zlib.crc32(body) != crc:
        raise ProtocolError("frame CRC mismatch (corrupt or torn frame)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"frame payload is not valid JSON: {err}") from err
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("type") not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {payload.get('type')!r}")
    return payload


class FrameReader:
    """Incremental frame decoder for a byte stream.

    Feed it arbitrary chunks; it returns every complete frame decoded so
    far.  Usable without asyncio (tests, alternative transports); the
    asyncio path uses :func:`read_frame` instead.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Consume ``data``; return the frames it completed (in order)."""
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            length, crc = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            frames.append(_decode_payload(body, crc))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[dict, int] | None:
    """Read one frame; returns ``(payload, wire_bytes)``.

    ``None`` on clean EOF at a frame boundary.  Raises
    :class:`~repro.exceptions.ProtocolError` on mid-frame EOF, an
    oversized length prefix, a CRC mismatch or a malformed payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-header ({len(err.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from err
    length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise ProtocolError(
            f"connection closed mid-frame ({len(err.partial)} of "
            f"{length} payload bytes)"
        ) from err
    return _decode_payload(body, crc), _HEADER.size + length


def write_frame(writer: asyncio.StreamWriter, payload: dict) -> int:
    """Encode + buffer one frame on ``writer``; returns the frame size.

    Callers ``await writer.drain()`` for flow control.
    """
    data = encode_frame(payload)
    writer.write(data)
    return len(data)


def error_payload(error: BaseException, qid=None) -> dict:
    """Map one (typed) exception onto an ERROR frame payload.

    Every serving-layer error keeps its taxonomy on the wire: the frame
    ``code`` round-trips through :data:`ERROR_CODES`, and the
    structured attributes the exception carried (rejection reason and
    bounds, shed policy, deadline/elapsed, budget usage, retry-after)
    travel in ``detail``.
    """
    detail: dict = {}
    if isinstance(error, AdmissionRejectedError):
        code = "admission-rejected"
        detail = {
            "reason": error.reason,
            "estimate": error.estimate,
            "limit": error.limit,
        }
    elif isinstance(error, QueryShedError):
        code = "shed"
        detail = {"policy": error.policy, "reason": error.reason}
    elif isinstance(error, QueryTimeoutError):
        code = "timeout"
        detail = {"deadline": error.deadline, "elapsed": error.elapsed}
    elif isinstance(error, QueryCancelledError):
        code = "cancelled"
    elif isinstance(error, BudgetExhaustedError):
        code = "budget"
        detail = {
            "reason": error.reason,
            "limit": error.limit,
            "used": error.used,
        }
    elif isinstance(error, LockTimeoutError):
        code = "lock-timeout"
        detail = {"mode": error.mode, "timeout": error.timeout}
    elif isinstance(error, RateLimitedError):
        code = "rate-limited"
        detail = {"cost": error.cost, "retry_after": error.retry_after}
    elif isinstance(error, SlowConsumerError):
        code = "slow-consumer"
        detail = {"reason": error.reason}
    elif isinstance(error, ProtocolError):
        code = "protocol"
    elif isinstance(error, ServingError):
        # Read-only latch surfaces through its message; keep it typed.
        code = "read-only" if "read-only" in str(error) else "serving"
    elif isinstance(error, ReproError):
        code = "serving"
    else:
        code = "internal"
    payload = {
        "type": "error",
        "code": code,
        "message": str(error),
        "detail": detail,
    }
    if qid is not None:
        payload["qid"] = qid
    return payload
