"""Incremental, thread-safe emission channels.

The resilient executor appends each emitted skyline point to its
``sink`` list *as the algorithm yields it*; historically that list was a
plain ``list`` the serving layer snapshotted on demand, which is enough
for polling (:meth:`~repro.serving.server.QueryHandle.partial`) but not
for *push* delivery: a network stream must learn about new points the
moment they exist, not when somebody polls.

:class:`EmissionChannel` is a drop-in replacement: it subclasses
``list`` (so the executor's ``points.append``, the server's
``sink.extend`` and ``PartialResult(points=sink)`` all keep working
unchanged) and additionally notifies registered subscribers of every
mutation, under one lock, in emission order:

* ``("points", [p, ...])`` -- new points were appended; the batch is a
  contiguous slice of the emission order.
* ``("reset", [])`` -- the emitted prefix was retracted (the serving
  layer's retry path restarts emission from scratch).  Subscribers that
  already forwarded points downstream must forward the retraction too
  (the network layer sends a typed RESET frame); the next ``points``
  events restart from position zero.

Ordering guarantees (the *prefix-of-emission-order* contract end to
end):

* Subscriber callbacks run synchronously under the channel lock, on the
  emitting thread, so events arrive in exactly the order the mutations
  happened -- no torn batches, no reordering.
* :meth:`subscribe` with ``replay=True`` (the default) delivers the
  already-emitted prefix as one synthetic ``points`` event *inside the
  same critical section* that registers the callback, so a subscriber
  sees every point exactly once no matter when it attaches -- before,
  during or after the query runs.  Cache hits (which emit their whole
  answer before the submitter even gets the handle back) stream
  correctly because of this replay.

Callbacks must be fast and must not re-enter the channel; the network
layer's callback is a single ``loop.call_soon_threadsafe`` hop.  A
subscriber that raises is dropped (and the error recorded) rather than
poisoning the query's emission path.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.point import Point

__all__ = ["EmissionChannel"]

logger = logging.getLogger("repro.net")

#: Event kinds delivered to subscribers.
EVENT_POINTS = "points"
EVENT_RESET = "reset"

Subscriber = Callable[[str, list], None]


class EmissionChannel(list):
    """A ``list`` of emitted points that pushes every mutation to
    subscribers.

    The channel *is* the query's sink: the executor appends into it, the
    serving layer snapshots it, and the returned
    :class:`~repro.resilience.executor.PartialResult` uses it as its
    ``points``.  Subscribers observe the same sequence incrementally.
    """

    __slots__ = ("_lock", "_subscribers", "_next_token", "generation")

    def __init__(self, initial: Iterable | None = None) -> None:
        super().__init__(initial or ())
        self._lock = threading.Lock()
        self._subscribers: dict[int, Subscriber] = {}
        self._next_token = 0
        #: Bumped by every :meth:`reset`; lets late observers detect
        #: that the current contents are not the first emission attempt.
        self.generation = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, callback: Subscriber, replay: bool = True) -> Callable[[], None]:
        """Register ``callback(kind, points)``; returns an unsubscribe
        function.

        With ``replay`` (default) the already-emitted prefix is
        delivered as one ``points`` event inside the registration
        critical section -- exactly-once delivery regardless of when the
        subscriber attaches relative to emission.
        """
        with self._lock:
            token = self._next_token
            self._next_token += 1
            if replay and len(self):
                self._deliver_one(token, callback, EVENT_POINTS, list(self))
            self._subscribers[token] = callback

        def unsubscribe() -> None:
            with self._lock:
                self._subscribers.pop(token, None)

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        """How many subscribers are currently attached."""
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    # Mutators (the executor / serving layer call these)
    # ------------------------------------------------------------------
    def append(self, point: "Point") -> None:
        with self._lock:
            list.append(self, point)
            self._notify(EVENT_POINTS, [point])

    def extend(self, points: Iterable["Point"]) -> None:
        batch = list(points)
        if not batch:
            return
        with self._lock:
            list.extend(self, batch)
            self._notify(EVENT_POINTS, batch)

    def reset(self) -> None:
        """Retract the emitted prefix (retry restarting emission).

        Clears the list, bumps :attr:`generation` and pushes a
        ``reset`` event so downstream streams can send a typed RESET
        frame before the re-emission arrives.
        """
        with self._lock:
            list.clear(self)
            self.generation += 1
            self._notify(EVENT_RESET, [])

    def clear(self) -> None:  # pragma: no cover - alias for safety
        self.reset()

    def __delitem__(self, index) -> None:
        # ``del channel[:]`` is the legacy retry idiom; route it through
        # reset so subscribers always see the retraction.
        if isinstance(index, slice) and index == slice(None, None, None):
            self.reset()
            return
        raise TypeError(
            "EmissionChannel only supports full-slice deletion (reset); "
            "emitted prefixes must never be partially retracted"
        )

    def snapshot(self) -> list:
        """A consistent copy of the emitted prefix."""
        with self._lock:
            return list(self)

    # ------------------------------------------------------------------
    def _notify(self, kind: str, points: list) -> None:
        """Deliver one event to every subscriber (lock held by caller)."""
        if not self._subscribers:
            return
        for token, callback in list(self._subscribers.items()):
            self._deliver_one(token, callback, kind, points)

    def _deliver_one(self, token: int, callback: Subscriber, kind: str,
                     points: list) -> None:
        try:
            callback(kind, points)
        except Exception:  # noqa: BLE001 - subscriber isolation
            # A broken subscriber must not poison the query's emission
            # path (or the other subscribers): drop it and log.
            self._subscribers.pop(token, None)
            logger.exception(
                "emission subscriber raised; unsubscribed (kind=%s)", kind
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmissionChannel({len(self)} points, "
            f"{len(self._subscribers)} subscribers, gen={self.generation})"
        )
