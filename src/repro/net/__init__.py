"""Asyncio network front-end for the skyline server (``docs/network.md``).

Modules
-------
:mod:`repro.net.stream`
    :class:`~repro.net.stream.EmissionChannel` -- the incremental,
    thread-safe sink every query emits through.
:mod:`repro.net.protocol`
    Length-prefixed, CRC-checked JSON frame codec and the typed
    error-code mapping.
:mod:`repro.net.ratelimit`
    Per-client token buckets priced by the shape-conditioned admission
    cost model.
:mod:`repro.net.netserver`
    :class:`~repro.net.netserver.NetworkFrontend` -- the asyncio TCP
    server bridging remote connections onto a
    :class:`~repro.serving.server.SkylineServer`.
:mod:`repro.net.client`
    :class:`~repro.net.client.SkylineClient` -- the asyncio client
    library (progressive iteration over POINTS frames).
:mod:`repro.net.bench`
    ``repro net-bench`` -- seeded multi-connection open-loop driver.

Attribute access is lazy: ``repro.net.stream`` is imported by
:mod:`repro.serving.server` (every :class:`QueryHandle` sink is an
emission channel) while :mod:`repro.net.netserver` imports the serving
layer back, so eagerly importing the whole package here would be
circular.
"""

from __future__ import annotations

import importlib

__all__ = [
    "EmissionChannel",
    "NetworkFrontend",
    "NetworkConfig",
    "SkylineClient",
    "QueryStream",
    "TokenBucket",
    "PROTOCOL_VERSION",
]

_EXPORTS = {
    "EmissionChannel": "repro.net.stream",
    "NetworkFrontend": "repro.net.netserver",
    "NetworkConfig": "repro.net.netserver",
    "SkylineClient": "repro.net.client",
    "QueryStream": "repro.net.client",
    "TokenBucket": "repro.net.ratelimit",
    "PROTOCOL_VERSION": "repro.net.protocol",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.net' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
