"""Asyncio client for the skyline network protocol.

::

    client = await SkylineClient.connect(host, port)
    stream = await client.query(algorithm="sdc+")
    async for batch in stream:          # POINTS batches, as they arrive
        render(batch)
    result = await stream.result()      # terminal DONE summary
    await client.close()

One reader task per connection dispatches inbound frames to the stream
that owns their ``qid``; many queries can be in flight concurrently on
one connection.  Frames arrive exactly in server emission order, so the
points a stream accumulates are always a prefix of the algorithm's
emission order -- and a RESET frame (server-side retry) transparently
retracts the prefix before re-emission, visible to batch iterators as a
``reset`` event.

Failures surface as :class:`~repro.exceptions.RemoteQueryError` with
the server's typed wire code (``admission-rejected``, ``shed``,
``timeout``, ``rate-limited``, ``slow-consumer``, ...) and the point
prefix streamed before the failure.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.exceptions import ProtocolError, RemoteQueryError
from repro.net.protocol import PROTOCOL_VERSION, read_frame, write_frame

__all__ = ["SkylineClient", "QueryStream", "RemoteResult"]


@dataclass
class RemoteResult:
    """Terminal summary of one streamed query (the DONE frame)."""

    points: list = field(default_factory=list)
    complete: bool = False
    outcome: str = ""
    exhausted_reason: str | None = None
    elapsed: float = 0.0
    cached: bool = False
    fallback: bool = False
    #: Client-side instrumentation: seconds from QUERY to first POINTS
    #: frame and to the terminal frame (``None`` when no points arrived).
    time_to_first_point: float | None = None
    time_to_done: float = 0.0
    #: POINTS frames received (>=2 demonstrates progressive delivery).
    point_frames: int = 0
    resets: int = 0


class QueryStream:
    """Client-side state of one in-flight query.

    Iterate it (``async for batch in stream``) for progressive batches,
    or just ``await stream.result()`` for the terminal summary.  Batch
    events are ``("points", [...])`` / ``("reset", [])`` tuples from
    :meth:`events`; plain iteration yields only the point batches and
    silently restarts on reset (the accumulated ``points`` list is
    retracted either way).
    """

    def __init__(self, client: "SkylineClient", qid: int) -> None:
        self.client = client
        self.qid = qid
        self.points: list = []
        self.sent_at = time.perf_counter()
        self.first_point_at: float | None = None
        self.point_frames = 0
        self.resets = 0
        self.cached = False
        self._events: asyncio.Queue = asyncio.Queue()
        self._done: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )

    # -- frame delivery (reader task) ---------------------------------
    def _on_frame(self, frame: dict) -> None:
        kind = frame["type"]
        if kind == "points":
            if self.first_point_at is None:
                self.first_point_at = time.perf_counter()
            self.point_frames += 1
            self.cached = self.cached or bool(frame.get("cached"))
            batch = frame["points"]
            self.points.extend(batch)
            self._events.put_nowait(("points", batch))
        elif kind == "reset":
            self.resets += 1
            self.points.clear()
            self._events.put_nowait(("reset", []))
        elif kind == "progress":
            self._events.put_nowait(("progress", frame))
        elif kind == "done":
            result = RemoteResult(
                points=list(self.points),
                complete=bool(frame.get("complete")),
                outcome=frame.get("outcome", ""),
                exhausted_reason=frame.get("exhausted_reason"),
                elapsed=float(frame.get("elapsed", 0.0)),
                cached=bool(frame.get("cached")),
                fallback=bool(frame.get("fallback")),
                time_to_first_point=(
                    self.first_point_at - self.sent_at
                    if self.first_point_at is not None
                    else None
                ),
                time_to_done=time.perf_counter() - self.sent_at,
                point_frames=self.point_frames,
                resets=self.resets,
            )
            self._resolve(result)
        elif kind == "error":
            self._resolve(
                error=RemoteQueryError(
                    frame.get("code", "internal"),
                    frame.get("message", ""),
                    detail=frame.get("detail"),
                    points=list(self.points),
                )
            )

    def _resolve(self, result=None, error=None) -> None:
        if not self._done.done():
            if error is not None:
                self._done.set_exception(error)
            else:
                self._done.set_result(result)
        self._events.put_nowait(None)  # end-of-stream sentinel

    # -- consumer API --------------------------------------------------
    async def result(self) -> RemoteResult:
        """Wait for the terminal frame; raises
        :class:`~repro.exceptions.RemoteQueryError` on ERROR."""
        return await self._done

    def done(self) -> bool:
        """True once the stream has received its terminal DONE/ERROR frame."""
        return self._done.done()

    async def cancel(self) -> None:
        """Send a CANCEL frame (the stream then ends with a typed
        ``cancelled`` error carrying the streamed prefix)."""
        await self.client._send({"type": "cancel", "qid": self.qid})

    async def events(self):
        """Async-iterate raw ``(kind, payload)`` stream events."""
        while True:
            event = await self._events.get()
            if event is None:
                return
            yield event

    def __aiter__(self):
        return self._batches()

    async def _batches(self):
        async for kind, payload in self.events():
            if kind == "points":
                yield payload


class SkylineClient:
    """One connection to a :class:`~repro.net.netserver.NetworkFrontend`."""

    def __init__(self, reader, writer, hello: dict) -> None:
        self._reader = reader
        self._writer = writer
        #: The server's HELLO payload (protocol, records, dimensions).
        self.server_info = dict(hello)
        self._streams: dict[int, QueryStream] = {}
        self._next_qid = 0
        self._metrics_waiters: list[asyncio.Future] = []
        self._closed = False
        self._conn_error: BaseException | None = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: float = 10.0
    ) -> "SkylineClient":
        """Open a connection and complete the versioned handshake."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
        write_frame(writer, {"type": "hello", "protocol": PROTOCOL_VERSION})
        await writer.drain()
        received = await asyncio.wait_for(read_frame(reader), timeout=timeout)
        if received is None:
            raise ProtocolError("server closed the connection mid-handshake")
        frame, _ = received
        if frame["type"] == "error":
            raise RemoteQueryError(
                frame.get("code", "protocol"), frame.get("message", "")
            )
        if frame["type"] != "hello":
            raise ProtocolError(
                f"expected hello frame, got {frame['type']!r}"
            )
        return cls(reader, writer, frame)

    # ------------------------------------------------------------------
    async def query(self, *, qid: int | None = None, progress: bool = False,
                    **fields) -> QueryStream:
        """Submit one query; returns its :class:`QueryStream`.

        ``fields`` are :class:`~repro.serving.server.QueryRequest`
        fields (``algorithm=``, ``deadline=``, ``max_answers=``,
        ``subspace=``, ``constraint=`` as a JSON-able dict, ...).
        """
        if self._conn_error is not None:
            raise self._conn_error
        if self._closed:
            raise ProtocolError("client is closed")
        if qid is None:
            qid = self._next_qid
            self._next_qid += 1
        stream = QueryStream(self, qid)
        self._streams[qid] = stream
        frame = {"type": "query", "qid": qid, **fields}
        if progress:
            frame["progress"] = True
        await self._send(frame)
        return stream

    async def execute(self, **fields) -> RemoteResult:
        """Submit and wait for the terminal result in one call."""
        stream = await self.query(**fields)
        return await stream.result()

    async def metrics(self, *, timeout: float = 10.0) -> dict:
        """Fetch the server's metrics snapshot (including ``net``)."""
        waiter = asyncio.get_running_loop().create_future()
        self._metrics_waiters.append(waiter)
        await self._send({"type": "metrics"})
        return await asyncio.wait_for(waiter, timeout=timeout)

    async def close(self) -> None:
        """Close the connection (server cancels in-flight queries)."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
        self._fail_pending(ProtocolError("connection closed"))

    # ------------------------------------------------------------------
    async def _send(self, frame: dict) -> None:
        write_frame(self._writer, frame)
        await self._writer.drain()

    async def _read_loop(self) -> None:
        try:
            while True:
                received = await read_frame(self._reader)
                if received is None:
                    self._fail_pending(
                        ProtocolError("server closed the connection")
                    )
                    return
                frame, _ = received
                self._dispatch(frame)
        except asyncio.CancelledError:
            raise
        except Exception as err:  # noqa: BLE001 - surface to waiters
            self._fail_pending(err)

    def _dispatch(self, frame: dict) -> None:
        kind = frame["type"]
        if kind == "metrics":
            for waiter in self._metrics_waiters:
                if not waiter.done():
                    waiter.set_result(frame.get("data", {}))
            self._metrics_waiters.clear()
            return
        qid = frame.get("qid")
        stream = self._streams.get(qid)
        if stream is not None:
            stream._on_frame(frame)
            if stream.done():
                self._streams.pop(qid, None)
        elif kind == "error" and qid is None:
            # Connection-level error (handshake/protocol): fail everything.
            self._fail_pending(
                RemoteQueryError(
                    frame.get("code", "protocol"), frame.get("message", "")
                )
            )

    def _fail_pending(self, error: BaseException) -> None:
        if self._conn_error is None:
            self._conn_error = error
        for stream in list(self._streams.values()):
            stream._resolve(
                error=RemoteQueryError(
                    "connection",
                    str(error),
                    points=list(stream.points),
                )
            )
        self._streams.clear()
        for waiter in self._metrics_waiters:
            if not waiter.done():
                waiter.set_exception(error)
        self._metrics_waiters.clear()
