"""Seeded multi-connection network benchmark (``repro net-bench``).

Drives a :class:`~repro.net.netserver.NetworkFrontend` with ``n``
concurrent client connections, each submitting an *open-loop* schedule
of queries (send times drawn up front from a seeded RNG, independent of
completions -- the arrival pattern a real service sees, where clients
do not politely wait for each other).  Per query it records the two
latencies the progressive-skyline literature treats as distinct:
**time-to-first-point** (QUERY frame to first POINTS frame) and
**time-to-done** (QUERY frame to terminal frame).  Their ratio is the
progressiveness headline: per-stratum streaming should put the first
answers on the wire long before the query completes.

A ``disconnect_rate`` turns the run into a chaos pass: that fraction of
queries is submitted and then has its connection hard-aborted
mid-stream, exercising the disconnect -> CancellationToken path under
load; the driver reconnects and keeps going.  The report asserts the
server came back to an idle, healthy state afterwards.

The benchmark can run **self-contained** (it builds the seeded dataset,
the :class:`~repro.serving.server.SkylineServer` and the frontend
in-process) or against an external ``repro serve`` instance via
``connect=(host, port)`` -- the CI smoke job uses the latter.  The
report is written with the canonical atomic artifact writer.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.bench.artifacts import write_artifact
from repro.exceptions import ProtocolError, RemoteQueryError
from repro.net.client import SkylineClient
from repro.serving.bench import DEFAULT_ALGORITHMS, _latency_summary, _percentile

__all__ = ["run_net_bench"]

#: Wall-clock cap on any single remote query (zero-hang guarantee: the
#: driver never waits longer than this on one stream).
QUERY_TIMEOUT = 120.0


async def _drive(
    host: str,
    port: int,
    *,
    connections: int,
    queries_per_connection: int,
    algorithms: tuple[str, ...],
    seed: int,
    arrival_rate: float,
    disconnect_rate: float,
) -> dict:
    samples: list[dict] = []
    disconnects = 0

    async def run_query(client_box: list, rng: random.Random, offset: float,
                        algorithm: str, chaos: bool) -> None:
        nonlocal disconnects
        await asyncio.sleep(offset)
        client = client_box[0]
        started = time.perf_counter()
        try:
            if chaos:
                stream = await client.query(algorithm=algorithm)
                # Wait for the stream to get going (first event or a
                # short seeded delay), then slam the connection shut.
                try:
                    await asyncio.wait_for(
                        stream._events.get(), timeout=0.05 + rng.random() * 0.1
                    )
                except asyncio.TimeoutError:
                    pass
                client._writer.transport.abort()
                disconnects += 1
                samples.append({"outcome": "disconnected"})
                try:
                    # Consume the abandoned stream's failure so the
                    # event loop doesn't log an unretrieved exception.
                    await asyncio.wait_for(stream.result(), timeout=5.0)
                except Exception:  # noqa: BLE001 - expected to fail
                    pass
                client_box[0] = await SkylineClient.connect(host, port)
                return
            stream = await client.query(algorithm=algorithm)
            result = await asyncio.wait_for(
                stream.result(), timeout=QUERY_TIMEOUT
            )
            samples.append(
                {
                    "outcome": "complete" if result.complete else "partial",
                    "algorithm": algorithm,
                    "points": len(result.points),
                    "point_frames": result.point_frames,
                    "ttfp": result.time_to_first_point,
                    "ttd": result.time_to_done,
                    "cached": result.cached,
                }
            )
        except RemoteQueryError as err:
            samples.append(
                {
                    "outcome": "error",
                    "code": err.code,
                    "algorithm": algorithm,
                    "ttd": time.perf_counter() - started,
                }
            )
            if err.code == "connection":
                # This stream rode a chaos-aborted connection; the next
                # queries use the reconnected client in the box.
                pass
        except ProtocolError:
            samples.append({"outcome": "error", "code": "connection"})

    async def one_connection(ci: int) -> None:
        rng = random.Random(seed * 100_003 + ci)
        client_box = [await SkylineClient.connect(host, port)]
        offset = 0.0
        tasks = []
        try:
            for _ in range(queries_per_connection):
                offset += (
                    rng.expovariate(arrival_rate) if arrival_rate > 0 else 0.0
                )
                algorithm = rng.choice(list(algorithms))
                chaos = rng.random() < disconnect_rate
                tasks.append(
                    asyncio.ensure_future(
                        run_query(client_box, rng, offset, algorithm, chaos)
                    )
                )
            await asyncio.gather(*tasks)
        finally:
            try:
                await client_box[0].close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    started = time.perf_counter()
    await asyncio.gather(*(one_connection(ci) for ci in range(connections)))
    elapsed = time.perf_counter() - started

    # Post-chaos health probe on a fresh connection: the server must be
    # reachable, idle (only this probe active) and fully healthy.
    probe = await SkylineClient.connect(host, port)
    snapshot = await probe.metrics()
    await probe.close()

    return {
        "samples": samples,
        "elapsed": elapsed,
        "disconnects": disconnects,
        "metrics": snapshot,
    }


def run_net_bench(
    size: int = 4000,
    connections: int = 8,
    queries_per_connection: int = 4,
    workers: int = 8,
    algorithms: tuple[str, ...] | None = None,
    kernel: str = "python",
    seed: int = 7,
    output: str | None = None,
    arrival_rate: float = 0.5,
    disconnect_rate: float = 0.0,
    connect: tuple[str, int] | None = None,
    assert_progressive: bool = False,
) -> dict:
    """Run the network benchmark; returns (and optionally writes) the report.

    Self-contained by default (seeded fig12a-style workload ->
    ``SkylineServer`` -> ``NetworkFrontend`` on an ephemeral port);
    ``connect=(host, port)`` drives an already-running ``repro serve``
    instead (``size``/``workers``/``kernel`` are then ignored).

    ``assert_progressive`` enforces the streaming contract on the
    measurements themselves: median time-to-first-point must be below
    0.5x median time-to-done, and multi-point queries must have arrived
    in more than one POINTS frame (per-stratum delivery, not one
    terminal batch).  Raises :class:`AssertionError` otherwise.
    """
    chosen = tuple(algorithms) if algorithms else DEFAULT_ALGORITHMS

    async def main() -> dict:
        frontend = None
        server = None
        if connect is not None:
            host, port = connect
        else:
            from repro.net.netserver import NetworkConfig, NetworkFrontend
            from repro.serving.server import SkylineServer
            from repro.transform.dataset import TransformedDataset
            from repro.workloads.config import WorkloadConfig
            from repro.workloads.generator import generate_workload

            config = WorkloadConfig.default(data_size=size, seed=seed)
            workload = generate_workload(config)
            dataset = TransformedDataset(
                workload.schema, workload.records, kernel=kernel
            )
            server = SkylineServer(dataset, workers=workers, warm=True)
            frontend = NetworkFrontend(server, NetworkConfig())
            host, port = await frontend.start()
        try:
            return await _drive(
                host,
                port,
                connections=connections,
                queries_per_connection=queries_per_connection,
                algorithms=chosen,
                seed=seed,
                arrival_rate=arrival_rate,
                disconnect_rate=disconnect_rate,
            )
        finally:
            if frontend is not None:
                await frontend.close()
            if server is not None:
                server.close()

    outcome = asyncio.run(main())
    samples = outcome["samples"]
    completed = [s for s in samples if s["outcome"] in ("complete", "partial")]
    streamed = [s for s in completed if s.get("ttfp") is not None]
    errors: dict[str, int] = {}
    for s in samples:
        if s["outcome"] == "error":
            errors[s["code"]] = errors.get(s["code"], 0) + 1

    ttd = [s["ttd"] for s in completed]
    ttfp = [s["ttfp"] for s in streamed]
    median_ttd = _percentile(ttd, 0.50)
    median_ttfp = _percentile(ttfp, 0.50)
    multi_point = [s for s in streamed if s["points"] > 1 and not s["cached"]]
    multi_frame = [s for s in multi_point if s["point_frames"] > 1]

    net = outcome["metrics"].get("net", {})
    overload_mode = outcome["metrics"].get("overload", {}).get("mode")
    report = {
        "bench": "net_bench",
        "config": {
            "size": None if connect is not None else size,
            "connections": connections,
            "queries_per_connection": queries_per_connection,
            "workers": None if connect is not None else workers,
            "kernel": None if connect is not None else kernel,
            "seed": seed,
            "algorithms": list(chosen),
            "arrival_rate": arrival_rate,
            "disconnect_rate": disconnect_rate,
            "remote": connect is not None,
        },
        "queries": len(samples),
        "completed": len(completed),
        "errors": errors,
        "disconnects": outcome["disconnects"],
        "elapsed_seconds": round(outcome["elapsed"], 6),
        "throughput_qps": round(len(completed) / outcome["elapsed"], 6)
        if outcome["elapsed"] > 0
        else 0.0,
        "time_to_done": _latency_summary(ttd),
        "time_to_first_point": _latency_summary(ttfp),
        "progressiveness": {
            "median_ttfp_seconds": round(median_ttfp, 6),
            "median_ttd_seconds": round(median_ttd, 6),
            "ratio": round(median_ttfp / median_ttd, 6) if median_ttd else 0.0,
            "multi_point_queries": len(multi_point),
            "multi_frame_queries": len(multi_frame),
        },
        "server": {
            "mode": overload_mode,
            "active_connections": net.get("connections", {}).get("active"),
            "net": net,
        },
    }

    if assert_progressive:
        if not completed:
            raise AssertionError("no queries completed; nothing to assert on")
        if median_ttd > 0 and not median_ttfp < 0.5 * median_ttd:
            raise AssertionError(
                f"not progressive: median ttfp {median_ttfp:.6f}s is not "
                f"< 0.5x median ttd {median_ttd:.6f}s"
            )
        if multi_point and not multi_frame:
            raise AssertionError(
                "multi-point queries arrived as single terminal batches"
            )
    if overload_mode is not None and overload_mode != "healthy":
        raise AssertionError(
            f"server did not return to healthy after the run "
            f"(mode={overload_mode!r})"
        )

    if output is not None:
        write_artifact(output, report)
    return report
