"""JSON persistence for posets, schemas and workloads.

Lets generated experiment inputs be saved, shared and re-queried (e.g.
through the ``python -m repro`` CLI) without regenerating them.  Domain
values and record ids must be JSON-representable scalars (str / int /
float / bool); set-valued domains serialise their element tokens the same
way.  Numeric payloads must be finite -- JSON has no NaN/Infinity
literals, and a non-finite total would silently poison every dominance
comparison downstream.  Structural problems (missing keys, wrong types)
raise a typed :class:`~repro.exceptions.InputFormatError` naming the
offending key instead of leaking a raw ``KeyError``.
"""

from __future__ import annotations

import json
import math
from functools import wraps
from pathlib import Path
from typing import Any

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import InputFormatError, ReproError
from repro.posets.poset import Poset
from repro.posets.setvalued import SetValuedDomain

__all__ = [
    "poset_to_dict",
    "poset_from_dict",
    "schema_to_dict",
    "schema_from_dict",
    "records_to_list",
    "records_from_list",
    "save_workload",
    "load_workload",
]

_SCALARS = (str, int, float, bool)


def _check_scalar(value: Any, what: str) -> Any:
    if not isinstance(value, _SCALARS):
        raise InputFormatError(f"{what} {value!r} is not JSON-serialisable")
    if isinstance(value, float) and not math.isfinite(value):
        raise InputFormatError(f"{what} {value!r} is not finite")
    return value


def _check_total(value: Any, what: str) -> float:
    try:
        finite = math.isfinite(value)
    except TypeError:
        raise InputFormatError(f"{what} {value!r} is not numeric") from None
    if not finite:
        raise InputFormatError(f"{what} {value!r} is not finite")
    return value


def _typed_key_errors(func):
    """Turn ``KeyError``/``TypeError`` on malformed input into
    :class:`~repro.exceptions.InputFormatError` naming the missing key."""

    @wraps(func)
    def wrapper(data):
        try:
            return func(data)
        except KeyError as err:
            raise InputFormatError(
                f"malformed input for {func.__name__}", key=err.args[0]
            ) from err
        except (TypeError, AttributeError) as err:
            raise InputFormatError(
                f"malformed input for {func.__name__}: {err}"
            ) from err

    return wrapper


# ---------------------------------------------------------------------------
# Posets
# ---------------------------------------------------------------------------
def poset_to_dict(poset: Poset) -> dict:
    """Serialise a poset (values + cover edges)."""
    return {
        "values": [_check_scalar(v, "poset value") for v in poset.values],
        "edges": [
            [_check_scalar(v, "poset value"), _check_scalar(w, "poset value")]
            for v, w in poset.edges()
        ],
    }


@_typed_key_errors
def poset_from_dict(data: dict) -> Poset:
    """Inverse of :func:`poset_to_dict`."""
    return Poset(data["values"], [tuple(edge) for edge in data["edges"]])


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> dict:
    """Serialise a schema including poset domains and set assignments."""
    attrs: list[dict] = []
    for attr in schema.attributes:
        if isinstance(attr, NumericAttribute):
            attrs.append(
                {"kind": "numeric", "name": attr.name, "direction": attr.direction}
            )
        else:
            entry: dict = {
                "kind": "poset",
                "name": attr.name,
                "poset": poset_to_dict(attr.poset),
                "set_domain": None,
            }
            if attr.set_domain is not None:
                entry["set_domain"] = {
                    str(json.dumps(_check_scalar(v, "poset value"))): sorted(
                        attr.set_domain.set_of(v), key=repr
                    )
                    for v in attr.poset.values
                }
            attrs.append(entry)
    return {"attributes": attrs}


@_typed_key_errors
def schema_from_dict(data: dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    attrs: list[NumericAttribute | PosetAttribute] = []
    for entry in data["attributes"]:
        if entry["kind"] == "numeric":
            attrs.append(NumericAttribute(entry["name"], entry["direction"]))
        elif entry["kind"] == "poset":
            poset = poset_from_dict(entry["poset"])
            set_domain = None
            if entry.get("set_domain") is not None:
                sets = {
                    json.loads(key): frozenset(elements)
                    for key, elements in entry["set_domain"].items()
                }
                set_domain = SetValuedDomain(poset, sets)
            attrs.append(PosetAttribute(entry["name"], poset, set_domain))
        else:
            raise ReproError(f"unknown attribute kind {entry.get('kind')!r}")
    return Schema(attrs)


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------
def records_to_list(records: list[Record]) -> list[dict]:
    """Serialise records (payloads are not persisted)."""
    return [
        {
            "rid": _check_scalar(r.rid, "record id"),
            "totals": [_check_total(v, "record total") for v in r.totals],
            "partials": [_check_scalar(v, "poset value") for v in r.partials],
        }
        for r in records
    ]


@_typed_key_errors
def records_from_list(data: list[dict]) -> list[Record]:
    """Inverse of :func:`records_to_list`."""
    return [
        Record(
            entry["rid"],
            tuple(_check_total(v, "record total") for v in entry["totals"]),
            tuple(entry["partials"]),
        )
        for entry in data
    ]


# ---------------------------------------------------------------------------
# Whole workloads
# ---------------------------------------------------------------------------
def save_workload(path: str | Path, schema: Schema, records: list[Record]) -> None:
    """Write ``{schema, records}`` as JSON to ``path``."""
    payload = {
        "format": "repro-workload",
        "version": 1,
        "schema": schema_to_dict(schema),
        "records": records_to_list(records),
    }
    Path(path).write_text(json.dumps(payload))


def load_workload(path: str | Path) -> tuple[Schema, list[Record]]:
    """Inverse of :func:`save_workload`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-workload":
        raise ReproError(f"{path} is not a repro workload file")
    return schema_from_dict(payload["schema"]), records_from_list(payload["records"])
