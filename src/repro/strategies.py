"""Hypothesis strategies for property-based testing against this library.

Shipped as part of the public API so downstream users can fuzz their own
skyline-adjacent code with structurally valid posets, schemas and
records; this repository's own test suite builds on the same generators.

Requires the optional ``hypothesis`` dependency (``pip install
repro[test]``).

Example
-------
>>> from hypothesis import given
>>> from repro.strategies import datasets
>>> from repro.reference import reference_skyline
>>> @given(datasets())
... def test_my_evaluator(data):
...     schema, records = data
...     assert my_skyline(schema, records) == reference_skyline(schema, records)
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.posets.poset import Poset

__all__ = ["posets", "schemas", "records_for", "datasets"]


@st.composite
def posets(draw, max_nodes: int = 12, max_height: int = 4) -> Poset:
    """Random DAG posets with adjacent-level (Hasse) edges."""
    n = draw(st.integers(1, max_nodes))
    height = draw(st.integers(1, min(max_height, n)))
    levels = [0] + [draw(st.integers(0, height - 1)) for _ in range(n - 1)]
    edges = []
    for i in range(n):
        for j in range(n):
            if levels[j] == levels[i] + 1 and draw(st.booleans()):
                edges.append((i, j))
    return Poset(range(n), edges)


@st.composite
def schemas(
    draw,
    max_total: int = 3,
    max_partial: int = 2,
    set_valued: bool | None = None,
) -> Schema:
    """Random mixed schemas with at least one attribute."""
    num_total = draw(st.integers(0, max_total))
    min_partial = 0 if num_total else 1
    num_partial = draw(st.integers(min_partial, max_partial))
    attrs: list[NumericAttribute | PosetAttribute] = []
    for k in range(num_total):
        direction = draw(st.sampled_from(["min", "max"]))
        attrs.append(NumericAttribute(f"t{k}", direction))
    for k in range(num_partial):
        poset = draw(posets())
        use_sets = (
            draw(st.booleans()) if set_valued is None else set_valued
        )
        if use_sets:
            attrs.append(PosetAttribute.set_valued(f"p{k}", poset))
        else:
            attrs.append(PosetAttribute(f"p{k}", poset))
    return Schema(attrs)


@st.composite
def records_for(draw, schema: Schema, max_records: int = 40) -> list[Record]:
    """Random record lists valid for ``schema``."""
    n = draw(st.integers(0, max_records))
    out = []
    for i in range(n):
        totals = tuple(
            draw(st.integers(0, 12)) for _ in range(schema.num_total)
        )
        partials = tuple(
            attr.poset.value(draw(st.integers(0, len(attr.poset) - 1)))
            for attr in schema.partial_attrs
        )
        out.append(Record(i, totals, partials))
    return out


@st.composite
def datasets(draw, max_records: int = 40) -> tuple[Schema, list[Record]]:
    """``(schema, records)`` pairs ready for any evaluator."""
    schema = draw(schemas())
    records = draw(records_for(schema, max_records=max_records))
    return schema, records
