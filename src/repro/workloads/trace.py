"""Seeded workload traces: arrival processes for replay experiments.

A :class:`WorkloadTrace` is a deterministic list of timestamped query
submissions -- *when* each query arrives and *what* it asks for -- kept
separate from the data workload (:mod:`repro.workloads.generator`
produces the records; the trace produces the request stream against
them).  Three arrival processes cover the load shapes a serving layer
must survive (``docs/overload.md``):

``poisson``
    Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival
    times at a constant mean ``rate``.  The steady-state baseline.
``bursty``
    An on/off modulated Poisson process: the source alternates between
    *on* phases (arrivals at ``rate * burst_factor``) and *off* phases
    (a trickle at ``rate * idle_factor``), phase lengths themselves
    exponential.  Mean load can be well under capacity while bursts
    exceed it several-fold -- the load-shedding stress case.
``diurnal``
    A nonhomogeneous Poisson process with a sinusoidal intensity (one
    full "day" over the trace duration), sampled by Lewis-Shedler
    thinning: draw candidates at the peak intensity, keep each with
    probability ``lambda(t) / lambda_max``.  Models the slow
    peak/trough cycle capacity planning is done against.

Every generator is seeded: the same ``(scenario, duration, rate, seed)``
reproduces the identical schedule bit-for-bit, which is what lets a
failing replay (or a chaos run layered over one) be replayed exactly.
Request *shapes* (algorithm, priority, deadline) are drawn from the same
seeded RNG, after the arrival sampling, so arrivals and shapes are
independently reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.exceptions import WorkloadError

__all__ = ["TraceRequest", "WorkloadTrace", "generate_trace", "SCENARIOS"]

#: Supported arrival scenarios, in canonical order.
SCENARIOS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class TraceRequest:
    """One scheduled query submission.

    ``at`` is the arrival offset in seconds from trace start; the
    remaining fields parameterize the
    :class:`~repro.serving.server.QueryRequest` the replayer submits.
    """

    at: float
    algorithm: str = "sdc+"
    priority: int = 0
    deadline: float | None = None
    idempotent: bool = True


@dataclass(frozen=True)
class WorkloadTrace:
    """A deterministic arrival schedule (sorted by ``at``)."""

    scenario: str
    seed: int
    duration: float
    rate: float
    events: tuple[TraceRequest, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def scaled(self, multiplier: float) -> "WorkloadTrace":
        """The same trace compressed to ``multiplier`` times the rate.

        Time-compression (dividing every arrival offset) keeps the
        request sequence and its relative structure identical across
        multipliers, so a capacity envelope varies exactly one thing:
        offered load.
        """
        if multiplier <= 0:
            raise WorkloadError("rate multiplier must be positive")
        if multiplier == 1.0:
            return self
        return WorkloadTrace(
            scenario=self.scenario,
            seed=self.seed,
            duration=self.duration / multiplier,
            rate=self.rate * multiplier,
            events=tuple(
                replace(e, at=e.at / multiplier) for e in self.events
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadTrace({self.scenario!r}, seed={self.seed}, "
            f"{len(self.events)} arrivals over {self.duration:.3g}s)"
        )


def _poisson_arrivals(rng: random.Random, duration: float,
                      rate: float) -> list[float]:
    times = []
    t = rng.expovariate(rate)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate)
    return times


def _bursty_arrivals(rng: random.Random, duration: float, rate: float,
                     burst_factor: float, idle_factor: float,
                     mean_on: float, mean_off: float) -> list[float]:
    times: list[float] = []
    t = 0.0
    on = False  # start idle, so the first burst onset lands mid-trace
    while t < duration:
        phase = rng.expovariate(1.0 / (mean_on if on else mean_off))
        phase_rate = rate * (burst_factor if on else idle_factor)
        end = min(t + phase, duration)
        if phase_rate > 0:
            at = t + rng.expovariate(phase_rate)
            while at < end:
                times.append(at)
                at += rng.expovariate(phase_rate)
        t = end
        on = not on
    return times


def _diurnal_arrivals(rng: random.Random, duration: float,
                      rate: float) -> list[float]:
    # lambda(t) = rate * (1 + sin(2*pi*t/duration - pi/2)):
    # trough (0) at t=0, peak (2*rate) mid-trace, mean exactly `rate`.
    lam_max = 2.0 * rate
    times = []
    t = rng.expovariate(lam_max)
    while t < duration:
        lam = rate * (1.0 + math.sin(2.0 * math.pi * t / duration - math.pi / 2.0))
        if rng.random() < lam / lam_max:
            times.append(t)
        t += rng.expovariate(lam_max)
    return times


def generate_trace(
    scenario: str = "poisson",
    *,
    duration: float = 10.0,
    rate: float = 20.0,
    seed: int = 7,
    algorithms: tuple[str, ...] = ("sdc+",),
    deadline: float | None = None,
    deadline_fraction: float = 0.25,
    priority_levels: int = 3,
    burst_factor: float = 5.0,
    idle_factor: float = 0.2,
    mean_on: float = 1.0,
    mean_off: float = 3.0,
) -> WorkloadTrace:
    """Generate one deterministic arrival trace.

    Parameters
    ----------
    scenario:
        ``"poisson"``, ``"bursty"`` or ``"diurnal"`` (see module docs).
    duration / rate:
        Trace length (seconds) and mean arrival rate (queries/second).
        Every scenario is normalized to the same *mean* rate, so the
        multipliers of a capacity sweep are comparable across scenarios.
    seed:
        Seeds the private RNG; same arguments, same schedule, always.
    algorithms:
        Request algorithms, drawn uniformly per arrival.
    deadline / deadline_fraction:
        When ``deadline`` is set, that fraction of requests (seeded
        draw) carries it as an end-to-end deadline -- the prey of the
        ``deadline`` shedding policy.
    priority_levels:
        Requests draw a priority uniformly from ``[0, levels)``.
    burst_factor / idle_factor / mean_on / mean_off:
        Bursty-scenario shape: on-phase rate multiplier, off-phase rate
        multiplier, and the mean phase lengths (seconds).
    """
    if scenario not in SCENARIOS:
        raise WorkloadError(
            f"unknown trace scenario {scenario!r}; expected one of {SCENARIOS}"
        )
    if duration <= 0 or rate <= 0:
        raise WorkloadError("duration and rate must be positive")
    if not algorithms:
        raise WorkloadError("at least one algorithm is required")
    if priority_levels < 1:
        raise WorkloadError("priority_levels must be positive")
    rng = random.Random(seed)
    if scenario == "poisson":
        times = _poisson_arrivals(rng, duration, rate)
    elif scenario == "bursty":
        times = _bursty_arrivals(
            rng, duration, rate, burst_factor, idle_factor, mean_on, mean_off
        )
    else:
        times = _diurnal_arrivals(rng, duration, rate)
    events = []
    for t in times:
        algorithm = algorithms[rng.randrange(len(algorithms))]
        priority = rng.randrange(priority_levels)
        dl = None
        if deadline is not None and rng.random() < deadline_fraction:
            dl = deadline
        events.append(
            TraceRequest(
                at=t, algorithm=algorithm, priority=priority, deadline=dl
            )
        )
    return WorkloadTrace(
        scenario=scenario,
        seed=seed,
        duration=duration,
        rate=rate,
        events=tuple(events),
    )
