"""Synthetic workloads reproducing the paper's experimental data sets."""

from repro.workloads.numeric import (
    anti_correlated,
    correlated,
    independent,
    numeric_columns,
)
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import GeneratedWorkload, generate_workload
from repro.workloads.trace import (
    SCENARIOS,
    TraceRequest,
    WorkloadTrace,
    generate_trace,
)

__all__ = [
    "independent",
    "correlated",
    "anti_correlated",
    "numeric_columns",
    "WorkloadConfig",
    "GeneratedWorkload",
    "generate_workload",
    "SCENARIOS",
    "TraceRequest",
    "WorkloadTrace",
    "generate_trace",
]
