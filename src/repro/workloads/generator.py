"""End-to-end workload generation: config -> (schema, records).

Each partially-ordered attribute gets its own random poset (distinct seed
per attribute) with the canonical set-valued representation attached, so
native comparisons exercise real set containment as in the paper.  Each
record draws one uniformly random node per poset attribute ("a value is
selected by randomly choosing a node from its domain's poset") and
correlated/independent/anti-correlated integers for the numeric
attributes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.posets.generator import generate_poset
from repro.workloads.config import WorkloadConfig
from repro.workloads.numeric import numeric_columns

__all__ = ["GeneratedWorkload", "generate_workload"]


class GeneratedWorkload:
    """A generated schema + record list, with its config for provenance."""

    __slots__ = ("config", "schema", "records")

    def __init__(self, config: WorkloadConfig, schema: Schema, records: list[Record]) -> None:
        self.config = config
        self.schema = schema
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeneratedWorkload(n={len(self.records)}, schema={self.schema!r})"


def generate_workload(config: WorkloadConfig) -> GeneratedWorkload:
    """Materialise the workload described by ``config``."""
    config.validate()
    n = config.data_size

    attributes: list[NumericAttribute | PosetAttribute] = [
        NumericAttribute(f"t{k}", "min") for k in range(config.num_total)
    ]
    posets = []
    for k in range(config.num_partial):
        poset = generate_poset(replace(config.poset, seed=config.poset.seed + 101 * k))
        posets.append(poset)
        attributes.append(PosetAttribute.set_valued(f"p{k}", poset))
    schema = Schema(attributes)

    totals = numeric_columns(config.correlation, n, config.num_total, seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    partial_columns = [
        rng.integers(0, len(poset), size=n) for poset in posets
    ]

    records: list[Record] = []
    for i in range(n):
        record_totals = tuple(int(v) for v in totals[i]) if config.num_total else ()
        record_partials = tuple(
            posets[k].value(int(partial_columns[k][i]))
            for k in range(config.num_partial)
        )
        records.append(Record(i, record_totals, record_partials))
    return GeneratedWorkload(config, schema, records)
