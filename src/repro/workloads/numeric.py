"""Totally-ordered attribute generation (after Börzsönyi et al., ICDE'01).

The paper uses "integer values from the domain (0, 1000], where values are
generated as described in [4] with possible correlation among different
attributes".  Three families:

* **independent** -- each dimension uniform on the domain;
* **correlated** -- values scatter tightly around a per-record base level,
  so a record good in one dimension tends to be good in all (small
  skylines);
* **anti-correlated** -- values are spread around a hyperplane of roughly
  constant sum, so a record good in one dimension is bad in another
  (large skylines).

All generators are deterministic given the seed and return integer arrays
in ``[1, 1000]``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError

__all__ = ["independent", "correlated", "anti_correlated", "numeric_columns"]

DOMAIN_MAX = 1000


def _check(n: int, dims: int) -> None:
    if n < 0:
        raise WorkloadError("n must be non-negative")
    if dims < 0:
        raise WorkloadError("dims must be non-negative")


def _to_domain(unit: np.ndarray) -> np.ndarray:
    """Map unit-interval floats onto the integer domain [1, 1000]."""
    clipped = np.clip(unit, 0.0, 1.0 - 1e-12)
    return (clipped * DOMAIN_MAX).astype(np.int64) + 1


def independent(n: int, dims: int, seed: int = 0) -> np.ndarray:
    """Uniform, independently drawn values; shape ``(n, dims)``."""
    _check(n, dims)
    rng = np.random.default_rng(seed)
    return _to_domain(rng.random((n, dims)))


def correlated(n: int, dims: int, seed: int = 0, spread: float = 0.07) -> np.ndarray:
    """Values clustered around a per-record base level; shape ``(n, dims)``."""
    _check(n, dims)
    rng = np.random.default_rng(seed)
    base = rng.random((n, 1))
    noise = rng.normal(0.0, spread, (n, dims))
    return _to_domain(base + noise)


def anti_correlated(
    n: int, dims: int, seed: int = 0, plane_spread: float = 0.08
) -> np.ndarray:
    """Values spread across a roughly constant-sum hyperplane.

    Each record gets a plane position ``c ~ N(0.5, plane_spread)``; the
    dimension values are uniform draws recentred so their mean is ``c``,
    which makes the dimensions strongly negatively correlated (a good
    value in one dimension forces bad values elsewhere).
    """
    _check(n, dims)
    rng = np.random.default_rng(seed)
    if dims == 0:
        return np.empty((n, 0), dtype=np.int64)
    c = rng.normal(0.5, plane_spread, (n, 1))
    u = rng.random((n, dims))
    recentred = u - u.mean(axis=1, keepdims=True) + c
    return _to_domain(recentred)


def numeric_columns(
    correlation: str, n: int, dims: int, seed: int = 0
) -> np.ndarray:
    """Dispatch by correlation name (``independent`` / ``correlated`` /
    ``anti-correlated``)."""
    key = correlation.lower().replace("_", "-")
    if key == "independent":
        return independent(n, dims, seed)
    if key == "correlated":
        return correlated(n, dims, seed)
    if key in ("anti-correlated", "anticorrelated"):
        return anti_correlated(n, dims, seed)
    raise WorkloadError(f"unknown correlation {correlation!r}")
