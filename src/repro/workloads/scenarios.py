"""Named, realistic demo scenarios built on the public API.

The examples and integration tests share these builders; downstream users
get ready-made mixed-domain datasets that exercise every feature:

* :func:`hotel_catalogue` -- the paper's motivating domain: price and
  distance (MIN) plus a partially-ordered amenity-package attribute
  sampled from a generated poset, set-containment semantics.
* :func:`org_chart` -- categorical role hierarchies (the paper's second
  motivating example): a reporting DAG with a matrix-style double report,
  salary MIN + rank (higher dominates), reachability semantics.
* :func:`product_catalogue` -- price/weight MIN plus a feature-pack
  poset; used by the dynamic-updates example.
"""

from __future__ import annotations

import random

from repro.core.record import Record
from repro.core.schema import NumericAttribute, PosetAttribute, Schema
from repro.exceptions import WorkloadError
from repro.posets.generator import generate_poset
from repro.posets.poset import Poset

__all__ = ["hotel_catalogue", "org_chart", "product_catalogue", "ORG_REPORTING"]


def hotel_catalogue(
    num_hotels: int = 5000, seed: int = 2024
) -> tuple[Schema, list[Record]]:
    """Synthetic hotel table: price, distance and amenity packages."""
    if num_hotels < 0:
        raise WorkloadError("num_hotels must be non-negative")
    amenity_poset = generate_poset(num_nodes=120, height=5, num_trees=3, seed=seed)
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            NumericAttribute("distance_km", "min"),
            PosetAttribute.set_valued("amenities", amenity_poset),
        ]
    )
    rng = random.Random(seed)
    records = [
        Record(
            f"hotel-{i:05d}",
            (rng.randint(40, 800), round(rng.uniform(0.1, 25.0), 1)),
            (rng.randrange(len(amenity_poset)),),
        )
        for i in range(num_hotels)
    ]
    return schema, records


#: (superior, subordinate) reporting edges; "tooling-lead" reports into
#: both engineering and research, making the order a genuine DAG.
ORG_REPORTING: tuple[tuple[str, str], ...] = (
    ("president", "eng-head"),
    ("president", "fin-head"),
    ("president", "research-head"),
    ("eng-head", "backend-lead"),
    ("eng-head", "frontend-lead"),
    ("eng-head", "tooling-lead"),
    ("research-head", "tooling-lead"),
    ("research-head", "ml-lead"),
    ("backend-lead", "backend-dev"),
    ("frontend-lead", "frontend-dev"),
    ("tooling-lead", "tooling-dev"),
    ("ml-lead", "ml-dev"),
    ("fin-head", "accountant"),
)


def org_chart(
    num_employees: int = 200, seed: int = 11
) -> tuple[Schema, list[Record]]:
    """Synthetic employee table over the fixed reporting hierarchy."""
    if num_employees < 0:
        raise WorkloadError("num_employees must be non-negative")
    roles = sorted({r for edge in ORG_REPORTING for r in edge})
    rank = Poset(roles, ORG_REPORTING)
    schema = Schema(
        [
            NumericAttribute("salary", "min"),
            PosetAttribute("rank", rank),
        ]
    )
    rng = random.Random(seed)
    records = []
    for i in range(num_employees):
        role = rng.choice(roles)
        seniority = max(rank.levels) - rank.levels[rank.index(role)]
        salary = 80 + 60 * seniority + rng.randint(-20, 40)
        records.append(Record(f"emp-{i:04d}", (salary,), (role,)))
    return schema, records


def product_catalogue(
    num_products: int = 800, seed: int = 99
) -> tuple[Schema, list[Record]]:
    """Synthetic product table: price/weight plus feature packs."""
    if num_products < 0:
        raise WorkloadError("num_products must be non-negative")
    feature_packs = generate_poset(num_nodes=60, height=4, num_trees=2, seed=5)
    schema = Schema(
        [
            NumericAttribute("price", "min"),
            NumericAttribute("weight_g", "min"),
            PosetAttribute.set_valued("features", feature_packs),
        ]
    )
    rng = random.Random(seed)
    records = [
        Record(
            f"sku-{i:04d}",
            (rng.randint(20, 500), rng.randint(100, 3000)),
            (rng.randrange(len(feature_packs)),),
        )
        for i in range(num_products)
    ]
    return schema, records
