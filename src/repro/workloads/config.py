"""Workload configuration mirroring Table 1 of the paper.

=============================================  =========================
Parameter                                      Values (default first)
=============================================  =========================
``|A_total|``  totally-ordered attributes       2, 1, 4
``|A_partial|`` partially-ordered attributes    1, 2
attribute correlation                           independent, anti-corr.
poset size (# nodes)                            450, 1000
poset height (# levels)                         6, 13
data size (# points)                            500K, 1000K
=============================================  =========================

``data_size`` defaults to 500K as in the paper; the benchmark drivers
scale it down (pure-Python substitution, see DESIGN.md) via the
``REPRO_BENCH_N`` environment variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import WorkloadError
from repro.posets.generator import PosetGeneratorConfig, tall_poset_config

__all__ = ["WorkloadConfig"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Full description of one synthetic experiment input."""

    num_total: int = 2
    num_partial: int = 1
    correlation: str = "independent"
    data_size: int = 500_000
    poset: PosetGeneratorConfig = field(default_factory=PosetGeneratorConfig)
    seed: int = 7

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on inconsistent parameters."""
        if self.num_total < 0 or self.num_partial < 0:
            raise WorkloadError("attribute counts must be non-negative")
        if self.num_total + self.num_partial == 0:
            raise WorkloadError("at least one attribute is required")
        if self.data_size < 0:
            raise WorkloadError("data_size must be non-negative")
        self.poset.validate()

    # ------------------------------------------------------------------
    # Named variants, one per experiment of Section 5
    # ------------------------------------------------------------------
    def scaled(self, data_size: int) -> "WorkloadConfig":
        """Same workload with a different number of data points."""
        return replace(self, data_size=data_size)

    @classmethod
    def default(cls, **overrides) -> "WorkloadConfig":
        """Fig. 10(a): 2 numeric + 1 set-valued, independent, 450/6 poset."""
        return replace(cls(), **overrides)

    @classmethod
    def more_set_valued(cls, **overrides) -> "WorkloadConfig":
        """Fig. 10(b): 2 numeric + 2 set-valued attributes."""
        return replace(cls(num_partial=2), **overrides)

    @classmethod
    def more_numeric(cls, **overrides) -> "WorkloadConfig":
        """Fig. 10(c): 4 numeric + 1 set-valued attributes."""
        return replace(cls(num_total=4), **overrides)

    @classmethod
    def large_poset(cls, **overrides) -> "WorkloadConfig":
        """Fig. 11(a): poset grown to 1000 nodes."""
        return replace(
            cls(poset=PosetGeneratorConfig(num_nodes=1000)), **overrides
        )

    @classmethod
    def tall_poset(cls, **overrides) -> "WorkloadConfig":
        """Fig. 11(b): tall (13-level), relatively sparse poset."""
        return replace(cls(poset=tall_poset_config()), **overrides)

    @classmethod
    def large_dataset(cls, **overrides) -> "WorkloadConfig":
        """Fig. 12(a): data size doubled to 1000K points."""
        return replace(cls(data_size=1_000_000), **overrides)

    @classmethod
    def anti_correlated(cls, **overrides) -> "WorkloadConfig":
        """Fig. 12(b): anti-correlated totally-ordered attributes."""
        return replace(cls(correlation="anti-correlated"), **overrides)
