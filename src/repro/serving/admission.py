"""Deadline- and budget-aware admission control.

The point of admission control is to refuse work *before* it burns its
budget: a query whose estimated comparison bill already exceeds its
``max_comparisons`` budget, or whose calibrated latency exceeds its
deadline, is rejected with a typed
:class:`~repro.exceptions.AdmissionRejectedError` having executed **zero**
dominance comparisons, instead of being admitted, charged, and truncated
at the budget checkpoint mid-flight.

Estimation is two-phase:

* **Cold start** -- an analytic upper-bound: the expected skyline size of
  ``n`` points in ``d`` independent dimensions is
  ``(ln n)^(d-1) / (d-1)!`` (Bentley et al.), and window/scan algorithms
  compare every record against the surviving skyline, giving
  ``n * s(n, d)`` comparisons.  Crude, but it only has to be the right
  order of magnitude to stop obviously-hopeless queries.
* **Calibrated** -- an EWMA over the *observed* counter deltas and
  wall-clock of completed queries, per algorithm
  (:meth:`CostEstimator.observe`, fed by the server after every complete
  query).  Rates are normalized per ``n * log2(n)`` *work unit* rather
  than per record: skyline work grows super-linearly (sort-based
  pipelines pay the sort, window algorithms pay ``n * s(n)`` with a
  slowly-growing skyline), so a per-record rate learned on a small
  dataset systematically under-bills a large one.  Conditioning the rate
  on the dataset size this way lets one observation at ``n = 1000``
  price a ``n = 100_000`` query at the right growth order.  Once one
  query of an algorithm has finished, estimates track the live workload
  and the analytic bound retires.

The estimated counter delta is also priced through the
:class:`~repro.bench.costmodel.CostModel` (the paper's 2005-era disk/CPU
weights), so every admission decision records the modeled I/O + CPU bill
alongside the raw comparison count.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.bench.costmodel import CostModel
from repro.core.stats import ComparisonStats

__all__ = ["CostEstimate", "CostEstimator", "AdmissionDecision", "AdmissionController"]

#: Counter fields whose sum is "point-level dominance work" (must match
#: :attr:`~repro.core.stats.ComparisonStats.total_dominance_checks`).
_CHECK_FIELDS = ("m_dominance_point", "native_set", "native_closure", "native_numeric")


def _work_units(records: int) -> float:
    """Normalization basis for calibrated rates: ``n * log2(n)``.

    Clamped below by ``n`` so tiny datasets (``n < 2``) keep a sane
    positive denominator.
    """
    if records <= 0:
        return 0.0
    return records * max(1.0, math.log2(records))


def _analytic_skyline_size(n: int, dimensions: int) -> float:
    """Expected skyline size of ``n`` independent points in ``d`` dims."""
    if n <= 1:
        return float(n)
    k = max(1, min(dimensions, 8) - 1)
    size = (math.log(n) ** k) / math.factorial(k)
    return min(max(size, 1.0), float(n))


def _profile_key(algorithm: str, shape) -> str:
    """Calibration bucket for an (algorithm, query shape) pair.

    Full-space skylines keep the bare algorithm key (so existing
    calibration and tests are untouched); shaped queries get their own
    per-kind profile -- a constrained scan and a full-space scan of the
    same algorithm have very different bills, and mixing them into one
    EWMA would bias both.
    """
    if shape is None or shape.kind == "skyline":
        return algorithm.lower()
    return f"{algorithm.lower()}|{shape.kind}"


@dataclass(frozen=True)
class CostEstimate:
    """Predicted bill of one query, produced before it runs.

    Attributes
    ----------
    algorithm / records:
        What is being estimated, over how many records.
    comparisons:
        Predicted point-level dominance comparisons (the quantity a
        ``max_comparisons`` budget is charged against).
    counters:
        Predicted full counter delta (keys from
        :class:`~repro.core.stats.ComparisonStats`), used for the cost
        model pricing.
    model_ms:
        The delta priced through the
        :class:`~repro.bench.costmodel.CostModel` (modeled 2005-era
        milliseconds, I/O + CPU).
    seconds:
        Calibrated wall-clock EWMA for this algorithm, ``None`` until
        one query has completed (wall-clock is machine-dependent, so
        only measured values are trusted against deadlines).
    calibrated:
        ``False`` while the estimate rests on the analytic cold-start
        bound.
    """

    algorithm: str
    records: int
    comparisons: float
    counters: dict = field(default_factory=dict)
    model_ms: float = 0.0
    seconds: float | None = None
    calibrated: bool = False


class _Profile:
    """EWMA of per-``n log n``-unit counter/seconds rates for one algorithm."""

    __slots__ = ("per_unit", "seconds_per_unit", "samples")

    def __init__(self) -> None:
        self.per_unit: dict[str, float] = {}
        self.seconds_per_unit = 0.0
        self.samples = 0


class CostEstimator:
    """Cold-start analytic + calibrated EWMA query-cost estimator."""

    def __init__(self, cost_model: CostModel | None = None, alpha: float = 0.3) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.alpha = alpha
        self._profiles: dict[str, _Profile] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(
        self, algorithm: str, records: int, counters: dict, seconds: float,
        shape=None,
    ) -> None:
        """Fold one *completed* query's measured bill into the EWMA.

        ``counters`` is the query's counter delta (e.g.
        ``ComparisonStats.snapshot()`` of its private bundle); partial
        or failed queries must not be observed -- their truncated bills
        would bias the estimate low and let over-budget queries sneak
        past admission.  Rates are stored per ``n * log2(n)`` unit so
        observations taken at one dataset size extrapolate to another
        (see the module docstring).  ``shape`` (a
        :class:`~repro.views.keys.QueryShape`) routes shaped queries to
        their own per-kind calibration profile.
        """
        if records <= 0:
            return
        units = _work_units(records)
        with self._lock:
            profile = self._profiles.setdefault(
                _profile_key(algorithm, shape), _Profile()
            )
            alpha = self.alpha if profile.samples else 1.0
            for name, value in counters.items():
                rate = value / units
                old = profile.per_unit.get(name, 0.0)
                profile.per_unit[name] = old + alpha * (rate - old)
            rate = seconds / units
            profile.seconds_per_unit += alpha * (rate - profile.seconds_per_unit)
            profile.samples += 1

    def estimate(
        self, algorithm: str, records: int, dimensions: int, shape=None
    ) -> CostEstimate:
        """Predict the bill of running ``algorithm`` over ``records`` rows.

        ``shape`` conditions the estimate on the query's
        :class:`~repro.views.keys.QueryShape`: calibrated rates come
        from the per-``(algorithm, kind)`` profile, and the analytic
        cold-start bound is adjusted -- a subspace query's skyline grows
        with the *projected* dimensionality, a ``k``-skyband answer (and
        therefore its window/heap work) scales roughly ``k``-fold, and a
        constrained query is bounded above by the unconstrained bill.
        """
        units = _work_units(records)
        with self._lock:
            profile = self._profiles.get(_profile_key(algorithm, shape))
            if profile is not None and profile.samples:
                counters = {
                    name: rate * units
                    for name, rate in profile.per_unit.items()
                }
                comparisons = sum(counters.get(f, 0.0) for f in _CHECK_FIELDS)
                return CostEstimate(
                    algorithm=algorithm,
                    records=records,
                    comparisons=comparisons,
                    counters=counters,
                    model_ms=self.cost_model.total_cost(counters),
                    seconds=profile.seconds_per_unit * units,
                    calibrated=True,
                )
        effective_dims = dimensions
        if shape is not None and shape.kind == "subspace":
            effective_dims = max(1, len(shape.subspace))
        comparisons = records * _analytic_skyline_size(records, effective_dims)
        if shape is not None and shape.kind == "skyband":
            # The k-skyband keeps every point dominated by fewer than k
            # others: answer (and window) size grows roughly k-fold.
            comparisons *= max(1, shape.k)
        comparisons = min(comparisons, float(records) * records)
        counters = {
            "m_dominance_point": comparisons,
            "tuples_scanned": float(records),
        }
        return CostEstimate(
            algorithm=algorithm,
            records=records,
            comparisons=comparisons,
            counters=counters,
            model_ms=self.cost_model.total_cost(counters),
            seconds=None,
            calibrated=False,
        )

    def profile_samples(self, algorithm: str, shape=None) -> int:
        """How many completed queries have calibrated ``algorithm``."""
        with self._lock:
            profile = self._profiles.get(_profile_key(algorithm, shape))
            return profile.samples if profile is not None else 0

    def peak_comparisons(self, records: int, dimensions: int) -> tuple[float, bool]:
        """Worst-case dominance-comparison estimate over any algorithm.

        The parallel partitioner sizes its work-stealing tasks from this
        (see :func:`repro.parallel.partition.plan_tasks`): it wants the
        heaviest plausible bill for ``records`` rows, not a per-query
        one, so it takes the max over every *calibrated full-space*
        profile (bare algorithm keys; shaped profiles describe
        constrained scans the fan-out never serves).  Returns
        ``(comparisons, calibrated)`` -- the analytic cold-start bound
        with ``calibrated=False`` when nothing has calibrated yet.
        """
        units = _work_units(records)
        best = 0.0
        with self._lock:
            for key, profile in self._profiles.items():
                if "|" in key or not profile.samples:
                    continue
                comparisons = units * sum(
                    profile.per_unit.get(f, 0.0) for f in _CHECK_FIELDS
                )
                best = max(best, comparisons)
        if best > 0.0:
            return min(best, float(records) * records), True
        return records * _analytic_skyline_size(records, dimensions), False


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``action`` is ``"admit"``, ``"deflect"`` (admit demoted to the back
    of the queue because the server is over its soft pending limit) or
    ``"reject"``; ``reason`` names the rejection/deflection cause
    (``"comparisons"``, ``"deadline"``, ``"capacity"``).
    """

    action: str
    reason: str | None
    estimate: CostEstimate


class AdmissionController:
    """Decides admit / deflect / reject for every submitted query.

    Parameters
    ----------
    estimator:
        The :class:`CostEstimator` consulted for the up-front bill (a
        fresh one when omitted).
    max_pending:
        Soft cap on queued (not yet running) queries.  Beyond it the
        ``overload_policy`` applies.
    hard_limit:
        Hard cap on queued queries (default ``2 * max_pending``); beyond
        it every query is rejected with reason ``"capacity"``.
    overload_policy:
        ``"deflect"`` (default): between the soft and hard limits,
        queries are admitted but demoted to the lowest priority --
        latency-tolerant work yields to the interactive tier instead of
        being dropped.  ``"reject"``: the soft limit already rejects.
    comparison_margin / deadline_margin:
        Safety multipliers applied to the estimate before comparing it
        with the request's budget/deadline (1.0 = trust the estimate).
    """

    def __init__(
        self,
        estimator: CostEstimator | None = None,
        max_pending: int = 64,
        hard_limit: int | None = None,
        overload_policy: str = "deflect",
        comparison_margin: float = 1.0,
        deadline_margin: float = 1.0,
    ) -> None:
        if overload_policy not in ("deflect", "reject"):
            from repro.exceptions import ServingError

            raise ServingError(f"unknown overload_policy {overload_policy!r}")
        self.estimator = estimator if estimator is not None else CostEstimator()
        self.max_pending = max_pending
        self.hard_limit = hard_limit if hard_limit is not None else 2 * max_pending
        self.overload_policy = overload_policy
        self.comparison_margin = comparison_margin
        self.deadline_margin = deadline_margin

    # ------------------------------------------------------------------
    def decide(self, request, dataset, queue_depth: int) -> AdmissionDecision:
        """Check one request against its budget, deadline and capacity.

        Pure decision logic -- never executes a dominance comparison and
        never raises; the server turns ``"reject"`` decisions into
        :class:`~repro.exceptions.AdmissionRejectedError`.
        """
        shape = request.shape() if hasattr(request, "shape") else None
        estimate = self.estimator.estimate(
            request.algorithm, len(dataset), dataset.dimensions, shape=shape
        )
        limit = request.max_comparisons
        if limit is not None and estimate.comparisons * self.comparison_margin > limit:
            return AdmissionDecision("reject", "comparisons", estimate)
        if (
            request.deadline is not None
            and estimate.seconds is not None
            and estimate.seconds * self.deadline_margin > request.deadline
        ):
            return AdmissionDecision("reject", "deadline", estimate)
        if queue_depth >= self.hard_limit:
            return AdmissionDecision("reject", "capacity", estimate)
        if queue_depth >= self.max_pending:
            if self.overload_policy == "deflect":
                return AdmissionDecision("deflect", "capacity", estimate)
            return AdmissionDecision("reject", "capacity", estimate)
        return AdmissionDecision("admit", None, estimate)

    def observe(self, algorithm: str, records: int, stats: ComparisonStats,
                seconds: float, shape=None) -> None:
        """Calibrate from one completed query's private counter bundle."""
        self.estimator.observe(
            algorithm, records, stats.snapshot(), seconds, shape=shape
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(max_pending={self.max_pending}, "
            f"hard_limit={self.hard_limit}, policy={self.overload_policy!r})"
        )
