"""Overload resilience: shedding, retries, breakers, degradation.

The admission controller (:mod:`repro.serving.admission`) refuses work
whose *individual* bill is hopeless, but it cannot defend the server
against *sustained* overload or repeated infrastructure failure: a burst
of perfectly-admissible queries still fills an unbounded queue, a
crashed process pool re-enters the same failing path on every large
query, and a dead worker thread strands its query forever.  This module
supplies the second line of defense, in four parts:

* :class:`BoundedQueryQueue` -- the server's priority queue, optionally
  bounded, with pluggable shedding policies.  ``"deadline"`` first
  drops queued queries whose end-to-end deadline already expired (they
  would only time out after wasting a worker), ``"priority"`` evicts
  the worst-priority queued entry when the newcomer outranks it, and
  ``"reject-newest"`` sheds the incoming query.  A shed query resolves
  with a typed :class:`~repro.exceptions.QueryShedError` carrying an
  empty partial -- trivially a prefix of the emission order.
* :class:`RetryPolicy` -- exponential backoff with seeded jitter, a
  bounded attempt count, an optional server-wide retry *budget* (so a
  correlated failure cannot trigger a retry storm), and an idempotency
  gate: only requests marked idempotent are ever retried.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  state machine, wrapped by the server around the parallel process-pool
  executor and the numpy batch kernel.  Repeated failures open the
  breaker and the server degrades *once* (serial / python-kernel) for
  the whole recovery window instead of re-paying the failure per query;
  a half-open probe re-tests the fast path and re-closes on success.
* :class:`DegradationLadder` -- the server's explicit degradation mode
  (``healthy -> serial_only -> cache_only -> rejecting``), driven by
  the watchdog thread in :class:`~repro.serving.server.SkylineServer`
  from live health signals (dead/stuck workers, open breakers) and
  stepped back down one rung at a time once signals stay clear for a
  recovery window.

Everything here is deterministic given its seed and injected clock, so
the chaos-replay suite can assert exact shedding/backoff/transition
behaviour.  See ``docs/overload.md`` for the guided tour.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.exceptions import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.server import QueryHandle

__all__ = [
    "SHED_POLICIES",
    "DEGRADATION_MODES",
    "BoundedQueryQueue",
    "RetryPolicy",
    "CircuitBreaker",
    "DegradationLadder",
    "OverloadConfig",
]

#: Recognized shedding policies of :class:`BoundedQueryQueue`.
SHED_POLICIES = ("deadline", "priority", "reject-newest")

#: The degradation ladder, mildest first.  ``healthy`` allows every
#: execution path; ``serial_only`` bypasses the parallel process pool;
#: ``cache_only`` serves only result-cache hits and rejects misses;
#: ``rejecting`` refuses all new queries.
DEGRADATION_MODES = ("healthy", "serial_only", "cache_only", "rejecting")

_MODE_RANK = {mode: rank for rank, mode in enumerate(DEGRADATION_MODES)}


# ---------------------------------------------------------------------------
# Bounded queue with shedding
# ---------------------------------------------------------------------------
class BoundedQueryQueue:
    """Priority queue of admitted queries with optional load shedding.

    Entries are ``(priority, seq, handle)`` -- lower priority runs
    sooner, FIFO within a priority -- exactly the ordering of the
    unbounded queue it replaces.  With ``capacity=None`` (the default)
    behaviour is identical to the old :class:`queue.PriorityQueue`;
    with a capacity, a full queue sheds according to ``policy``:

    ``"deadline"``
        Drop every queued query whose end-to-end deadline has already
        expired (reason ``"doomed-deadline"``) -- it could only time
        out after burning a worker.  When nothing is doomed, fall back
        to ``"priority"``.
    ``"priority"``
        Evict the worst queued entry -- highest ``(priority, seq)`` --
        when the newcomer outranks it (reason ``"lower-priority"``);
        otherwise shed the newcomer itself.
    ``"reject-newest"``
        Always shed the incoming query (reason ``"queue-full"``).

    ``on_shed(handle, reason)`` is invoked for every *queued* entry the
    policy drops (the server resolves the handle with a typed
    :class:`~repro.exceptions.QueryShedError` there); an incoming query
    that loses is reported by :meth:`put` returning a reason string and
    never touches the callback.

    Shutdown sentinels (:meth:`put_sentinel`) bypass the capacity so a
    full queue can never block :meth:`~SkylineServer.close`.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "deadline",
        on_shed: Callable[["QueryHandle", str], None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if policy not in SHED_POLICIES:
            raise ServingError(
                f"unknown shed policy {policy!r}; expected one of {SHED_POLICIES}"
            )
        if capacity is not None and capacity < 1:
            raise ServingError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.on_shed = on_shed
        self.clock = clock
        self._heap: list[tuple[float, int, "QueryHandle | None"]] = []
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return sum(1 for _, _, h in self._heap if h is not None)

    # ------------------------------------------------------------------
    def put(self, priority: float, seq: int, handle: "QueryHandle") -> str | None:
        """Enqueue one admitted query, shedding under pressure.

        Returns ``None`` when the query was enqueued, or the shed
        *reason* when the incoming query itself lost under the policy
        (the caller raises the typed error; nothing was enqueued).
        """
        shed: list[tuple["QueryHandle", str]] = []
        with self._cond:
            if self.capacity is not None and self._depth() >= self.capacity:
                verdict = self._make_room(priority, seq, shed)
                if verdict is not None:
                    # Still notify sheds collected before the newcomer lost.
                    self._notify_sheds(shed)
                    return verdict
            heapq.heappush(self._heap, (priority, seq, handle))
            self._cond.notify()
        self._notify_sheds(shed)
        return None

    def put_sentinel(self, seq: int) -> None:
        """Enqueue one shutdown sentinel (ignores the capacity bound)."""
        with self._cond:
            heapq.heappush(self._heap, (float("inf"), seq, None))
            self._cond.notify()

    def get(self) -> "QueryHandle | None":
        """Block for the next entry; ``None`` is a shutdown sentinel."""
        with self._cond:
            while not self._heap:
                self._cond.wait()
            _, _, handle = heapq.heappop(self._heap)
            return handle

    # ------------------------------------------------------------------
    def _depth(self) -> int:
        return sum(1 for _, _, h in self._heap if h is not None)

    def _make_room(
        self, priority: float, seq: int,
        shed: list[tuple["QueryHandle", str]],
    ) -> str | None:
        """Apply the policy to a full queue.  Caller holds the lock.

        Returns ``None`` when room was made for the newcomer, or the
        reason the newcomer itself should be shed.
        """
        if self.policy == "reject-newest":
            return "queue-full"
        if self.policy == "deadline":
            now = self.clock()
            doomed = [
                entry
                for entry in self._heap
                if entry[2] is not None and self._is_doomed(entry[2], now)
            ]
            if doomed:
                for entry in doomed:
                    self._heap.remove(entry)
                    shed.append((entry[2], "doomed-deadline"))
                heapq.heapify(self._heap)
                return None
            # Nothing doomed: fall through to priority shedding.
        worst = max(
            (entry for entry in self._heap if entry[2] is not None),
            key=lambda entry: (entry[0], entry[1]),
            default=None,
        )
        if worst is None or (priority, seq) >= (worst[0], worst[1]):
            return "queue-full" if self.policy == "reject-newest" else "lower-priority"
        self._heap.remove(worst)
        heapq.heapify(self._heap)
        shed.append((worst[2], "lower-priority"))
        return None

    @staticmethod
    def _is_doomed(handle: "QueryHandle", now: float) -> bool:
        deadline = handle.request.deadline
        if deadline is None:
            return False
        return now - handle.submitted_at >= deadline

    def _notify_sheds(self, shed: list[tuple["QueryHandle", str]]) -> None:
        if self.on_shed is not None:
            for handle, reason in shed:
                self.on_shed(handle, reason)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoundedQueryQueue(depth={len(self)}, capacity={self.capacity}, "
            f"policy={self.policy!r})"
        )


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
class RetryPolicy:
    """Exponential backoff with seeded jitter and a server-wide budget.

    Parameters
    ----------
    max_attempts:
        Total execution attempts per query (first try included), so
        ``max_attempts=3`` allows at most two retries.
    base_delay / multiplier / max_delay:
        The backoff schedule: retry ``k`` (0-based) sleeps
        ``min(max_delay, base_delay * multiplier**k)``, scaled by
        jitter.
    jitter:
        Fraction of the delay randomized away (``0.5`` draws uniformly
        from ``[0.5 * d, d]``).  The RNG is seeded, so the full delay
        sequence is reproducible.
    budget:
        Optional cap on the *total* retries this policy will ever grant
        (across all queries sharing it).  A correlated failure burns the
        budget once instead of amplifying itself into a retry storm;
        ``None`` means unbounded.
    seed:
        Seeds the jitter RNG.

    Only requests marked idempotent may retry -- re-running a read-only
    skyline query is always safe, but the gate keeps any future
    side-effecting request types from being silently re-executed.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.02,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        budget: int | None = None,
        seed: int = 7,
    ) -> None:
        if max_attempts < 1:
            raise ServingError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ServingError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.budget = budget
        self.seed = seed
        self.granted = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def grant(self, attempt: int, idempotent: bool = True) -> bool:
        """Whether retry number ``attempt`` (0-based) may proceed.

        Consumes one unit of the budget when granted, so callers must
        ask exactly once per contemplated retry.
        """
        if not idempotent:
            return False
        with self._lock:
            if attempt + 1 >= self.max_attempts:
                return False
            if self.budget is not None and self.granted >= self.budget:
                return False
            self.granted += 1
            return True

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter applied."""
        base = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        with self._lock:
            scale = 1.0 - self.jitter * self._rng.random()
        return base * scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, budget={self.budget}, "
            f"granted={self.granted})"
        )


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class CircuitBreaker:
    """Closed / open / half-open breaker around a failing fast path.

    *Closed* passes everything through and counts consecutive failures;
    ``failure_threshold`` consecutive failures open the breaker.  *Open*
    refuses (:meth:`allow` returns ``False`` -- the caller takes its
    degraded path without paying the failure) until ``recovery_time``
    has elapsed, then moves to *half-open* and admits a single probe.
    A successful probe re-closes the breaker; a failed one re-opens it
    and restarts the recovery clock.

    ``on_transition(name, old, new)`` (when given) observes every state
    change -- the server wires it to
    :meth:`~repro.serving.metrics.ServerMetrics.on_breaker`.  ``clock``
    is injectable so tests can drive recovery deterministically.
    """

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        recovery_time: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ServingError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.clock = clock
        self.on_transition = on_transition
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()
        self.transitions: list[tuple[str, str]] = []

    @property
    def state(self) -> str:
        """Current state (``"closed"`` / ``"open"`` / ``"half_open"``)."""
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the protected path may be attempted right now.

        In the open state, returns ``False`` until ``recovery_time``
        elapses, then transitions to half-open and admits exactly one
        in-flight probe (concurrent callers keep getting ``False``
        until that probe reports).
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self.clock() - self._opened_at < self.recovery_time:
                    return False
                self._transition("half_open")
                self._probing = True
                return True
            # half-open: one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """Report one successful use of the protected path."""
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._transition("closed")
            self._probing = False

    def record_failure(self) -> None:
        """Report one failure of the protected path."""
        with self._lock:
            if self._state == "half_open":
                self._probing = False
                self._opened_at = self.clock()
                self._transition("open")
                return
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._opened_at = self.clock()
                self._transition("open")

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        self.transitions.append((old, new))
        if self.on_transition is not None:
            self.on_transition(self.name, old, new)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker({self.name!r}, state={self._state!r}, "
            f"failures={self._failures})"
        )


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------
class DegradationLadder:
    """The server's explicit degradation mode, one rung at a time.

    Escalation (:meth:`escalate`) jumps straight to the signalled mode;
    recovery (:meth:`recover`) steps down exactly one rung per call, so
    the server re-earns each capability (parallel pool, computed
    queries, any queries at all) instead of flapping back to
    ``healthy`` and immediately re-failing.  ``on_transition(old, new,
    reason)`` observes every change.
    """

    def __init__(
        self,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self._mode = "healthy"
        self._lock = threading.Lock()
        self.on_transition = on_transition
        self.transitions: list[tuple[str, str, str]] = []

    @property
    def mode(self) -> str:
        """The current degradation mode."""
        with self._lock:
            return self._mode

    def at_least(self, mode: str) -> bool:
        """Whether the current mode is ``mode`` or worse."""
        with self._lock:
            return _MODE_RANK[self._mode] >= _MODE_RANK[mode]

    def escalate(self, mode: str, reason: str) -> bool:
        """Move to ``mode`` when it is worse than the current rung."""
        if mode not in _MODE_RANK:
            raise ServingError(f"unknown degradation mode {mode!r}")
        with self._lock:
            if _MODE_RANK[mode] <= _MODE_RANK[self._mode]:
                return False
            self._set(mode, reason)
            return True

    def recover(self, reason: str = "recovery-window-clear") -> bool:
        """Step one rung toward ``healthy``; ``False`` at the bottom."""
        with self._lock:
            rank = _MODE_RANK[self._mode]
            if rank == 0:
                return False
            self._set(DEGRADATION_MODES[rank - 1], reason)
            return True

    def _set(self, mode: str, reason: str) -> None:
        old, self._mode = self._mode, mode
        self.transitions.append((old, mode, reason))
        if self.on_transition is not None:
            self.on_transition(old, mode, reason)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DegradationLadder(mode={self.mode!r})"


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------
@dataclass
class OverloadConfig:
    """Tuning knobs for the server's overload-resilience layer.

    Parameters
    ----------
    queue_capacity:
        Bound on the admitted-but-not-running queue.  ``None`` keeps
        the queue unbounded (the admission controller's ``hard_limit``
        is then the only cap) -- the pre-overload behaviour.
    shed_policy:
        Shedding policy of :class:`BoundedQueryQueue` when the queue is
        bounded and full.
    retry:
        A :class:`RetryPolicy` for transient execution failures
        (kernel/index/pool errors), or ``None`` (default) to fail fast.
    breakers:
        Whether to wrap the parallel executor and the batch kernel in
        :class:`CircuitBreaker` instances.
    breaker_failures / breaker_recovery:
        Consecutive-failure threshold and open-state recovery window of
        both breakers.
    watchdog:
        Whether to run the watchdog thread (worker liveness, stuck
        detection, degradation-ladder driving).
    watchdog_interval:
        Seconds between watchdog sweeps.
    stuck_after:
        Flag an in-flight query as *stuck* after this many seconds
        (health signal for the ladder); ``None`` disables -- a
        legitimately long query is indistinguishable from a wedged one
        without a workload-specific bound.
    recovery_window:
        Seconds of continuously-clear health signals before the ladder
        steps down one rung.
    death_window / cache_only_deaths:
        A worker death within ``death_window`` seconds keeps the server
        at least ``serial_only``; ``cache_only_deaths`` deaths within
        the window escalate to ``cache_only``.
    update_lock_timeout:
        Timeout for the writer lock in ``insert`` / ``delete``
        (:class:`~repro.exceptions.LockTimeoutError` on expiry);
        ``None`` waits forever (the pre-overload behaviour).
    """

    queue_capacity: int | None = None
    shed_policy: str = "deadline"
    retry: RetryPolicy | None = None
    breakers: bool = True
    breaker_failures: int = 3
    breaker_recovery: float = 2.0
    watchdog: bool = True
    watchdog_interval: float = 0.1
    stuck_after: float | None = None
    recovery_window: float = 1.0
    death_window: float = 5.0
    cache_only_deaths: int = 2
    update_lock_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ServingError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ServingError("queue_capacity must be positive")
        if self.watchdog_interval <= 0:
            raise ServingError("watchdog_interval must be positive")
