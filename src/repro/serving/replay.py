"""Trace-driven replay: capacity envelopes under bursty load.

``repro replay`` (:func:`run_replay`) replays seeded arrival traces
(:mod:`repro.workloads.trace`) against a fresh
:class:`~repro.serving.server.SkylineServer` at a ladder of rate
multipliers, one server per (scenario, multiplier) cell.  A dispatcher
thread submits each request at its scheduled offset -- open-loop, like
real clients: arrivals do not slow down because the server is busy --
and every handle is then drained with a hang guard.  The per-cell report
(completed / shed / rejected / timeout / error counts, p50/p99 latency,
breaker transitions, worst degradation mode, recovery check) plotted
against the multiplier is the server's **capacity envelope**: the
offered load where latency knees, where shedding starts, and whether
the overload layer kept every failure typed (``hung`` must be zero
everywhere -- docs/overload.md).

With ``chaos_seed`` set, each cell also runs under deterministic fault
injection -- a worker-thread kill plus seeded kernel faults
(:mod:`repro.resilience.chaos`) -- turning the sweep into a chaos
replay: the envelope must additionally show the watchdog respawning
workers, retries absorbing transient faults, and the degradation ladder
returning to ``healthy`` after the fault window.
"""

from __future__ import annotations

import threading
import time

from repro.bench.artifacts import write_artifact
from repro.serving.overload import OverloadConfig, RetryPolicy
from repro.serving.server import QueryRequest, SkylineServer
from repro.workloads.trace import SCENARIOS, WorkloadTrace, generate_trace

__all__ = [
    "run_replay",
    "replay_trace",
    "saturation_knee",
    "compare_baseline",
    "DEFAULT_MULTIPLIERS",
]

#: Rate multipliers swept by default: below, at, and past saturation.
DEFAULT_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _overload_config(capacity: int | None, shed_policy: str,
                     seed: int) -> OverloadConfig:
    """The replay server's overload tuning.

    Deliberately twitchy -- fast watchdog, short death/recovery windows
    -- so a few seconds of trace are enough to observe the full
    degrade-and-recover cycle the invariants assert on.
    """
    return OverloadConfig(
        queue_capacity=capacity,
        shed_policy=shed_policy,
        retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=seed
        ),
        watchdog_interval=0.05,
        recovery_window=0.3,
        death_window=1.0,
        stuck_after=5.0,
    )


def replay_trace(
    server: SkylineServer,
    trace: WorkloadTrace,
    *,
    grace: float = 10.0,
) -> dict:
    """Replay one trace against ``server``; returns the cell stats.

    Open-loop dispatch: requests are submitted at their scheduled
    offsets regardless of server state.  After the last submission every
    outstanding handle is drained with a ``grace``-second hang guard --
    a handle that resolves neither then nor after ``close()`` counts in
    ``hung``, the invariant the overload layer must keep at zero.
    """
    handles = []
    submit_errors = {"rejected": 0, "shed": 0, "closed": 0}
    start = time.perf_counter()
    for event in trace.events:
        delay = (start + event.at) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        request = QueryRequest(
            algorithm=event.algorithm,
            priority=event.priority,
            deadline=event.deadline,
            idempotent=event.idempotent,
        )
        try:
            handles.append(server.submit(request))
        except Exception as err:
            name = type(err).__name__
            if name == "AdmissionRejectedError":
                submit_errors["rejected"] += 1
            elif name == "QueryShedError":
                submit_errors["shed"] += 1
            else:
                submit_errors["closed"] += 1
    dispatch_wall = time.perf_counter() - start

    outcomes = {"complete": 0, "partial": 0, "shed": 0, "timeout": 0,
                "cancelled": 0, "error": 0}
    latencies: list[float] = []
    queue_waits: list[float] = []
    hung = 0
    deadline_misses = 0
    for handle in handles:
        try:
            handle.result(timeout=grace)
        except TimeoutError:
            hung += 1
            continue
        except Exception:
            pass  # typed outcome; counted below
        outcomes[handle.outcome] = outcomes.get(handle.outcome, 0) + 1
        if handle.outcome in ("complete", "partial"):
            latency = handle.finished_at - handle.submitted_at
            latencies.append(latency)
            if handle.queue_wait is not None:
                queue_waits.append(handle.queue_wait)
            request = handle.request
            if request.deadline is not None and latency > request.deadline:
                deadline_misses += 1
    wall = time.perf_counter() - start
    completed = outcomes["complete"] + outcomes["partial"]
    return {
        "offered": len(trace.events),
        "offered_qps": round(len(trace.events) / trace.duration, 3)
        if trace.duration > 0 else 0.0,
        "dispatch_wall_seconds": dispatch_wall,
        "wall_seconds": wall,
        "submitted": len(handles),
        "completed": completed,
        "achieved_qps": round(completed / wall, 3) if wall > 0 else 0.0,
        "shed": outcomes["shed"] + submit_errors["shed"],
        "rejected": submit_errors["rejected"],
        "timeouts": outcomes["timeout"],
        "errors": outcomes["error"] + submit_errors["closed"],
        "cancelled": outcomes["cancelled"],
        "hung": hung,
        "deadline_misses": deadline_misses,
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "queue_wait_p99_ms": round(_percentile(queue_waits, 0.99) * 1e3, 3),
    }


def saturation_knee(report: dict, factor: float = 3.0) -> dict:
    """Per-scenario saturation knee of one replay report.

    The knee is the lowest rate multiplier whose p99 latency reaches
    ``factor`` × the p99 at the lowest multiplier of the same scenario
    -- the point where the envelope visibly bends.  Scenarios whose p99
    never reaches the factor within the sweep map to ``None`` (no knee
    observed: the server kept up at every offered rate).
    """
    knees: dict[str, float | None] = {}
    for name, scenario in report.get("scenarios", {}).items():
        cells = sorted(scenario.get("cells", []), key=lambda c: c["multiplier"])
        if not cells:
            knees[name] = None
            continue
        base = cells[0].get("latency_p99_ms", 0.0)
        knee = None
        if base > 0:
            for cell in cells:
                if cell.get("latency_p99_ms", 0.0) >= factor * base:
                    knee = cell["multiplier"]
                    break
        knees[name] = knee
    return knees


def compare_baseline(
    report: dict,
    baseline: dict,
    tolerance: float = 0.25,
    factor: float = 3.0,
) -> dict:
    """Compare saturation knees against a committed baseline artifact.

    A scenario **regresses** when its knee shifted *left* -- the server
    now saturates at a lower offered rate -- by more than ``tolerance``
    (fractional): ``current < baseline * (1 - tolerance)``.  A scenario
    with no observed knee is treated as saturating beyond the sweep, so
    losing the knee entirely never regresses and gaining one where the
    baseline had none always does.  This is a *warning* signal for the
    capacity-envelope tracking workflow (``repro replay --baseline``),
    not a hard gate: absolute timings are machine-dependent, but a knee
    sliding left on the same machine usually means a real capacity
    loss.
    """
    current = saturation_knee(report, factor)
    previous = saturation_knee(baseline, factor)
    scenarios: dict[str, dict] = {}
    regressions: list[str] = []
    for name in sorted(set(current) & set(previous)):
        knee, base_knee = current[name], previous[name]
        if base_knee is None:
            shifted = knee is not None
        elif knee is None:
            shifted = False
        else:
            shifted = knee < base_knee * (1.0 - tolerance)
        scenarios[name] = {
            "current_knee": knee,
            "baseline_knee": base_knee,
            "shifted_left": shifted,
        }
        if shifted:
            regressions.append(name)
    return {
        "factor": factor,
        "tolerance": tolerance,
        "scenarios": scenarios,
        "regressions": regressions,
        "ok": not regressions,
    }


def _await_healthy(server: SkylineServer, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.mode == "healthy":
            return True
        time.sleep(0.02)
    return server.mode == "healthy"


def run_replay(
    size: int = 300,
    scenarios: tuple[str, ...] | None = None,
    duration: float = 3.0,
    rate: float = 30.0,
    multipliers: tuple[float, ...] | None = None,
    workers: int = 4,
    kernel: str = "python",
    seed: int = 7,
    chaos_seed: int | None = None,
    capacity: int | None = 64,
    shed_policy: str = "deadline",
    algorithms: tuple[str, ...] = ("sdc+", "bbs+", "bnl+"),
    deadline: float | None = 0.5,
    cache: bool = False,
    grace: float = 10.0,
    output: str | None = None,
) -> dict:
    """Sweep the capacity envelope; returns (and optionally writes) it.

    One dataset is generated per ``seed``/``size``; each (scenario,
    multiplier) cell gets a **fresh** dataset copy and server, so chaos
    injection and breaker history cannot leak between cells.  The trace
    for a scenario is generated once and time-compressed per multiplier
    (:meth:`~repro.workloads.trace.WorkloadTrace.scaled`), so every cell
    of a scenario's row offers the *same request sequence* at different
    rates.  ``output`` writes the canonical JSON artifact
    (:mod:`repro.bench.artifacts`).

    ``cache`` defaults **off** here (unlike production serving): every
    trace algorithm maps to the same full-space query shape, so a warm
    cache would serve the whole trace in O(answer) at submission and
    the envelope would measure the cache, not the execution path.

    With ``chaos_seed`` set, every cell is additionally replayed under a
    deterministic fault plan: one worker-thread kill early in the trace
    (the watchdog must respawn it) and seeded kernel faults (retries /
    fallbacks must absorb them); after the drain, the cell records
    whether the server returned to ``healthy``.
    """
    from repro.transform.dataset import TransformedDataset
    from repro.workloads.config import WorkloadConfig
    from repro.workloads.generator import generate_workload

    scenarios = tuple(scenarios) if scenarios else SCENARIOS
    multipliers = tuple(multipliers) if multipliers else DEFAULT_MULTIPLIERS
    config = WorkloadConfig.default(data_size=size, seed=seed)
    workload = generate_workload(config)

    report: dict = {
        "config": {
            "records": size,
            "kernel": kernel,
            "seed": seed,
            "chaos_seed": chaos_seed,
            "workers": workers,
            "duration_seconds": duration,
            "base_rate_qps": rate,
            "multipliers": list(multipliers),
            "queue_capacity": capacity,
            "shed_policy": shed_policy,
            "algorithms": list(algorithms),
            "deadline_seconds": deadline,
            "cache": bool(cache),
        },
        "scenarios": {},
    }
    for scenario in scenarios:
        base = generate_trace(
            scenario,
            duration=duration,
            rate=rate,
            seed=seed,
            algorithms=algorithms,
            deadline=deadline,
        )
        cells = []
        for multiplier in multipliers:
            trace = base.scaled(multiplier)
            dataset = TransformedDataset(
                workload.schema, workload.records, kernel=kernel
            )
            server = SkylineServer(
                dataset,
                workers=workers,
                warm=True,
                cache=cache,
                overload=_overload_config(capacity, shed_policy, seed),
            )
            if chaos_seed is not None:
                from repro.resilience.chaos import (
                    FaultInjector,
                    inject_kernel_faults,
                    inject_worker_faults,
                )

                inject_worker_faults(
                    server,
                    FaultInjector(
                        seed=chaos_seed, fail_after=3, max_faults=1,
                        fault_type=SystemExit,
                    ),
                )
                inject_kernel_faults(
                    dataset,
                    FaultInjector(seed=chaos_seed + 1, rate=0.02, max_faults=4),
                )
            try:
                cell = replay_trace(server, trace, grace=grace)
                cell["multiplier"] = multiplier
                recovered = _await_healthy(server, timeout=3.0)
                cell["final_mode"] = server.mode
                cell["returned_healthy"] = recovered
                snapshot = server.metrics.snapshot()
                overload = snapshot.get("overload", {})
                cell["degradations"] = overload.get("degradations", 0)
                cell["retries"] = overload.get("retries", 0)
                cell["worker_deaths"] = overload.get("worker_deaths", 0)
                cell["worker_restarts"] = overload.get("worker_restarts", 0)
                cell["breakers"] = {
                    name: {
                        "transitions": stats.get("transitions", 0),
                        "opens": stats.get("opens", 0),
                        "state": stats.get("state", "closed"),
                    }
                    for name, stats in overload.get("breakers", {}).items()
                }
            finally:
                server.close(wait=True)
            cells.append(cell)
        report["scenarios"][scenario] = {
            "arrivals": len(base.events),
            "cells": cells,
        }
    if output:
        write_artifact(output, report)
    return report
