"""Serving metrics: latency histograms, admission counters, gauges.

One :class:`ServerMetrics` instance aggregates everything a
:class:`~repro.serving.server.SkylineServer` observes -- per-algorithm
latency histograms, admission/rejection/timeout/fallback counters, a
queue-depth gauge and the server-wide
:class:`~repro.core.stats.ComparisonStats` aggregate merged from every
query's private bundle.  All mutation goes through one lock, so metric
updates from many worker threads never tear; :meth:`ServerMetrics.snapshot`
returns a plain-dict copy suitable for JSON export.
"""

from __future__ import annotations

import json
import math
import threading

from repro.core.stats import ComparisonStats

__all__ = ["LatencyHistogram", "ServerMetrics"]


def _default_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: 0.1 ms .. ~100 s, 4 per decade."""
    return tuple(1e-4 * (10.0 ** (i / 4.0)) for i in range(25))


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation.

    Buckets are log-spaced (4 per decade from 0.1 ms to ~100 s by
    default) plus one overflow bucket, so recording is O(log buckets)
    and memory is constant regardless of query volume.  Quantiles are
    linearly interpolated inside the winning bucket and clamped to the
    observed min/max, which keeps small-sample estimates honest.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] | None = None) -> None:
        self.bounds = tuple(bounds) if bounds is not None else _default_bounds()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (in seconds)."""
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        for i, bucket in enumerate(self.counts):
            if bucket == 0:
                continue
            if seen + bucket >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (target - seen) / bucket
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            seen += bucket
        return self.max

    @property
    def mean(self) -> float:
        """Average observation in seconds (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-able summary (counts, mean, min/max, p50/p90/p99)."""
        return {
            "count": self.count,
            "total_seconds": round(self.total, 6),
            "mean_seconds": round(self.mean, 6),
            "min_seconds": round(self.min, 6) if self.count else 0.0,
            "max_seconds": round(self.max, 6),
            "p50_seconds": round(self.quantile(0.50), 6),
            "p90_seconds": round(self.quantile(0.90), 6),
            "p99_seconds": round(self.quantile(0.99), 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}s)"


class ServerMetrics:
    """Thread-safe metric registry for one skyline server.

    Counters
    --------
    ``submitted / admitted / deflected`` and ``rejected`` (broken down
    by admission reason), the terminal outcomes ``completed / partial /
    timeouts / cancelled / failures``, recovery events ``fallbacks``
    (batch-kernel -> python retries) and ``index_repairs``
    (rebuild-on-detect of a corrupted R-tree), and ``updates``.

    Gauges
    ------
    ``queue_depth`` (pending requests) with a high-water mark, and
    ``in_flight`` (queries currently executing).

    Aggregates
    ----------
    Per-algorithm and overall latency histograms, a queue-wait
    histogram, and one :class:`~repro.core.stats.ComparisonStats` merged
    from every finished query's private bundle -- the replacement for
    the racy shared engine bundle.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.admitted = 0
        self.deflected = 0
        self.rejected: dict[str, int] = {}
        self.completed = 0
        self.partial = 0
        self.timeouts = 0
        self.cancelled = 0
        self.failures = 0
        self.fallbacks = 0
        self.index_repairs = 0
        self.parallel_queries = 0
        self.parallel_fallbacks = 0
        self.parallel_routed_serial = 0
        self.parallel_tasks = 0
        self.parallel_steals = 0
        self.parallel_filter_checks = 0
        self.parallel_filter_hits = 0
        self.parallel_stage_seconds: dict[str, float] = {}
        self.updates = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.in_flight = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.by_algorithm: dict[str, LatencyHistogram] = {}
        self.comparison_totals = ComparisonStats()
        # Result-cache section (repro.views): traffic counters, the
        # bytes/entries residency gauges, and the staleness-age
        # histogram (seconds since the served answer was last computed
        # or patched, recorded at each hit).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_invalidations = 0
        self.cache_evictions = 0
        self.cache_bytes = 0
        self.cache_entries = 0
        self.cache_age = LatencyHistogram()
        # Overload-resilience section (repro.serving.overload): load
        # shedding, retry/backoff, circuit-breaker transitions, worker
        # watchdog events and the degradation ladder.
        self.shed: dict[str, int] = {}
        self.retries = 0
        self.worker_deaths = 0
        self.worker_restarts = 0
        self.stuck_queries = 0
        self.breaker_states: dict[str, str] = {}
        self.breaker_transitions: dict[str, int] = {}
        self.breaker_opens: dict[str, int] = {}
        self.degradation_mode = "healthy"
        self.degradations = 0
        self.recoveries = 0
        # Durability section (repro.durability): WAL traffic and fsync
        # latency, checkpoint cadence, segment retirement, the sticky
        # read-only degradation state, and per-listener failure counts
        # mirrored from the dataset's hardened post-commit registry.
        self.wal_appends = 0
        self.wal_bytes = 0
        self.wal_failures = 0
        self.wal_fsync = LatencyHistogram()
        self.checkpoints = 0
        self.checkpoint_failures = 0
        self.wal_segments_retired = 0
        self.listener_failures: dict[str, int] = {}
        self.read_only = False
        self.read_only_reason: str | None = None
        # Network front-end section (repro.net): connection and frame
        # traffic, rate-limit throttles, slow-consumer backpressure, the
        # disconnect->cancellation path and the time-to-first-point
        # histogram (the progressiveness metric: seconds from QUERY
        # frame to the first POINTS frame of each streamed query).
        self.net_connections_opened = 0
        self.net_connections_closed = 0
        self.net_connections_active = 0
        self.net_frames_in = 0
        self.net_frames_out = 0
        self.net_bytes_in = 0
        self.net_bytes_out = 0
        self.net_queries = 0
        self.net_points_sent = 0
        self.net_rate_limited = 0
        self.net_backpressure_pauses = 0
        self.net_slow_consumer_sheds = 0
        self.net_disconnect_cancellations = 0
        self.net_malformed_frames = 0
        self.net_resets_sent = 0
        self.net_ttfp = LatencyHistogram()

    # ------------------------------------------------------------------
    # Admission-side events
    # ------------------------------------------------------------------
    def on_submitted(self) -> None:
        """Count one submission (before the admission decision)."""
        with self._lock:
            self.submitted += 1

    def on_rejected(self, reason: str) -> None:
        """Count one admission rejection under its reason."""
        with self._lock:
            self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def on_admitted(self, deflected: bool) -> None:
        """Count one admitted query (optionally via deflection)."""
        with self._lock:
            self.admitted += 1
            if deflected:
                self.deflected += 1

    def on_enqueued(self) -> None:
        """Bump the queue-depth gauge (and its high-water mark)."""
        with self._lock:
            self.queue_depth += 1
            if self.queue_depth > self.max_queue_depth:
                self.max_queue_depth = self.queue_depth

    def on_dequeued(self) -> None:
        """Drop the queue-depth gauge as a worker picks a query up."""
        with self._lock:
            self.queue_depth -= 1

    # ------------------------------------------------------------------
    # Execution-side events
    # ------------------------------------------------------------------
    def on_started(self, queue_wait_seconds: float) -> None:
        """Mark one query as executing; records its queue wait."""
        with self._lock:
            self.in_flight += 1
            self.queue_wait.record(queue_wait_seconds)

    def on_finished(
        self,
        algorithm: str,
        seconds: float,
        outcome: str,
        stats: ComparisonStats | None = None,
        fallback: bool = False,
    ) -> None:
        """Record one terminal query outcome.

        ``outcome`` is one of ``"complete"``, ``"partial"``,
        ``"timeout"``, ``"cancelled"`` or ``"error"``; ``stats`` is the
        query's private counter bundle, merged into the server-wide
        aggregate here (the only place those bundles meet).
        """
        with self._lock:
            self.in_flight -= 1
            if outcome == "complete":
                self.completed += 1
            elif outcome == "partial":
                self.partial += 1
            elif outcome == "timeout":
                self.timeouts += 1
            elif outcome == "cancelled":
                self.cancelled += 1
            else:
                self.failures += 1
            if fallback:
                self.fallbacks += 1
            if stats is not None:
                self.comparison_totals += stats
            if outcome in ("complete", "partial"):
                self.latency.record(seconds)
                histogram = self.by_algorithm.get(algorithm)
                if histogram is None:
                    histogram = self.by_algorithm[algorithm] = LatencyHistogram()
                histogram.record(seconds)

    def on_index_repair(self) -> None:
        """Count one rebuild-on-detect R-tree repair."""
        with self._lock:
            self.index_repairs += 1

    def on_parallel(
        self,
        fallback: bool,
        *,
        routed_serial: bool = False,
        tasks: int = 0,
        steals: int = 0,
        filter_checks: int = 0,
        filter_hits: int = 0,
        stage_seconds: dict | None = None,
    ) -> None:
        """Count one query routed to the sharded process-pool backend.

        ``fallback`` marks queries whose worker pool broke and that were
        transparently recomputed serially
        (:class:`~repro.exceptions.ParallelFallbackWarning`);
        ``routed_serial`` marks queries the partitioner *deliberately*
        kept serial (tiny data, shard floor, collapsed partition,
        resource budget) -- an explicit counter instead of a silent
        fall-through.  The remaining keywords accumulate the steal
        scheduler's work accounting (fine-grained tasks, steal events,
        filter-board checks/hits) and the per-stage wall-clock breakdown.
        """
        with self._lock:
            self.parallel_queries += 1
            if fallback:
                self.parallel_fallbacks += 1
            if routed_serial:
                self.parallel_routed_serial += 1
            self.parallel_tasks += tasks
            self.parallel_steals += steals
            self.parallel_filter_checks += filter_checks
            self.parallel_filter_hits += filter_hits
            if stage_seconds:
                for stage, seconds in stage_seconds.items():
                    self.parallel_stage_seconds[stage] = (
                        self.parallel_stage_seconds.get(stage, 0.0) + seconds
                    )

    def on_update(self) -> None:
        """Count one committed insert/delete."""
        with self._lock:
            self.updates += 1

    # ------------------------------------------------------------------
    # Overload-resilience events (repro.serving.overload)
    # ------------------------------------------------------------------
    def on_shed(self, reason: str, queued: bool = True) -> None:
        """Count one shed query; ``queued`` entries also leave the queue."""
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1
            if queued:
                self.queue_depth -= 1

    def on_retry(self) -> None:
        """Count one granted execution retry."""
        with self._lock:
            self.retries += 1

    def on_worker_death(self) -> None:
        """Count one worker thread found dead by the watchdog."""
        with self._lock:
            self.worker_deaths += 1

    def on_worker_restart(self) -> None:
        """Count one replacement worker spawned by the watchdog."""
        with self._lock:
            self.worker_restarts += 1

    def on_stuck_query(self) -> None:
        """Count one in-flight query flagged as stuck by the watchdog."""
        with self._lock:
            self.stuck_queries += 1

    def register_breaker(self, name: str, state: str = "closed") -> None:
        """Expose a breaker's initial state before any transition."""
        with self._lock:
            self.breaker_states.setdefault(name, state)

    def on_breaker(self, name: str, old: str, new: str) -> None:
        """Record one circuit-breaker state transition."""
        with self._lock:
            self.breaker_states[name] = new
            self.breaker_transitions[name] = (
                self.breaker_transitions.get(name, 0) + 1
            )
            if new == "open":
                self.breaker_opens[name] = self.breaker_opens.get(name, 0) + 1

    def on_degradation(self, old: str, new: str, reason: str) -> None:
        """Record one degradation-ladder transition (either direction)."""
        from repro.serving.overload import _MODE_RANK

        with self._lock:
            self.degradation_mode = new
            if _MODE_RANK[new] > _MODE_RANK[old]:
                self.degradations += 1
            else:
                self.recoveries += 1

    # ------------------------------------------------------------------
    # Durability events (repro.durability)
    # ------------------------------------------------------------------
    def on_wal_append(self, nbytes: int) -> None:
        """Count one durable WAL append of ``nbytes`` framed bytes."""
        with self._lock:
            self.wal_appends += 1
            self.wal_bytes += nbytes

    def on_wal_failure(self) -> None:
        """Count one WAL append failure (the commit was rolled back)."""
        with self._lock:
            self.wal_failures += 1

    def on_checkpoint(self, retired: int = 0) -> None:
        """Count one completed checkpoint and its retired WAL segments."""
        with self._lock:
            self.checkpoints += 1
            self.wal_segments_retired += retired

    def on_checkpoint_failure(self) -> None:
        """Count one failed checkpoint (the WAL still covers the data)."""
        with self._lock:
            self.checkpoint_failures += 1

    def on_listener_failure(self, name: str) -> None:
        """Count one isolated post-commit listener failure by name."""
        with self._lock:
            self.listener_failures[name] = self.listener_failures.get(name, 0) + 1

    def on_read_only(self, reason: str) -> None:
        """Latch the sticky read-only degradation state."""
        with self._lock:
            self.read_only = True
            self.read_only_reason = reason

    # ------------------------------------------------------------------
    # Result-cache events (repro.views)
    # ------------------------------------------------------------------
    def on_cache_hit(self, age_seconds: float) -> None:
        """Count one served cache/view hit; records its staleness age."""
        with self._lock:
            self.cache_hits += 1
            self.cache_age.record(age_seconds)

    def on_cache_miss(self) -> None:
        """Count one cacheable query that had to be computed."""
        with self._lock:
            self.cache_misses += 1

    def on_cache_stored(self) -> None:
        """Count one answer set populated into the cache."""
        with self._lock:
            self.cache_stores += 1

    def on_cache_invalidated(self, entries: int = 1) -> None:
        """Count entries dropped because an update touched their region."""
        with self._lock:
            self.cache_invalidations += entries

    def on_cache_evicted(self, entries: int = 1) -> None:
        """Count entries dropped by LRU/byte-budget pressure."""
        with self._lock:
            self.cache_evictions += entries

    def set_cache_resident(self, resident_bytes: int, entries: int) -> None:
        """Refresh the cache residency gauges."""
        with self._lock:
            self.cache_bytes = resident_bytes
            self.cache_entries = entries

    # ------------------------------------------------------------------
    # Network front-end events (repro.net)
    # ------------------------------------------------------------------
    def on_connection_opened(self) -> None:
        """Count one accepted client connection."""
        with self._lock:
            self.net_connections_opened += 1
            self.net_connections_active += 1

    def on_connection_closed(self) -> None:
        """Count one client connection torn down (any reason)."""
        with self._lock:
            self.net_connections_closed += 1
            self.net_connections_active -= 1

    def on_frame_in(self, nbytes: int) -> None:
        """Count one decoded inbound frame of ``nbytes`` wire bytes."""
        with self._lock:
            self.net_frames_in += 1
            self.net_bytes_in += nbytes

    def on_frame_out(self, nbytes: int, points: int = 0) -> None:
        """Count one sent outbound frame (and the points it carried)."""
        with self._lock:
            self.net_frames_out += 1
            self.net_bytes_out += nbytes
            self.net_points_sent += points

    def on_net_query(self) -> None:
        """Count one QUERY frame accepted for submission."""
        with self._lock:
            self.net_queries += 1

    def on_rate_limited(self) -> None:
        """Count one query refused by a client's token bucket."""
        with self._lock:
            self.net_rate_limited += 1

    def on_backpressure_pause(self) -> None:
        """Count one emission pause while a slow consumer drains."""
        with self._lock:
            self.net_backpressure_pauses += 1

    def on_slow_consumer_shed(self) -> None:
        """Count one streamed query shed for sustained slow consumption."""
        with self._lock:
            self.net_slow_consumer_sheds += 1

    def on_disconnect_cancellation(self) -> None:
        """Count one in-flight query cancelled by a client disconnect."""
        with self._lock:
            self.net_disconnect_cancellations += 1

    def on_malformed_frame(self) -> None:
        """Count one protocol violation (bad CRC, oversize, bad JSON)."""
        with self._lock:
            self.net_malformed_frames += 1

    def on_reset_sent(self) -> None:
        """Count one RESET frame (retry retracted a streamed prefix)."""
        with self._lock:
            self.net_resets_sent += 1

    def on_first_point(self, seconds: float) -> None:
        """Record one query's time-to-first-point (QUERY -> first POINTS)."""
        with self._lock:
            self.net_ttfp.record(seconds)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Consistent JSON-able copy of every counter/gauge/histogram."""
        with self._lock:
            return {
                "admission": {
                    "submitted": self.submitted,
                    "admitted": self.admitted,
                    "deflected": self.deflected,
                    "rejected": dict(self.rejected),
                    "rejected_total": sum(self.rejected.values()),
                },
                "outcomes": {
                    "completed": self.completed,
                    "partial": self.partial,
                    "timeouts": self.timeouts,
                    "cancelled": self.cancelled,
                    "failures": self.failures,
                },
                "recovery": {
                    "kernel_fallbacks": self.fallbacks,
                    "index_repairs": self.index_repairs,
                    "parallel_fallbacks": self.parallel_fallbacks,
                },
                "parallel": {
                    "queries": self.parallel_queries,
                    "fallbacks": self.parallel_fallbacks,
                    "routed_serial": self.parallel_routed_serial,
                    "tasks": self.parallel_tasks,
                    "steals": self.parallel_steals,
                    "filter_board_checks": self.parallel_filter_checks,
                    "filter_board_hits": self.parallel_filter_hits,
                    "stage_seconds": {
                        stage: round(seconds, 6)
                        for stage, seconds in sorted(
                            self.parallel_stage_seconds.items()
                        )
                    },
                },
                "updates": self.updates,
                "durability": {
                    "wal_appends": self.wal_appends,
                    "wal_bytes": self.wal_bytes,
                    "wal_failures": self.wal_failures,
                    "wal_fsync": self.wal_fsync.snapshot(),
                    "checkpoints": self.checkpoints,
                    "checkpoint_failures": self.checkpoint_failures,
                    "wal_segments_retired": self.wal_segments_retired,
                    "read_only": self.read_only,
                    "read_only_reason": self.read_only_reason,
                },
                "listeners": {
                    "failures": dict(sorted(self.listener_failures.items())),
                    "failures_total": sum(self.listener_failures.values()),
                },
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (
                        self.cache_hits
                        / (self.cache_hits + self.cache_misses)
                        if (self.cache_hits + self.cache_misses)
                        else 0.0
                    ),
                    "stores": self.cache_stores,
                    "invalidations": self.cache_invalidations,
                    "evictions": self.cache_evictions,
                    "bytes_resident": self.cache_bytes,
                    "entries": self.cache_entries,
                    "staleness_age": self.cache_age.snapshot(),
                },
                "overload": {
                    "mode": self.degradation_mode,
                    "degradations": self.degradations,
                    "recoveries": self.recoveries,
                    "shed": dict(self.shed),
                    "shed_total": sum(self.shed.values()),
                    "retries": self.retries,
                    "worker_deaths": self.worker_deaths,
                    "worker_restarts": self.worker_restarts,
                    "stuck_queries": self.stuck_queries,
                    "breakers": {
                        name: {
                            "state": state,
                            "transitions": self.breaker_transitions.get(name, 0),
                            "opens": self.breaker_opens.get(name, 0),
                        }
                        for name, state in sorted(self.breaker_states.items())
                    },
                },
                "net": {
                    "connections": {
                        "opened": self.net_connections_opened,
                        "closed": self.net_connections_closed,
                        "active": self.net_connections_active,
                    },
                    "frames_in": self.net_frames_in,
                    "frames_out": self.net_frames_out,
                    "bytes_in": self.net_bytes_in,
                    "bytes_out": self.net_bytes_out,
                    "queries": self.net_queries,
                    "points_sent": self.net_points_sent,
                    "rate_limited": self.net_rate_limited,
                    "backpressure_pauses": self.net_backpressure_pauses,
                    "slow_consumer_sheds": self.net_slow_consumer_sheds,
                    "disconnect_cancellations": self.net_disconnect_cancellations,
                    "malformed_frames": self.net_malformed_frames,
                    "resets_sent": self.net_resets_sent,
                    "time_to_first_point": self.net_ttfp.snapshot(),
                },
                "queue": {
                    "depth": self.queue_depth,
                    "max_depth": self.max_queue_depth,
                    "in_flight": self.in_flight,
                    "wait": self.queue_wait.snapshot(),
                },
                "latency": self.latency.snapshot(),
                "latency_by_algorithm": {
                    name: h.snapshot()
                    for name, h in sorted(self.by_algorithm.items())
                },
                "comparison_totals": self.comparison_totals.snapshot(),
            }

    def to_json(self, path: str | None = None, indent: int = 2) -> str:
        """Serialize :meth:`snapshot` to JSON; optionally write ``path``."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerMetrics(submitted={self.submitted}, "
            f"completed={self.completed}, queue_depth={self.queue_depth})"
        )
