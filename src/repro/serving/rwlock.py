"""Reader-writer coordination between queries and updates.

Queries are readers: any number may run concurrently over the shared
:class:`~repro.transform.dataset.TransformedDataset` (they only read the
points, mappings and indexes; all per-query mutable state lives in their
:meth:`~repro.transform.dataset.TransformedDataset.query_view`).
``insert_record`` / ``delete_record`` are writers: they mutate the point
list, the R-tree and the stratification in place, so they must wait for
every in-flight query to drain and block new ones while they run.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it, so a steady stream of queries cannot starve updates.
Readers are non-reentrant (one query holds at most one read slot).

Both acquisition sides take an optional ``timeout``: a stuck reader (a
wedged worker thread that never releases its slot) then surfaces as a
typed :class:`~repro.exceptions.LockTimeoutError` at the update site
instead of silently deadlocking every subsequent writer -- the overload
layer (``docs/overload.md``) relies on this to keep a degraded server
diagnosable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exceptions import LockTimeoutError

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> None:
        """Enter shared mode (blocks while a writer is active/waiting).

        Raises :class:`~repro.exceptions.LockTimeoutError` when
        ``timeout`` (seconds) elapses before the slot is granted; the
        lock state is untouched in that case.
        """
        expires = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(expires):
                    raise LockTimeoutError("read", timeout)
            self._readers += 1

    def release_read(self) -> None:
        """Leave shared mode; wakes a waiting writer when last out."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> None:
        """Enter exclusive mode (drains readers, blocks new ones).

        Raises :class:`~repro.exceptions.LockTimeoutError` when
        ``timeout`` (seconds) elapses first; the writer's queue slot is
        released, so blocked readers resume as if the attempt never
        happened.
        """
        expires = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(expires):
                        raise LockTimeoutError("write", timeout)
            finally:
                self._writers_waiting -= 1
                if self._writers_waiting == 0 and not self._writer_active:
                    # A timed-out writer must wake the readers it was
                    # holding back, or they stall until the next event.
                    self._cond.notify_all()
            self._writer_active = True

    def release_write(self) -> None:
        """Leave exclusive mode; wakes all waiters."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    def _wait(self, expires: float | None) -> bool:
        """One condition wait; ``False`` when ``expires`` has passed."""
        if expires is None:
            self._cond.wait()
            return True
        remaining = expires - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    # ------------------------------------------------------------------
    @contextmanager
    def read_lock(self, timeout: float | None = None):
        """``with lock.read_lock():`` -- one query's shared section."""
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self, timeout: float | None = None):
        """``with lock.write_lock():`` -- one update's exclusive section."""
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    @property
    def readers(self) -> int:
        """Queries currently inside the shared section."""
        return self._readers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer_active={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )
