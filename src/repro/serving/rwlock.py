"""Reader-writer coordination between queries and updates.

Queries are readers: any number may run concurrently over the shared
:class:`~repro.transform.dataset.TransformedDataset` (they only read the
points, mappings and indexes; all per-query mutable state lives in their
:meth:`~repro.transform.dataset.TransformedDataset.query_view`).
``insert_record`` / ``delete_record`` are writers: they mutate the point
list, the R-tree and the stratification in place, so they must wait for
every in-flight query to drain and block new ones while they run.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it, so a steady stream of queries cannot starve updates.
Readers are non-reentrant (one query holds at most one read slot).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Enter shared mode (blocks while a writer is active/waiting)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave shared mode; wakes a waiting writer when last out."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Enter exclusive mode (drains readers, blocks new ones)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave exclusive mode; wakes all waiters."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_lock(self):
        """``with lock.read_lock():`` -- one query's shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_lock(self):
        """``with lock.write_lock():`` -- one update's exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def readers(self) -> int:
        """Queries currently inside the shared section."""
        return self._readers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer_active={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )
