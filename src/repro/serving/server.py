"""Thread-pool skyline server: many concurrent queries, one dataset.

:class:`SkylineServer` multiplexes concurrent skyline queries over one
shared immutable :class:`~repro.transform.dataset.TransformedDataset`
(the paper's setting: an index built once offline, queried repeatedly).
The moving parts, in submission order:

1. **Admission** (:mod:`repro.serving.admission`): every
   :class:`QueryRequest` is checked against its comparison budget and
   deadline using the cost model's up-front estimate, and against the
   server's pending capacity.  Hopeless or over-capacity queries are
   rejected with :class:`~repro.exceptions.AdmissionRejectedError`
   having executed zero dominance comparisons; overload can instead
   *deflect* (admit at the lowest priority).
2. **Queueing**: admitted requests enter a
   :class:`~repro.serving.overload.BoundedQueryQueue` (lower
   ``priority`` runs sooner; FIFO within a priority).  When bounded, a
   full queue *sheds* by policy -- doomed-deadline drops, priority
   eviction, or reject-newest -- resolving shed handles with a typed
   :class:`~repro.exceptions.QueryShedError` and an empty partial.
3. **Execution**: a fixed pool of worker threads runs each query on its
   own :meth:`~repro.transform.dataset.TransformedDataset.query_view` --
   private :class:`~repro.core.stats.ComparisonStats`, private kernel,
   private :class:`~repro.resilience.context.QueryContext` -- through
   the resilient executor (deadlines, budgets, cancellation and batch
   kernel -> python fallback all apply per query).  The request deadline
   is **end-to-end**: time spent queued counts against it.  Transient
   infrastructure failures (kernel faults, index corruption, broken
   pools) may be retried under the overload layer's
   :class:`~repro.serving.overload.RetryPolicy` (idempotent requests
   only, exponential backoff, bounded budget).
4. **Accounting**: on completion the query's private counter bundle is
   merged into the server-wide aggregate and its latency recorded in
   per-algorithm histograms (:mod:`repro.serving.metrics`); completed
   queries also calibrate the admission cost estimator.

Two :class:`~repro.serving.overload.CircuitBreaker` instances guard the
expensive recovery paths: repeated parallel-pool failures or batch
kernel fallbacks open the matching breaker and the server degrades
*once* (serial execution / python kernel) for the recovery window
instead of re-paying the failure per query.  A watchdog thread monitors
worker liveness -- a dead worker's query resolves with a typed error
(never a hang), a replacement thread is spawned, and sustained failure
drives the explicit degradation ladder ``healthy -> serial_only ->
cache_only -> rejecting`` surfaced in
:class:`~repro.serving.metrics.ServerMetrics`.  See
``docs/overload.md``.

Updates (:meth:`SkylineServer.insert` / :meth:`SkylineServer.delete`)
take the writer side of a writer-preferring reader-writer lock: they
drain in-flight queries, mutate the dataset (incremental index + strata
maintenance), and only then let new queries start.

With ``cache`` enabled (``docs/views.md``), step 1 is preceded by a
views-layer lookup: a query whose canonical shape is resident is served
at submission time in O(answer) with zero dominance comparisons, and
committed updates invalidate or incrementally patch affected entries
inside the writer lock, so readers can never observe a stale hit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.stats import ComparisonStats
from repro.exceptions import (
    AdmissionRejectedError,
    KernelError,
    ParallelError,
    QueryCancelledError,
    QueryShedError,
    QueryTimeoutError,
    ResilienceError,
    RTreeError,
    ServingError,
)
from repro.resilience import (
    CancellationToken,
    PartialResult,
    QueryContext,
    ResourceBudget,
    execute,
)
from repro.net.stream import EmissionChannel
from repro.serving.admission import AdmissionController
from repro.serving.metrics import ServerMetrics
from repro.serving.overload import (
    BoundedQueryQueue,
    CircuitBreaker,
    DegradationLadder,
    OverloadConfig,
)
from repro.serving.rwlock import ReadWriteLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.record import Record
    from repro.transform.dataset import TransformedDataset
    from repro.transform.point import Point

__all__ = ["QueryRequest", "QueryHandle", "SkylineServer"]

#: Priority deflected queries are demoted to (beyond any sane user value).
DEFLECTED_PRIORITY = 1 << 20

#: Transient infrastructure failures the retry policy may re-attempt.
#: Control errors (deadline/cancel/budget) and logic errors never retry.
RETRYABLE_FAULTS = (KernelError, FloatingPointError, RTreeError, ParallelError)


@dataclass(frozen=True)
class QueryRequest:
    """One query's full specification, as submitted to the server.

    ``priority`` orders the queue (lower runs sooner); ``deadline`` is
    end-to-end wall-clock seconds from submission; the ``max_*`` fields
    build the query's :class:`~repro.resilience.context.ResourceBudget`;
    ``options`` is forwarded to the algorithm constructor (e.g.
    ``{"window_size": 128}``); ``fallback`` controls batch-kernel
    recovery; ``tag`` is an opaque client label echoed in the handle;
    ``idempotent`` marks the request as safe to re-execute, which is
    what the overload layer's retry policy requires before re-running
    it after a transient failure (skyline queries are read-only, so the
    default is ``True``).

    At most one of the *shaping* fields may be set: ``subspace`` (an
    attribute-name collection: skyline over the projection),
    ``constraint`` (a :class:`~repro.queries.constrained.Constraint`) or
    ``skyband_k`` (the k-skyband).  All three default off, leaving the
    full-space skyline.  For constrained/skyband requests ``options``
    may carry ``{"method": "bnl"/"nested-loops"}`` to override the
    default index-accelerated evaluation.
    """

    algorithm: str = "sdc+"
    deadline: float | None = None
    max_comparisons: int | None = None
    max_heap_entries: int | None = None
    max_window_entries: int | None = None
    max_answers: int | None = None
    priority: int = 0
    fallback: bool = True
    options: dict = field(default_factory=dict)
    tag: str | None = None
    subspace: tuple | None = None
    constraint: object | None = None
    skyband_k: int | None = None
    idempotent: bool = True

    def shape(self):
        """This request's canonical, algorithm-independent
        :class:`~repro.views.keys.QueryShape` (cache key).

        Raises :class:`~repro.exceptions.ServingError` when more than
        one shaping field is set.
        """
        from repro.views.keys import QueryShape

        return QueryShape.of(
            subspace=self.subspace,
            constraint=self.constraint,
            skyband_k=self.skyband_k,
        )

    def budget(self) -> ResourceBudget | None:
        """The request's resource budget (``None`` when unlimited)."""
        limits = (
            self.max_comparisons,
            self.max_heap_entries,
            self.max_window_entries,
            self.max_answers,
        )
        if any(v is not None for v in limits):
            return ResourceBudget(*limits)
        return None


class QueryHandle:
    """Future-like handle to one admitted query.

    ``result()`` blocks for the outcome, ``partial()`` snapshots the
    answers emitted so far (valid even while the query runs -- always a
    prefix of the algorithm's deterministic emission order), and
    ``cancel()`` fires the query's cooperative cancellation token.

    ``stats`` is the query's **private**
    :class:`~repro.core.stats.ComparisonStats` bundle -- every
    comparison, node access and heap operation this query performed, and
    nothing any other query did.
    """

    def __init__(self, request: QueryRequest, seq: int, estimate,
                 deflected: bool) -> None:
        self.request = request
        self.seq = seq
        self.estimate = estimate
        self.deflected = deflected
        self.stats = ComparisonStats()
        self.cancel_token = CancellationToken()
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.outcome: str | None = None
        #: Dataset ``update_version`` the answer reflects (set while the
        #: read lock is held, for both cache hits and computed queries);
        #: ``None`` until then.  Staleness tests replay against this.
        self.served_version: int | None = None
        #: Incremental emission channel: the executor appends answers
        #: into it as the algorithm yields them, and push consumers
        #: (the network front-end) subscribe for live delivery.
        self._sink: EmissionChannel = EmissionChannel()
        self._result: PartialResult | None = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._callback_lock = threading.Lock()
        self._done_callbacks: list = []

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Whether the query reached a terminal state."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> PartialResult:
        """Block for the outcome.

        Returns the :class:`~repro.resilience.executor.PartialResult`
        (complete or budget-truncated); re-raises the query's typed
        error for deadline expiry, cancellation, shedding or kernel
        failure -- exactly the contract of
        :meth:`SkylineEngine.query <repro.engine.SkylineEngine.query>`.
        Raises :class:`TimeoutError` when ``timeout`` elapses first
        (the query keeps running; call again).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query (seq={self.seq}, {self.request.algorithm}) still "
                f"running after {timeout}s wait"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def partial(self) -> list["Point"]:
        """Snapshot of the answers emitted so far (running or done)."""
        if self._result is not None:
            return list(self._result.points)
        error = self._error
        if error is not None and getattr(error, "partial", None) is not None:
            return list(error.partial.points)
        return list(self._sink)

    def subscribe(self, callback, replay: bool = True):
        """Subscribe to this query's incremental emission stream.

        ``callback(kind, points)`` receives every
        :class:`~repro.net.stream.EmissionChannel` event -- ``points``
        batches in emission order and ``reset`` retractions (retry
        restarts).  With ``replay`` (default) the already-emitted prefix
        is delivered first, so late subscribers (including cache hits,
        which resolve before ``submit`` even returns) see the complete
        stream exactly once.  Returns an unsubscribe function.
        """
        return self._sink.subscribe(callback, replay=replay)

    def add_done_callback(self, fn) -> None:
        """Run ``fn(handle)`` when the query reaches a terminal state.

        Fires exactly once, on the finishing thread -- immediately if
        the query is already done.  Callback errors are swallowed (a
        consumer's bug must not poison the worker).  Because the same
        worker thread performs the final sink mutation and then
        ``_finish``, a subscriber attached via :meth:`subscribe` always
        observes the last ``points`` event before the done callback.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._done_callbacks.append(fn)
                return
        self._invoke_done_callback(fn)

    def _invoke_done_callback(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - consumer isolation
            import logging

            logging.getLogger("repro.serving").exception(
                "query done-callback raised (seq=%d)", self.seq
            )

    def cancel(self) -> bool:
        """Request cooperative cancellation; ``False`` if already done.

        A queued query is dropped without running; a running query stops
        at its next checkpoint and its handle raises
        :class:`~repro.exceptions.QueryCancelledError` (with the partial
        answers attached).
        """
        if self._done.is_set():
            return False
        self.cancel_token.cancel()
        return True

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent queued (``None`` until execution started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    # ------------------------------------------------------------------
    def _finish(self, outcome: str, result: PartialResult | None = None,
                error: BaseException | None = None) -> None:
        self.finished_at = time.perf_counter()
        self.outcome = outcome
        self._result = result
        self._error = error
        with self._callback_lock:
            self._done.set()
            callbacks, self._done_callbacks = self._done_callbacks, []
        for fn in callbacks:
            self._invoke_done_callback(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.outcome if self._done.is_set() else (
            "running" if self.started_at is not None else "queued"
        )
        return (
            f"QueryHandle(seq={self.seq}, {self.request.algorithm}, {state})"
        )


class SkylineServer:
    """Concurrent skyline query server over one shared dataset.

    Parameters
    ----------
    target:
        A :class:`~repro.engine.SkylineEngine` or a
        :class:`~repro.transform.dataset.TransformedDataset`.
    workers:
        Worker threads executing admitted queries.
    admission:
        A ready :class:`~repro.serving.admission.AdmissionController`;
        when omitted one is built from ``max_pending`` / ``hard_limit``
        / ``overload_policy``.
    validate_on_admission:
        Check R-tree structural invariants at every submission and, on
        corruption, rebuild the indexes once before retrying --
        availability recovery without an engine restart (repairs are
        counted in the metrics).  Validation is O(index), so it defaults
        off; switch it on for untrusted index storage.
    warm:
        Pre-build the global R-tree, the SDC+ stratum trees and the
        batch kernel's relation memo at construction, so no query pays
        the cold-build cost (mirrors the paper's offline index build).
    metrics:
        A ready :class:`~repro.serving.metrics.ServerMetrics` (fresh
        when omitted).
    parallel:
        A :class:`~repro.parallel.ParallelConfig` (or worker count)
        enabling the sharded process-pool execution mode
        (``docs/parallel.md``).  Large admitted queries without a
        resource budget run on the shared
        :class:`~repro.parallel.ParallelSkylineExecutor`; everything
        else stays on the serial per-thread path.  ``None`` (default)
        disables sharding.
    parallel_threshold:
        Minimum dataset size (points) before an admitted query is
        routed to the parallel executor.
    cache:
        Result caching (``docs/views.md``).  ``None``/``False``
        (default) disables it -- every query recomputes, and per-query
        counters match a serial run exactly.  ``True`` builds a
        :class:`~repro.views.ViewManager` with a fresh
        :class:`~repro.views.ResultCache` (sized by ``cache_entries`` /
        ``cache_bytes``); a ready ``ViewManager`` or ``ResultCache`` is
        used as-is.  With caching on, a submitted query whose shape is
        resident is served at admission in O(answer) with **zero**
        dominance comparisons, bypassing the cost model and the
        executor; committed updates invalidate or incrementally patch
        affected entries before the writer lock releases.
    cache_entries / cache_bytes:
        Budgets for the built cache when ``cache=True``.
    overload:
        An :class:`~repro.serving.overload.OverloadConfig` tuning the
        overload-resilience layer (bounded queue + shedding policy,
        retry policy, circuit breakers, watchdog + degradation ladder;
        ``docs/overload.md``).  The default keeps the queue unbounded
        and retries off -- behaviourally identical to the pre-overload
        server under healthy operation -- while breakers and the
        watchdog defend against repeated failure.
    durability:
        Opt-in crash safety (``docs/durability.md``).  ``None``
        (default) keeps the server purely in-memory.  A directory path
        or :class:`~repro.durability.DurabilityConfig` builds a
        :class:`~repro.durability.DurabilityManager` (owned: closed
        with the server); a ready manager is attached as-is.  With
        durability on, every :meth:`insert`/:meth:`delete` appends a
        fsynced WAL record inside the dataset's commit path under the
        writer lock -- an update is acknowledged only once it is on
        disk -- and a WAL I/O failure rolls the update back and
        latches the server into **read-only** degradation (queries
        keep serving; further updates raise
        :class:`~repro.exceptions.ServingError`) instead of crashing.
    """

    def __init__(
        self,
        target,
        *,
        workers: int = 4,
        admission: AdmissionController | None = None,
        max_pending: int = 64,
        hard_limit: int | None = None,
        overload_policy: str = "deflect",
        validate_on_admission: bool = False,
        warm: bool = True,
        metrics: ServerMetrics | None = None,
        parallel=None,
        parallel_threshold: int = 5000,
        cache=None,
        cache_entries: int = 256,
        cache_bytes: int = 32 * 1024 * 1024,
        overload: OverloadConfig | None = None,
        durability=None,
    ) -> None:
        if workers < 1:
            raise ServingError("workers must be positive")
        self.dataset: "TransformedDataset" = getattr(target, "dataset", target)
        self.parallel_threshold = parallel_threshold
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                max_pending=max_pending,
                hard_limit=hard_limit,
                overload_policy=overload_policy,
            )
        )
        if parallel is not None:
            from repro.parallel import ParallelSkylineExecutor

            # The admission controller's calibrated estimator drives the
            # steal scheduler's adaptive task sizing.
            self._parallel = ParallelSkylineExecutor(
                self.dataset, parallel, estimator=self.admission.estimator
            )
        else:
            self._parallel = None
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.validate_on_admission = validate_on_admission
        self._rwlock = ReadWriteLock()
        self.overload = overload if overload is not None else OverloadConfig()
        self._queue = BoundedQueryQueue(
            capacity=self.overload.queue_capacity,
            policy=self.overload.shed_policy,
            on_shed=self._on_queue_shed,
        )
        self._retry = self.overload.retry
        if self.overload.breakers:
            self._parallel_breaker = CircuitBreaker(
                "parallel",
                failure_threshold=self.overload.breaker_failures,
                recovery_time=self.overload.breaker_recovery,
                on_transition=self.metrics.on_breaker,
            )
            self._kernel_breaker = CircuitBreaker(
                "kernel",
                failure_threshold=self.overload.breaker_failures,
                recovery_time=self.overload.breaker_recovery,
                on_transition=self.metrics.on_breaker,
            )
            self.metrics.register_breaker("parallel")
            self.metrics.register_breaker("kernel")
        else:
            self._parallel_breaker = None
            self._kernel_breaker = None
        self._ladder = DegradationLadder(
            on_transition=self.metrics.on_degradation
        )
        # Sticky read-only degradation: latched on a WAL I/O failure and
        # deliberately NOT a ladder rung -- the ladder's recovery path
        # steps down automatically after a clear window, which must
        # never silently re-enable writes over a broken log.
        self._read_only = False
        self._read_only_reason: str | None = None
        # Per-listener failure counts from the dataset's hardened
        # post-commit registry surface in this server's metrics.
        self.dataset._listener_failure_hook = self.metrics.on_listener_failure
        self._durability = None
        self._owns_durability = False
        if durability is not None:
            from repro.durability import DurabilityManager

            if isinstance(durability, DurabilityManager):
                self._durability = durability
                if durability.metrics is None:
                    durability.metrics = self.metrics
            else:
                self._durability = DurabilityManager(
                    durability, metrics=self.metrics
                )
                self._owns_durability = True
            if not self._durability._attached:
                self._durability.attach(self.dataset)
        # Chaos fault points (armed by repro.resilience.chaos helpers).
        self._worker_injector = None
        self._stall_injector = None
        self._lock_injector = None
        self._seq = itertools.count()
        self._closed = False
        self._views = None
        if cache:
            from repro.views import ResultCache, ViewManager

            if isinstance(cache, ViewManager):
                if cache.dataset is not self.dataset:
                    raise ServingError(
                        "the ViewManager is attached to a different dataset"
                    )
                if cache.metrics is None:
                    cache.metrics = self.metrics
                    if cache.cache.metrics is None:
                        cache.cache.metrics = self.metrics
                self._views = cache
            elif isinstance(cache, ResultCache):
                self._views = ViewManager(
                    self.dataset, cache=cache, metrics=self.metrics
                )
            else:
                self._views = ViewManager(
                    self.dataset,
                    metrics=self.metrics,
                    cache_entries=cache_entries,
                    cache_bytes=cache_bytes,
                )
        if warm:
            self.warm()
        # Worker pool + watchdog state.  ``_inflight`` maps a worker
        # slot to its currently-executing handle so the watchdog can
        # resolve queries orphaned by a dead thread.
        self._workers_lock = threading.Lock()
        self._inflight: dict[int, tuple[QueryHandle, float]] = {}
        self._inflight_lock = threading.Lock()
        self._worker_deaths: list[float] = []
        self._stuck_seqs: set[int] = set()
        self._last_degraded_signal = 0.0
        self._workers = [
            threading.Thread(
                target=self._worker, args=(i,),
                name=f"skyline-worker-{i}", daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()
        self._watchdog_stop = threading.Event()
        self._watchdog: threading.Thread | None = None
        if self.overload.watchdog:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="skyline-watchdog", daemon=True
            )
            self._watchdog.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Build every queryable structure now (offline, not per query)."""
        dataset = self.dataset
        _ = dataset.index
        for stratum in dataset.stratification:
            _ = stratum.tree
        kernel = getattr(dataset.kernel, "wrapped", dataset.kernel)
        if getattr(kernel, "is_batch", False):
            with dataset._build_lock:
                kernel.warm()
        if self._views is not None and not self._views.materialized:
            self._views.materialize()

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; optionally drain and join the pool.

        Already-queued queries still run to completion (their handles
        resolve); only new submissions fail with
        :class:`~repro.exceptions.ServingError`.
        """
        if self._closed:
            return
        self._closed = True
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join()
        with self._workers_lock:
            workers = list(self._workers)
        for _ in workers:
            self._queue.put_sentinel(next(self._seq))
        if wait:
            for thread in workers:
                thread.join()
        if self._parallel is not None:
            self._parallel.close()
        if self._views is not None:
            self._views.detach()
        if self._durability is not None and self._owns_durability:
            self._durability.detach()

    def __enter__(self) -> "SkylineServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest | None = None, **kwargs) -> QueryHandle:
        """Admit one query; returns its :class:`QueryHandle`.

        Accepts a ready :class:`QueryRequest` or its fields as keyword
        arguments (``server.submit(algorithm="bbs+", deadline=0.5)``).
        Raises :class:`~repro.exceptions.AdmissionRejectedError` when
        the admission controller (or the degradation ladder) refuses
        the query -- before a single dominance comparison has been
        executed on its behalf -- ,
        :class:`~repro.exceptions.QueryShedError` when the bounded
        queue sheds the incoming query under load, and
        :class:`~repro.exceptions.ServingError` after :meth:`close`.
        """
        if request is None:
            request = QueryRequest(**kwargs)
        elif kwargs:
            raise ServingError("pass a QueryRequest or keyword fields, not both")
        metrics = self.metrics
        metrics.on_submitted()
        if self._closed:
            raise ServingError("server is closed")
        if self.validate_on_admission:
            self._ensure_valid_indexes()
        mode = self._ladder.mode
        if mode == "rejecting":
            metrics.on_rejected("rejecting")
            raise AdmissionRejectedError("rejecting", None, None)
        if self._views is not None:
            handle = self._serve_from_cache(request)
            if handle is not None:
                return handle
            metrics.on_cache_miss()
        if mode == "cache_only":
            metrics.on_rejected("cache_only")
            raise AdmissionRejectedError("cache_only", None, None)
        decision = self.admission.decide(request, self.dataset, metrics.queue_depth)
        if decision.action == "reject":
            metrics.on_rejected(decision.reason)
            estimate, limit = self._rejection_bounds(request, decision)
            raise AdmissionRejectedError(decision.reason, estimate, limit)
        deflected = decision.action == "deflect"
        priority = request.priority
        if deflected:
            priority = DEFLECTED_PRIORITY + request.priority
        handle = QueryHandle(request, next(self._seq), decision.estimate, deflected)
        metrics.on_admitted(deflected)
        metrics.on_enqueued()
        shed_reason = self._queue.put(priority, handle.seq, handle)
        if shed_reason is not None:
            metrics.on_shed(shed_reason)
            error = QueryShedError(self._queue.policy, shed_reason)
            error.partial = self._empty_partial(request, "shed")
            handle._finish("shed", error=error)
            raise error
        return handle

    def _on_queue_shed(self, handle: QueryHandle, reason: str) -> None:
        """Resolve one queued query the shedding policy dropped.

        The handle finishes with a typed
        :class:`~repro.exceptions.QueryShedError` carrying an empty
        partial (zero comparisons executed, trivially a prefix of the
        emission order), so blocked ``result()`` callers never hang.
        """
        error = QueryShedError(self._queue.policy, reason)
        error.partial = self._empty_partial(handle.request, "shed")
        handle._finish("shed", error=error)
        self.metrics.on_shed(reason)

    def _serve_from_cache(self, request: QueryRequest) -> QueryHandle | None:
        """Serve ``request`` from the views layer; ``None`` on a miss.

        Runs at submission time, under the read lock (so the looked-up
        answer is consistent with a committed dataset state and cannot
        race a writer).  A hit bypasses the admission cost model, the
        queue and the executor entirely: the handle resolves before this
        method returns, in O(answer) time, with its private counter
        bundle untouched -- zero dominance comparisons, asserted.
        """
        shape = request.shape()  # raises ServingError on invalid combos
        with self._rwlock.read_lock():
            hit = self._views.lookup(shape)
            if hit is None:
                return None
            handle = QueryHandle(request, next(self._seq), None, False)
            handle.served_version = hit.version
            assert handle.stats.total_dominance_checks == 0, (
                "cache hit must not execute dominance comparisons"
            )
            handle.started_at = handle.submitted_at
            handle._sink.extend(hit.points)
            handle._finish(
                "complete",
                result=PartialResult(
                    points=hit.points,
                    complete=True,
                    algorithm=request.algorithm,
                    elapsed=time.perf_counter() - handle.submitted_at,
                    counters=handle.stats.snapshot(),
                    cached=True,
                ),
            )
        self.metrics.on_cache_hit(hit.age)
        return handle

    def _rejection_bounds(self, request: QueryRequest, decision):
        """The (estimate, limit) pair a rejection error reports."""
        if decision.reason == "comparisons":
            return decision.estimate.comparisons, float(request.max_comparisons)
        if decision.reason == "deadline":
            return decision.estimate.seconds, request.deadline
        return float(self.metrics.queue_depth), float(self.admission.hard_limit)

    def _ensure_valid_indexes(self) -> bool:
        """Validate the built R-trees; rebuild once on corruption.

        Returns ``True`` when a repair happened.  A second validation
        failure after the rebuild surfaces as
        :class:`~repro.exceptions.RTreeError` to the submitter.
        """
        try:
            with self._rwlock.read_lock():
                self._validate_trees()
            return False
        except RTreeError:
            pass
        with self._rwlock.write_lock():
            try:
                self._validate_trees()
                return False  # another submitter repaired while we waited
            except RTreeError:
                self.dataset.rebuild_indexes(validate=True)
                self.metrics.on_index_repair()
                return True

    def _validate_trees(self) -> None:
        dataset = self.dataset
        dataset.index.validate()
        stratification = dataset._stratification
        if stratification is not None:
            for stratum in stratification:
                if stratum._tree is not None:
                    stratum._tree.validate()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self, slot: int) -> None:
        while True:
            handle = self._queue.get()
            if handle is None:  # shutdown sentinel
                break
            self.metrics.on_dequeued()
            with self._inflight_lock:
                self._inflight[slot] = (handle, time.monotonic())
            try:
                self._run_query(handle)
            except BaseException as err:  # noqa: BLE001 - last resort
                if not handle.done():
                    error = err if isinstance(err, Exception) else ServingError(
                        f"worker thread died mid-query "
                        f"({type(err).__name__}); resubmit"
                    )
                    handle._finish("error", error=error)
                if not isinstance(err, Exception):
                    # A genuine thread-killing event (SystemExit-like):
                    # let the thread die; the watchdog respawns it.
                    raise
            finally:
                with self._inflight_lock:
                    self._inflight.pop(slot, None)

    def _run_query(self, handle: QueryHandle) -> None:
        request = handle.request
        metrics = self.metrics
        # Chaos fault points, armed by repro.resilience.chaos: a kill
        # injector raising a non-Exception (e.g. SystemExit) emulates a
        # dying worker thread; a stall injector emulates a wedged one.
        if self._worker_injector is not None:
            self._worker_injector.maybe_fail("server.worker")
        if self._stall_injector is not None:
            self._stall_injector.maybe_stall("server.worker")
        handle.started_at = time.perf_counter()
        wait = handle.started_at - handle.submitted_at
        metrics.on_started(wait)
        outcome = "error"
        fallback_used = False
        result: PartialResult | None = None
        try:
            if handle.cancel_token.cancelled:
                error = QueryCancelledError()
                error.partial = self._empty_partial(request, "cancelled")
                handle._finish("cancelled", error=error)
                outcome = "cancelled"
                return
            shape = request.shape()
            attempt = 0
            while True:
                elapsed = time.perf_counter() - handle.submitted_at
                remaining = None
                if request.deadline is not None:
                    remaining = request.deadline - elapsed
                    if remaining <= 0:  # expired while queued / retrying
                        error = QueryTimeoutError(request.deadline, elapsed)
                        error.partial = self._empty_partial(request, "deadline")
                        handle._finish("timeout", error=error)
                        outcome = "timeout"
                        return
                context = QueryContext(
                    deadline=remaining,
                    budget=request.budget(),
                    cancel=handle.cancel_token,
                )
                try:
                    result = self._attempt(handle, request, shape, context)
                    break
                except QueryTimeoutError as err:
                    handle._finish("timeout", error=err)
                    outcome = "timeout"
                    return
                except QueryCancelledError as err:
                    handle._finish("cancelled", error=err)
                    outcome = "cancelled"
                    return
                except ResilienceError as err:
                    handle._finish("error", error=err)
                    return
                except RETRYABLE_FAULTS as err:
                    if not self._grant_retry(handle, request, attempt):
                        handle._finish("error", error=err)
                        return
                    attempt += 1
            fallback_used = result.fallback
            outcome = "complete" if result.complete else "partial"
            handle._finish(outcome, result=result)
            if result.complete:
                self.admission.observe(
                    request.algorithm,
                    len(self.dataset),
                    handle.stats,
                    result.elapsed,
                    shape=shape,
                )
        except Exception as err:
            handle._finish("error", error=err)
            outcome = "error"
        finally:
            # No path may leave the handle unresolved -- a hung
            # ``result()`` is the one failure mode clients cannot
            # defend against.
            if not handle.done():
                handle._finish(
                    "error",
                    error=ServingError(
                        "query aborted: worker terminated mid-execution"
                    ),
                )
            elapsed = time.perf_counter() - handle.started_at
            metrics.on_finished(
                request.algorithm,
                elapsed,
                outcome,
                stats=handle.stats,
                fallback=fallback_used,
            )

    def _grant_retry(self, handle: QueryHandle, request: QueryRequest,
                     attempt: int) -> bool:
        """Decide + pace one retry of a transiently-failed execution.

        Grants only idempotent requests under the configured
        :class:`~repro.serving.overload.RetryPolicy`, refuses when the
        backoff sleep would blow the end-to-end deadline, clears the
        handle's sink (the retry restarts emission from scratch, so the
        observable partial stays a prefix of one attempt's emission
        order) and sleeps the jittered backoff before returning.
        """
        policy = self._retry
        if policy is None or not policy.grant(attempt, request.idempotent):
            return False
        delay = policy.delay(attempt)
        if request.deadline is not None:
            elapsed = time.perf_counter() - handle.submitted_at
            if elapsed + delay >= request.deadline:
                return False
        self.metrics.on_retry()
        # Retraction, not deletion: subscribers (network streams) get a
        # typed ``reset`` event so remote clients discard the stale
        # prefix before the retry's re-emission arrives.
        handle._sink.reset()
        time.sleep(delay)
        return True

    def _attempt(self, handle: QueryHandle, request: QueryRequest,
                 shape, context: QueryContext) -> PartialResult:
        """One execution attempt under the read lock.

        Routes through the parallel executor / batch kernel only when
        the degradation ladder and the matching circuit breaker allow
        it; breaker verdicts are recorded from the attempt's outcome
        (a parallel-pool fallback or batch-kernel fallback counts as a
        failure of the guarded fast path even though the query itself
        recovered).
        """
        metrics = self.metrics
        dataset = self.dataset
        use_parallel = (
            self._parallel is not None
            and shape.kind == "skyline"
            and request.budget() is None
            and len(dataset) >= self.parallel_threshold
            and not self._ladder.at_least("serial_only")
            and (self._parallel_breaker is None or self._parallel_breaker.allow())
        )
        with self._rwlock.read_lock():
            if use_parallel:
                breaker = self._parallel_breaker
                try:
                    presult = self._parallel.run(
                        request.algorithm,
                        stats=handle.stats,
                        context=context,
                        sink=handle._sink,
                        **request.options,
                    )
                except Exception:
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                metrics.on_parallel(
                    presult.fallback,
                    routed_serial=presult.routed_serial,
                    tasks=presult.tasks,
                    steals=presult.steals,
                    filter_checks=presult.filter_board_checks,
                    filter_hits=presult.filter_board_hits,
                    stage_seconds=presult.stage_seconds,
                )
                if breaker is not None:
                    if presult.fallback:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                result = presult.to_partial()
            elif shape.kind != "skyline":
                result = self._run_shaped(handle, request, shape, context)
            else:
                view = dataset.query_view(
                    stats=handle.stats, context=context
                )
                breaker = self._kernel_breaker
                base_kernel = getattr(view.kernel, "wrapped", view.kernel)
                batch = getattr(base_kernel, "is_batch", False)
                probing = True
                if batch and breaker is not None:
                    probing = breaker.allow()
                    if not probing:
                        # Breaker open: degrade to the reference python
                        # kernel up front instead of re-paying the batch
                        # failure + per-query fallback.
                        view = view.fallback_view()
                try:
                    result = execute(
                        view,
                        request.algorithm,
                        context,
                        fallback=request.fallback,
                        sink=handle._sink,
                        **request.options,
                    )
                except RETRYABLE_FAULTS:
                    if batch and breaker is not None and probing:
                        breaker.record_failure()
                    raise
                if batch and breaker is not None and probing:
                    if result.fallback:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
            # Both reads happen while writers are still excluded:
            # the version tag and the populated entry are guaranteed
            # consistent with the state the answer was computed on.
            handle.served_version = self.dataset.update_version
            if self._views is not None and result.complete:
                self._views.store(
                    shape, result.points, region=request.constraint
                )
                metrics.on_cache_stored()
        return result

    def _run_shaped(self, handle: QueryHandle, request: QueryRequest,
                    shape, context: QueryContext) -> PartialResult:
        """Execute a subspace/constrained/skyband query on a private view.

        Same isolation contract as the full-space path: private stats,
        private kernel, armed context (deadlines, budgets and
        cancellation all enforced at the evaluators' checkpoints).
        Shaped evaluators are not generators, so answers land in the
        handle's sink only on completion.
        """
        from repro.queries.constrained import constrained_skyline
        from repro.queries.skyband import k_skyband
        from repro.queries.subspace import project_dataset

        start = time.perf_counter()
        view = self.dataset.query_view(stats=handle.stats, context=context)
        context.start(handle.stats)
        if shape.kind == "subspace":
            from repro.algorithms.base import get_algorithm

            projected = project_dataset(view, list(shape.subspace))
            projected.context = context
            by_rid = {p.record.rid: p for p in view.points}
            points = [
                by_rid[p.record.rid]
                for p in get_algorithm(
                    request.algorithm, **request.options
                ).run(projected)
            ]
        elif shape.kind == "constrained":
            points = constrained_skyline(
                view, request.constraint, request.options.get("method", "bbs")
            )
        else:  # skyband
            points = k_skyband(
                view, request.skyband_k, request.options.get("method", "bbs")
            )
        handle._sink.extend(points)
        return PartialResult(
            points=points,
            complete=True,
            algorithm=request.algorithm,
            elapsed=time.perf_counter() - start,
            counters=handle.stats.snapshot(),
            checkpoints=context.checkpoints,
        )

    @staticmethod
    def _empty_partial(request: QueryRequest, reason: str) -> PartialResult:
        return PartialResult(
            points=[],
            complete=False,
            exhausted_reason=reason,
            algorithm=request.algorithm,
        )

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Monitor worker liveness; drive the degradation ladder.

        Each sweep: (1) any dead worker thread has its orphaned query
        resolved with a typed error and a replacement thread spawned in
        its slot; (2) in-flight queries older than ``stuck_after`` are
        flagged; (3) the worst current health signal picks a target
        mode -- escalation is immediate, recovery steps down one rung
        per ``recovery_window`` of continuously-clear signals.
        """
        cfg = self.overload
        while not self._watchdog_stop.wait(cfg.watchdog_interval):
            if self._closed:
                break
            self._watchdog_sweep()

    def _watchdog_sweep(self) -> None:
        cfg = self.overload
        metrics = self.metrics
        now = time.monotonic()
        with self._workers_lock:
            workers = list(enumerate(self._workers))
        dead = [(slot, t) for slot, t in workers if not t.is_alive()]
        for slot, thread in dead:
            metrics.on_worker_death()
            self._worker_deaths.append(now)
            with self._inflight_lock:
                orphan = self._inflight.pop(slot, None)
            if orphan is not None and not orphan[0].done():
                orphan[0]._finish(
                    "error",
                    error=ServingError(
                        "worker thread died mid-query; resubmit"
                    ),
                )
            replacement = threading.Thread(
                target=self._worker, args=(slot,),
                name=f"{thread.name}+", daemon=True,
            )
            with self._workers_lock:
                self._workers[slot] = replacement
            replacement.start()
            metrics.on_worker_restart()
        self._worker_deaths = [
            t for t in self._worker_deaths if now - t < cfg.death_window
        ]
        stuck_seqs: set[int] = set()
        if cfg.stuck_after is not None:
            with self._inflight_lock:
                inflight = list(self._inflight.values())
            stuck_seqs = {
                h.seq for h, started in inflight
                if now - started > cfg.stuck_after
            }
            for _ in stuck_seqs - self._stuck_seqs:
                metrics.on_stuck_query()
        self._stuck_seqs = stuck_seqs
        deaths = len(self._worker_deaths)
        breaker_open = any(
            b is not None and b.state == "open"
            for b in (self._parallel_breaker, self._kernel_breaker)
        )
        if deaths >= cfg.cache_only_deaths or stuck_seqs:
            target = "cache_only"
            reason = (
                "repeated-worker-deaths"
                if deaths >= cfg.cache_only_deaths
                else "stuck-queries"
            )
            if self._views is None:
                # Without a result cache there is nothing to serve in
                # cache_only mode; refusing outright is more honest.
                target = "rejecting"
        elif deaths > 0 or breaker_open:
            target = "serial_only"
            reason = "worker-death" if deaths else "breaker-open"
        else:
            target, reason = "healthy", ""
        if target != "healthy":
            self._last_degraded_signal = now
            self._ladder.escalate(target, reason)
        elif (
            self._ladder.mode != "healthy"
            and now - self._last_degraded_signal >= cfg.recovery_window
        ):
            self._ladder.recover()
            # Each rung re-earns its own clear window before the next.
            self._last_degraded_signal = now

    # ------------------------------------------------------------------
    # Updates (writer side)
    # ------------------------------------------------------------------
    def insert(self, record: "Record") -> None:
        """Insert one record, draining in-flight queries first.

        Raises :class:`~repro.exceptions.LockTimeoutError` when the
        overload config's ``update_lock_timeout`` elapses before every
        in-flight query drains (the dataset is untouched in that case).
        """
        from repro.exceptions import DurabilityError

        self._check_writable()
        timeout = self.overload.update_lock_timeout
        with self._rwlock.write_lock(timeout=timeout):
            self._chaos_lock_hold()
            try:
                self.dataset.insert_record(record)
            except DurabilityError as err:
                # The dataset already rolled the update back; the
                # storage layer is no longer trustworthy for writes.
                self._enter_read_only(str(err))
                raise
            if self._parallel is not None:
                # The shared-memory arrays snapshot the points at pack
                # time; re-shard on next parallel query.
                self._parallel.invalidate()
        self.metrics.on_update()

    def delete(self, rid) -> bool:
        """Delete the record with id ``rid`` (``False`` when absent)."""
        from repro.exceptions import DurabilityError

        self._check_writable()
        timeout = self.overload.update_lock_timeout
        with self._rwlock.write_lock(timeout=timeout):
            self._chaos_lock_hold()
            try:
                removed = self.dataset.delete_record(rid)
            except DurabilityError as err:
                self._enter_read_only(str(err))
                raise
            if removed and self._parallel is not None:
                self._parallel.invalidate()
        if removed:
            self.metrics.on_update()
        return removed

    def checkpoint(self):
        """Force a durability checkpoint now (writer-excluded snapshot).

        Raises :class:`~repro.exceptions.ServingError` when the server
        was built without ``durability``.
        """
        if self._durability is None:
            raise ServingError("server has no durability manager")
        timeout = self.overload.update_lock_timeout
        with self._rwlock.write_lock(timeout=timeout):
            return self._durability.checkpoint()

    def _check_writable(self) -> None:
        if self._read_only:
            raise ServingError(
                f"server is read-only ({self._read_only_reason}); "
                "recover the durability directory and restart to resume writes"
            )

    def _enter_read_only(self, reason: str) -> None:
        """Latch read-only degradation after a durability failure."""
        if not self._read_only:
            self._read_only = True
            self._read_only_reason = reason
            self.metrics.on_read_only(reason)

    def _chaos_lock_hold(self) -> None:
        """Chaos fault point: stall while holding the writer lock."""
        if self._lock_injector is not None:
            self._lock_injector.maybe_stall("server.update.lock_hold")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ComparisonStats:
        """Server-wide counter aggregate (merged per-query bundles)."""
        return self.metrics.comparison_totals

    @property
    def views(self):
        """The :class:`~repro.views.ViewManager` (``None`` when off)."""
        return self._views

    @property
    def durability(self):
        """The :class:`~repro.durability.DurabilityManager` (or ``None``)."""
        return self._durability

    @property
    def read_only(self) -> bool:
        """Whether a durability failure latched the server read-only."""
        return self._read_only

    @property
    def ladder(self) -> DegradationLadder:
        """The degradation ladder (``docs/overload.md``)."""
        return self._ladder

    @property
    def mode(self) -> str:
        """Current degradation mode (``"healthy"`` .. ``"rejecting"``)."""
        return self._ladder.mode

    @property
    def breakers(self) -> dict[str, CircuitBreaker]:
        """The circuit breakers by name (empty when disabled)."""
        result = {}
        if self._parallel_breaker is not None:
            result["parallel"] = self._parallel_breaker
        if self._kernel_breaker is not None:
            result["kernel"] = self._kernel_breaker
        return result

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet executing."""
        return self.metrics.queue_depth

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkylineServer(n={len(self.dataset)}, "
            f"workers={len(self._workers)}, queue_depth={self.queue_depth}, "
            f"closed={self._closed})"
        )
