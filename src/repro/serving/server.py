"""Thread-pool skyline server: many concurrent queries, one dataset.

:class:`SkylineServer` multiplexes concurrent skyline queries over one
shared immutable :class:`~repro.transform.dataset.TransformedDataset`
(the paper's setting: an index built once offline, queried repeatedly).
The moving parts, in submission order:

1. **Admission** (:mod:`repro.serving.admission`): every
   :class:`QueryRequest` is checked against its comparison budget and
   deadline using the cost model's up-front estimate, and against the
   server's pending capacity.  Hopeless or over-capacity queries are
   rejected with :class:`~repro.exceptions.AdmissionRejectedError`
   having executed zero dominance comparisons; overload can instead
   *deflect* (admit at the lowest priority).
2. **Queueing**: admitted requests enter a priority queue (lower
   ``priority`` runs sooner; FIFO within a priority).
3. **Execution**: a fixed pool of worker threads runs each query on its
   own :meth:`~repro.transform.dataset.TransformedDataset.query_view` --
   private :class:`~repro.core.stats.ComparisonStats`, private kernel,
   private :class:`~repro.resilience.context.QueryContext` -- through
   the resilient executor (deadlines, budgets, cancellation and batch
   kernel -> python fallback all apply per query).  The request deadline
   is **end-to-end**: time spent queued counts against it.
4. **Accounting**: on completion the query's private counter bundle is
   merged into the server-wide aggregate and its latency recorded in
   per-algorithm histograms (:mod:`repro.serving.metrics`); completed
   queries also calibrate the admission cost estimator.

Updates (:meth:`SkylineServer.insert` / :meth:`SkylineServer.delete`)
take the writer side of a writer-preferring reader-writer lock: they
drain in-flight queries, mutate the dataset (incremental index + strata
maintenance), and only then let new queries start.

With ``cache`` enabled (``docs/views.md``), step 1 is preceded by a
views-layer lookup: a query whose canonical shape is resident is served
at submission time in O(answer) with zero dominance comparisons, and
committed updates invalidate or incrementally patch affected entries
inside the writer lock, so readers can never observe a stale hit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from queue import PriorityQueue
from typing import TYPE_CHECKING

from repro.core.stats import ComparisonStats
from repro.exceptions import (
    AdmissionRejectedError,
    QueryCancelledError,
    QueryTimeoutError,
    ResilienceError,
    RTreeError,
    ServingError,
)
from repro.resilience import (
    CancellationToken,
    PartialResult,
    QueryContext,
    ResourceBudget,
    execute,
)
from repro.serving.admission import AdmissionController
from repro.serving.metrics import ServerMetrics
from repro.serving.rwlock import ReadWriteLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.record import Record
    from repro.transform.dataset import TransformedDataset
    from repro.transform.point import Point

__all__ = ["QueryRequest", "QueryHandle", "SkylineServer"]

#: Priority deflected queries are demoted to (beyond any sane user value).
DEFLECTED_PRIORITY = 1 << 20


@dataclass(frozen=True)
class QueryRequest:
    """One query's full specification, as submitted to the server.

    ``priority`` orders the queue (lower runs sooner); ``deadline`` is
    end-to-end wall-clock seconds from submission; the ``max_*`` fields
    build the query's :class:`~repro.resilience.context.ResourceBudget`;
    ``options`` is forwarded to the algorithm constructor (e.g.
    ``{"window_size": 128}``); ``fallback`` controls batch-kernel
    recovery; ``tag`` is an opaque client label echoed in the handle.

    At most one of the *shaping* fields may be set: ``subspace`` (an
    attribute-name collection: skyline over the projection),
    ``constraint`` (a :class:`~repro.queries.constrained.Constraint`) or
    ``skyband_k`` (the k-skyband).  All three default off, leaving the
    full-space skyline.  For constrained/skyband requests ``options``
    may carry ``{"method": "bnl"/"nested-loops"}`` to override the
    default index-accelerated evaluation.
    """

    algorithm: str = "sdc+"
    deadline: float | None = None
    max_comparisons: int | None = None
    max_heap_entries: int | None = None
    max_window_entries: int | None = None
    max_answers: int | None = None
    priority: int = 0
    fallback: bool = True
    options: dict = field(default_factory=dict)
    tag: str | None = None
    subspace: tuple | None = None
    constraint: object | None = None
    skyband_k: int | None = None

    def shape(self):
        """This request's canonical, algorithm-independent
        :class:`~repro.views.keys.QueryShape` (cache key).

        Raises :class:`~repro.exceptions.ServingError` when more than
        one shaping field is set.
        """
        from repro.views.keys import QueryShape

        return QueryShape.of(
            subspace=self.subspace,
            constraint=self.constraint,
            skyband_k=self.skyband_k,
        )

    def budget(self) -> ResourceBudget | None:
        """The request's resource budget (``None`` when unlimited)."""
        limits = (
            self.max_comparisons,
            self.max_heap_entries,
            self.max_window_entries,
            self.max_answers,
        )
        if any(v is not None for v in limits):
            return ResourceBudget(*limits)
        return None


class QueryHandle:
    """Future-like handle to one admitted query.

    ``result()`` blocks for the outcome, ``partial()`` snapshots the
    answers emitted so far (valid even while the query runs -- always a
    prefix of the algorithm's deterministic emission order), and
    ``cancel()`` fires the query's cooperative cancellation token.

    ``stats`` is the query's **private**
    :class:`~repro.core.stats.ComparisonStats` bundle -- every
    comparison, node access and heap operation this query performed, and
    nothing any other query did.
    """

    def __init__(self, request: QueryRequest, seq: int, estimate,
                 deflected: bool) -> None:
        self.request = request
        self.seq = seq
        self.estimate = estimate
        self.deflected = deflected
        self.stats = ComparisonStats()
        self.cancel_token = CancellationToken()
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.outcome: str | None = None
        #: Dataset ``update_version`` the answer reflects (set while the
        #: read lock is held, for both cache hits and computed queries);
        #: ``None`` until then.  Staleness tests replay against this.
        self.served_version: int | None = None
        self._sink: list["Point"] = []
        self._result: PartialResult | None = None
        self._error: BaseException | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Whether the query reached a terminal state."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> PartialResult:
        """Block for the outcome.

        Returns the :class:`~repro.resilience.executor.PartialResult`
        (complete or budget-truncated); re-raises the query's typed
        error for deadline expiry, cancellation or kernel failure --
        exactly the contract of
        :meth:`SkylineEngine.query <repro.engine.SkylineEngine.query>`.
        Raises :class:`TimeoutError` when ``timeout`` elapses first
        (the query keeps running; call again).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query (seq={self.seq}, {self.request.algorithm}) still "
                f"running after {timeout}s wait"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def partial(self) -> list["Point"]:
        """Snapshot of the answers emitted so far (running or done)."""
        if self._result is not None:
            return list(self._result.points)
        error = self._error
        if error is not None and getattr(error, "partial", None) is not None:
            return list(error.partial.points)
        return list(self._sink)

    def cancel(self) -> bool:
        """Request cooperative cancellation; ``False`` if already done.

        A queued query is dropped without running; a running query stops
        at its next checkpoint and its handle raises
        :class:`~repro.exceptions.QueryCancelledError` (with the partial
        answers attached).
        """
        if self._done.is_set():
            return False
        self.cancel_token.cancel()
        return True

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent queued (``None`` until execution started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    # ------------------------------------------------------------------
    def _finish(self, outcome: str, result: PartialResult | None = None,
                error: BaseException | None = None) -> None:
        self.finished_at = time.perf_counter()
        self.outcome = outcome
        self._result = result
        self._error = error
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.outcome if self._done.is_set() else (
            "running" if self.started_at is not None else "queued"
        )
        return (
            f"QueryHandle(seq={self.seq}, {self.request.algorithm}, {state})"
        )


class SkylineServer:
    """Concurrent skyline query server over one shared dataset.

    Parameters
    ----------
    target:
        A :class:`~repro.engine.SkylineEngine` or a
        :class:`~repro.transform.dataset.TransformedDataset`.
    workers:
        Worker threads executing admitted queries.
    admission:
        A ready :class:`~repro.serving.admission.AdmissionController`;
        when omitted one is built from ``max_pending`` / ``hard_limit``
        / ``overload_policy``.
    validate_on_admission:
        Check R-tree structural invariants at every submission and, on
        corruption, rebuild the indexes once before retrying --
        availability recovery without an engine restart (repairs are
        counted in the metrics).  Validation is O(index), so it defaults
        off; switch it on for untrusted index storage.
    warm:
        Pre-build the global R-tree, the SDC+ stratum trees and the
        batch kernel's relation memo at construction, so no query pays
        the cold-build cost (mirrors the paper's offline index build).
    metrics:
        A ready :class:`~repro.serving.metrics.ServerMetrics` (fresh
        when omitted).
    parallel:
        A :class:`~repro.parallel.ParallelConfig` (or worker count)
        enabling the sharded process-pool execution mode
        (``docs/parallel.md``).  Large admitted queries without a
        resource budget run on the shared
        :class:`~repro.parallel.ParallelSkylineExecutor`; everything
        else stays on the serial per-thread path.  ``None`` (default)
        disables sharding.
    parallel_threshold:
        Minimum dataset size (points) before an admitted query is
        routed to the parallel executor.
    cache:
        Result caching (``docs/views.md``).  ``None``/``False``
        (default) disables it -- every query recomputes, and per-query
        counters match a serial run exactly.  ``True`` builds a
        :class:`~repro.views.ViewManager` with a fresh
        :class:`~repro.views.ResultCache` (sized by ``cache_entries`` /
        ``cache_bytes``); a ready ``ViewManager`` or ``ResultCache`` is
        used as-is.  With caching on, a submitted query whose shape is
        resident is served at admission in O(answer) with **zero**
        dominance comparisons, bypassing the cost model and the
        executor; committed updates invalidate or incrementally patch
        affected entries before the writer lock releases.
    cache_entries / cache_bytes:
        Budgets for the built cache when ``cache=True``.
    """

    def __init__(
        self,
        target,
        *,
        workers: int = 4,
        admission: AdmissionController | None = None,
        max_pending: int = 64,
        hard_limit: int | None = None,
        overload_policy: str = "deflect",
        validate_on_admission: bool = False,
        warm: bool = True,
        metrics: ServerMetrics | None = None,
        parallel=None,
        parallel_threshold: int = 5000,
        cache=None,
        cache_entries: int = 256,
        cache_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if workers < 1:
            raise ServingError("workers must be positive")
        self.dataset: "TransformedDataset" = getattr(target, "dataset", target)
        self.parallel_threshold = parallel_threshold
        if parallel is not None:
            from repro.parallel import ParallelSkylineExecutor

            self._parallel = ParallelSkylineExecutor(self.dataset, parallel)
        else:
            self._parallel = None
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                max_pending=max_pending,
                hard_limit=hard_limit,
                overload_policy=overload_policy,
            )
        )
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.validate_on_admission = validate_on_admission
        self._rwlock = ReadWriteLock()
        self._queue: PriorityQueue = PriorityQueue()
        self._seq = itertools.count()
        self._closed = False
        self._views = None
        if cache:
            from repro.views import ResultCache, ViewManager

            if isinstance(cache, ViewManager):
                if cache.dataset is not self.dataset:
                    raise ServingError(
                        "the ViewManager is attached to a different dataset"
                    )
                if cache.metrics is None:
                    cache.metrics = self.metrics
                    if cache.cache.metrics is None:
                        cache.cache.metrics = self.metrics
                self._views = cache
            elif isinstance(cache, ResultCache):
                self._views = ViewManager(
                    self.dataset, cache=cache, metrics=self.metrics
                )
            else:
                self._views = ViewManager(
                    self.dataset,
                    metrics=self.metrics,
                    cache_entries=cache_entries,
                    cache_bytes=cache_bytes,
                )
        if warm:
            self.warm()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"skyline-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Build every queryable structure now (offline, not per query)."""
        dataset = self.dataset
        _ = dataset.index
        for stratum in dataset.stratification:
            _ = stratum.tree
        kernel = getattr(dataset.kernel, "wrapped", dataset.kernel)
        if getattr(kernel, "is_batch", False):
            with dataset._build_lock:
                kernel.warm()
        if self._views is not None and not self._views.materialized:
            self._views.materialize()

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; optionally drain and join the pool.

        Already-queued queries still run to completion (their handles
        resolve); only new submissions fail with
        :class:`~repro.exceptions.ServingError`.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put((float("inf"), next(self._seq), None))
        if wait:
            for thread in self._workers:
                thread.join()
        if self._parallel is not None:
            self._parallel.close()
        if self._views is not None:
            self._views.detach()

    def __enter__(self) -> "SkylineServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest | None = None, **kwargs) -> QueryHandle:
        """Admit one query; returns its :class:`QueryHandle`.

        Accepts a ready :class:`QueryRequest` or its fields as keyword
        arguments (``server.submit(algorithm="bbs+", deadline=0.5)``).
        Raises :class:`~repro.exceptions.AdmissionRejectedError` when
        the admission controller refuses the query -- before a single
        dominance comparison has been executed on its behalf -- and
        :class:`~repro.exceptions.ServingError` after :meth:`close`.
        """
        if request is None:
            request = QueryRequest(**kwargs)
        elif kwargs:
            raise ServingError("pass a QueryRequest or keyword fields, not both")
        metrics = self.metrics
        metrics.on_submitted()
        if self._closed:
            raise ServingError("server is closed")
        if self.validate_on_admission:
            self._ensure_valid_indexes()
        if self._views is not None:
            handle = self._serve_from_cache(request)
            if handle is not None:
                return handle
            metrics.on_cache_miss()
        decision = self.admission.decide(request, self.dataset, metrics.queue_depth)
        if decision.action == "reject":
            metrics.on_rejected(decision.reason)
            estimate, limit = self._rejection_bounds(request, decision)
            raise AdmissionRejectedError(decision.reason, estimate, limit)
        deflected = decision.action == "deflect"
        priority = request.priority
        if deflected:
            priority = DEFLECTED_PRIORITY + request.priority
        handle = QueryHandle(request, next(self._seq), decision.estimate, deflected)
        metrics.on_admitted(deflected)
        metrics.on_enqueued()
        self._queue.put((priority, handle.seq, handle))
        return handle

    def _serve_from_cache(self, request: QueryRequest) -> QueryHandle | None:
        """Serve ``request`` from the views layer; ``None`` on a miss.

        Runs at submission time, under the read lock (so the looked-up
        answer is consistent with a committed dataset state and cannot
        race a writer).  A hit bypasses the admission cost model, the
        queue and the executor entirely: the handle resolves before this
        method returns, in O(answer) time, with its private counter
        bundle untouched -- zero dominance comparisons, asserted.
        """
        shape = request.shape()  # raises ServingError on invalid combos
        with self._rwlock.read_lock():
            hit = self._views.lookup(shape)
            if hit is None:
                return None
            handle = QueryHandle(request, next(self._seq), None, False)
            handle.served_version = hit.version
            assert handle.stats.total_dominance_checks == 0, (
                "cache hit must not execute dominance comparisons"
            )
            handle.started_at = handle.submitted_at
            handle._sink.extend(hit.points)
            handle._finish(
                "complete",
                result=PartialResult(
                    points=hit.points,
                    complete=True,
                    algorithm=request.algorithm,
                    elapsed=time.perf_counter() - handle.submitted_at,
                    counters=handle.stats.snapshot(),
                    cached=True,
                ),
            )
        self.metrics.on_cache_hit(hit.age)
        return handle

    def _rejection_bounds(self, request: QueryRequest, decision):
        """The (estimate, limit) pair a rejection error reports."""
        if decision.reason == "comparisons":
            return decision.estimate.comparisons, float(request.max_comparisons)
        if decision.reason == "deadline":
            return decision.estimate.seconds, request.deadline
        return float(self.metrics.queue_depth), float(self.admission.hard_limit)

    def _ensure_valid_indexes(self) -> bool:
        """Validate the built R-trees; rebuild once on corruption.

        Returns ``True`` when a repair happened.  A second validation
        failure after the rebuild surfaces as
        :class:`~repro.exceptions.RTreeError` to the submitter.
        """
        try:
            with self._rwlock.read_lock():
                self._validate_trees()
            return False
        except RTreeError:
            pass
        with self._rwlock.write_lock():
            try:
                self._validate_trees()
                return False  # another submitter repaired while we waited
            except RTreeError:
                self.dataset.rebuild_indexes(validate=True)
                self.metrics.on_index_repair()
                return True

    def _validate_trees(self) -> None:
        dataset = self.dataset
        dataset.index.validate()
        stratification = dataset._stratification
        if stratification is not None:
            for stratum in stratification:
                if stratum._tree is not None:
                    stratum._tree.validate()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            _, _, handle = self._queue.get()
            if handle is None:  # shutdown sentinel
                break
            self.metrics.on_dequeued()
            try:
                self._run_query(handle)
            except BaseException as err:  # pragma: no cover - last resort
                if not handle.done():
                    handle._finish("error", error=err)

    def _run_query(self, handle: QueryHandle) -> None:
        request = handle.request
        metrics = self.metrics
        handle.started_at = time.perf_counter()
        wait = handle.started_at - handle.submitted_at
        metrics.on_started(wait)
        outcome = "error"
        fallback_used = False
        result: PartialResult | None = None
        try:
            if handle.cancel_token.cancelled:
                error = QueryCancelledError()
                error.partial = self._empty_partial(request, "cancelled")
                handle._finish("cancelled", error=error)
                outcome = "cancelled"
                return
            remaining = None
            if request.deadline is not None:
                remaining = request.deadline - wait
                if remaining <= 0:  # expired while queued
                    error = QueryTimeoutError(request.deadline, wait)
                    error.partial = self._empty_partial(request, "deadline")
                    handle._finish("timeout", error=error)
                    outcome = "timeout"
                    return
            context = QueryContext(
                deadline=remaining,
                budget=request.budget(),
                cancel=handle.cancel_token,
            )
            shape = request.shape()
            use_parallel = (
                self._parallel is not None
                and shape.kind == "skyline"
                and request.budget() is None
                and len(self.dataset) >= self.parallel_threshold
            )
            with self._rwlock.read_lock():
                try:
                    if use_parallel:
                        presult = self._parallel.run(
                            request.algorithm,
                            stats=handle.stats,
                            context=context,
                            sink=handle._sink,
                            **request.options,
                        )
                        metrics.on_parallel(presult.fallback)
                        result = presult.to_partial()
                    elif shape.kind != "skyline":
                        result = self._run_shaped(handle, request, shape, context)
                    else:
                        view = self.dataset.query_view(
                            stats=handle.stats, context=context
                        )
                        result = execute(
                            view,
                            request.algorithm,
                            context,
                            fallback=request.fallback,
                            sink=handle._sink,
                            **request.options,
                        )
                except QueryTimeoutError as err:
                    handle._finish("timeout", error=err)
                    outcome = "timeout"
                    return
                except QueryCancelledError as err:
                    handle._finish("cancelled", error=err)
                    outcome = "cancelled"
                    return
                except ResilienceError as err:
                    handle._finish("error", error=err)
                    return
                # Both reads happen while writers are still excluded:
                # the version tag and the populated entry are guaranteed
                # consistent with the state the answer was computed on.
                handle.served_version = self.dataset.update_version
                if self._views is not None and result.complete:
                    self._views.store(
                        shape, result.points, region=request.constraint
                    )
                    metrics.on_cache_stored()
            fallback_used = result.fallback
            outcome = "complete" if result.complete else "partial"
            handle._finish(outcome, result=result)
            if result.complete:
                self.admission.observe(
                    request.algorithm,
                    len(self.dataset),
                    handle.stats,
                    result.elapsed,
                    shape=shape,
                )
        except Exception as err:
            handle._finish("error", error=err)
            outcome = "error"
        finally:
            elapsed = time.perf_counter() - handle.started_at
            metrics.on_finished(
                request.algorithm,
                elapsed,
                outcome,
                stats=handle.stats,
                fallback=fallback_used,
            )

    def _run_shaped(self, handle: QueryHandle, request: QueryRequest,
                    shape, context: QueryContext) -> PartialResult:
        """Execute a subspace/constrained/skyband query on a private view.

        Same isolation contract as the full-space path: private stats,
        private kernel, armed context (deadlines, budgets and
        cancellation all enforced at the evaluators' checkpoints).
        Shaped evaluators are not generators, so answers land in the
        handle's sink only on completion.
        """
        from repro.queries.constrained import constrained_skyline
        from repro.queries.skyband import k_skyband
        from repro.queries.subspace import project_dataset

        start = time.perf_counter()
        view = self.dataset.query_view(stats=handle.stats, context=context)
        context.start(handle.stats)
        if shape.kind == "subspace":
            from repro.algorithms.base import get_algorithm

            projected = project_dataset(view, list(shape.subspace))
            projected.context = context
            by_rid = {p.record.rid: p for p in view.points}
            points = [
                by_rid[p.record.rid]
                for p in get_algorithm(
                    request.algorithm, **request.options
                ).run(projected)
            ]
        elif shape.kind == "constrained":
            points = constrained_skyline(
                view, request.constraint, request.options.get("method", "bbs")
            )
        else:  # skyband
            points = k_skyband(
                view, request.skyband_k, request.options.get("method", "bbs")
            )
        handle._sink.extend(points)
        return PartialResult(
            points=points,
            complete=True,
            algorithm=request.algorithm,
            elapsed=time.perf_counter() - start,
            counters=handle.stats.snapshot(),
            checkpoints=context.checkpoints,
        )

    @staticmethod
    def _empty_partial(request: QueryRequest, reason: str) -> PartialResult:
        return PartialResult(
            points=[],
            complete=False,
            exhausted_reason=reason,
            algorithm=request.algorithm,
        )

    # ------------------------------------------------------------------
    # Updates (writer side)
    # ------------------------------------------------------------------
    def insert(self, record: "Record") -> None:
        """Insert one record, draining in-flight queries first."""
        with self._rwlock.write_lock():
            self.dataset.insert_record(record)
            if self._parallel is not None:
                # The shared-memory arrays snapshot the points at pack
                # time; re-shard on next parallel query.
                self._parallel.invalidate()
        self.metrics.on_update()

    def delete(self, rid) -> bool:
        """Delete the record with id ``rid`` (``False`` when absent)."""
        with self._rwlock.write_lock():
            removed = self.dataset.delete_record(rid)
            if removed and self._parallel is not None:
                self._parallel.invalidate()
        if removed:
            self.metrics.on_update()
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ComparisonStats:
        """Server-wide counter aggregate (merged per-query bundles)."""
        return self.metrics.comparison_totals

    @property
    def views(self):
        """The :class:`~repro.views.ViewManager` (``None`` when off)."""
        return self._views

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet executing."""
        return self.metrics.queue_depth

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkylineServer(n={len(self.dataset)}, "
            f"workers={len(self._workers)}, queue_depth={self.queue_depth}, "
            f"closed={self._closed})"
        )
