"""Concurrent query serving for the skyline engine.

A :class:`~repro.serving.server.SkylineServer` multiplexes many
concurrent skyline queries over one shared immutable
:class:`~repro.transform.dataset.TransformedDataset` through a worker
thread pool, with cost-model admission control
(:mod:`repro.serving.admission`), per-query counter isolation merged
into server-wide aggregates (:mod:`repro.serving.metrics`), and
reader-writer coordination between queries and dynamic updates
(:mod:`repro.serving.rwlock`).  ``repro serve-bench`` drives the seeded
multi-client benchmark in :mod:`repro.serving.bench`.

See ``docs/serving.md`` for a guided tour.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    CostEstimate,
    CostEstimator,
)
from repro.serving.bench import run_serve_bench
from repro.serving.metrics import LatencyHistogram, ServerMetrics
from repro.serving.rwlock import ReadWriteLock
from repro.serving.server import QueryHandle, QueryRequest, SkylineServer

__all__ = [
    "SkylineServer",
    "QueryRequest",
    "QueryHandle",
    "AdmissionController",
    "AdmissionDecision",
    "CostEstimator",
    "CostEstimate",
    "ServerMetrics",
    "LatencyHistogram",
    "ReadWriteLock",
    "run_serve_bench",
]
