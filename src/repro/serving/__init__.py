"""Concurrent query serving for the skyline engine.

A :class:`~repro.serving.server.SkylineServer` multiplexes many
concurrent skyline queries over one shared immutable
:class:`~repro.transform.dataset.TransformedDataset` through a worker
thread pool, with cost-model admission control
(:mod:`repro.serving.admission`), per-query counter isolation merged
into server-wide aggregates (:mod:`repro.serving.metrics`), and
reader-writer coordination between queries and dynamic updates
(:mod:`repro.serving.rwlock`).  The overload-resilience layer
(:mod:`repro.serving.overload`) adds bounded-queue load shedding, a
retry policy, circuit breakers around the expensive recovery paths and
a watchdog-driven degradation ladder.  ``repro serve-bench`` drives the
seeded multi-client benchmark in :mod:`repro.serving.bench`;
``repro replay`` sweeps trace-driven capacity envelopes
(:mod:`repro.serving.replay`).

See ``docs/serving.md`` and ``docs/overload.md`` for guided tours.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    CostEstimate,
    CostEstimator,
)
from repro.serving.bench import run_serve_bench
from repro.serving.metrics import LatencyHistogram, ServerMetrics
from repro.serving.overload import (
    BoundedQueryQueue,
    CircuitBreaker,
    DegradationLadder,
    OverloadConfig,
    RetryPolicy,
)
from repro.serving.replay import replay_trace, run_replay
from repro.serving.rwlock import ReadWriteLock
from repro.serving.server import QueryHandle, QueryRequest, SkylineServer

__all__ = [
    "SkylineServer",
    "QueryRequest",
    "QueryHandle",
    "AdmissionController",
    "AdmissionDecision",
    "CostEstimator",
    "CostEstimate",
    "ServerMetrics",
    "LatencyHistogram",
    "ReadWriteLock",
    "run_serve_bench",
    "OverloadConfig",
    "BoundedQueryQueue",
    "RetryPolicy",
    "CircuitBreaker",
    "DegradationLadder",
    "run_replay",
    "replay_trace",
]
