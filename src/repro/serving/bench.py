"""Seeded multi-client serving benchmark (``repro serve-bench``).

Replays a deterministic concurrent workload against a
:class:`~repro.serving.server.SkylineServer`: ``clients`` threads each
submit ``queries_per_client`` requests (algorithm chosen per-request by
a seeded RNG) and block on their handles, exactly like independent
callers of a query service.  The report covers client-observed
end-to-end latency (throughput, p50/p90/p99 overall and per algorithm,
computed from the exact latency samples, not histogram buckets) plus the
server's own metrics snapshot, and is optionally written as a JSON
artifact for CI trend tracking.
"""

from __future__ import annotations

import random
import threading
import time

from repro.bench.artifacts import write_artifact
from repro.serving.server import QueryRequest, SkylineServer

__all__ = ["run_serve_bench", "DEFAULT_ALGORITHMS"]

DEFAULT_ALGORITHMS = ("bnl", "bnl+", "sfs", "bbs+", "sdc", "sdc+", "nn+", "dnc")


def _percentile(samples: list[float], q: float) -> float:
    """Exact linear-interpolation percentile of a sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _latency_summary(samples: list[float]) -> dict:
    return {
        "count": len(samples),
        "mean_seconds": round(sum(samples) / len(samples), 6) if samples else 0.0,
        "p50_seconds": round(_percentile(samples, 0.50), 6),
        "p90_seconds": round(_percentile(samples, 0.90), 6),
        "p99_seconds": round(_percentile(samples, 0.99), 6),
        "max_seconds": round(max(samples), 6) if samples else 0.0,
    }


def run_serve_bench(
    size: int = 400,
    clients: int = 8,
    queries_per_client: int = 4,
    workers: int = 4,
    algorithms: tuple[str, ...] | None = None,
    kernel: str = "python",
    seed: int = 7,
    output: str | None = None,
    repeat_fraction: float = 0.0,
    cache: bool = False,
) -> dict:
    """Run the concurrent serving benchmark; returns the report dict.

    The workload (dataset *and* per-client query sequence) is fully
    determined by ``seed``, so two runs submit identical request streams
    -- only the interleaving and the latencies vary.  ``output`` writes
    the report as JSON (parent directories created).

    ``repeat_fraction`` makes each client re-submit a fixed *hot*
    request (the full-space skyline via ``sdc+``) with that probability
    instead of drawing a fresh algorithm -- the repeated-query pattern
    production services see.  ``cache`` turns the server's views layer
    on so the report measures cache-aware throughput; repeated shapes
    then serve from the materialized view instead of recomputing.
    """
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError(
            f"repeat_fraction must be in [0, 1], got {repeat_fraction!r}"
        )
    from repro.workloads.config import WorkloadConfig
    from repro.workloads.generator import generate_workload

    algorithms = tuple(algorithms) if algorithms else DEFAULT_ALGORITHMS
    config = WorkloadConfig.default(data_size=size, seed=seed)
    workload = generate_workload(config)
    from repro.transform.dataset import TransformedDataset

    dataset = TransformedDataset(workload.schema, workload.records, kernel=kernel)

    samples: list[tuple[str, float, str]] = []  # (algorithm, seconds, outcome)
    samples_lock = threading.Lock()
    errors: list[str] = []

    server = SkylineServer(dataset, workers=workers, warm=True, cache=cache)

    def client(client_id: int) -> None:
        rng = random.Random(seed * 100_003 + client_id)
        for _ in range(queries_per_client):
            if repeat_fraction and rng.random() < repeat_fraction:
                algorithm = "sdc+"  # the hot request every client repeats
            else:
                algorithm = rng.choice(algorithms)
            begin = time.perf_counter()
            try:
                handle = server.submit(QueryRequest(algorithm=algorithm))
                result = handle.result()
                seconds = time.perf_counter() - begin
                outcome = "complete" if result.complete else "partial"
                with samples_lock:
                    samples.append((algorithm, seconds, outcome))
            except Exception as err:  # rejected / failed: record, keep going
                with samples_lock:
                    errors.append(f"{algorithm}: {type(err).__name__}: {err}")

    threads = [
        threading.Thread(target=client, args=(i,), name=f"client-{i}")
        for i in range(clients)
    ]
    bench_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - bench_start
    server.close(wait=True)

    latencies = [seconds for _, seconds, _ in samples]
    by_algorithm = {
        name: [s for a, s, _ in samples if a == name]
        for name in algorithms
        if any(a == name for a, _, _ in samples)
    }
    report = {
        "workload": {
            "records": len(workload.records),
            "kernel": kernel,
            "seed": seed,
            "clients": clients,
            "queries_per_client": queries_per_client,
            "workers": workers,
            "algorithms": list(algorithms),
            "repeat_fraction": repeat_fraction,
            "cache": bool(cache),
        },
        "wall_seconds": round(wall, 6),
        "queries": len(samples),
        "errors": errors,
        "throughput_qps": round(len(samples) / wall, 3) if wall > 0 else 0.0,
        "latency": _latency_summary(latencies),
        "latency_by_algorithm": {
            name: _latency_summary(values)
            for name, values in sorted(by_algorithm.items())
        },
        "server": server.metrics.snapshot(),
    }
    if output:
        write_artifact(output, report)
    return report
