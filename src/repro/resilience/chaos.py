"""Deterministic fault injection for the chaos test suite.

Every injector is seeded, so a failing chaos run reproduces exactly.
Four failure families are covered, matching the ways a production
skyline service actually breaks:

* **kernel exceptions** -- :class:`FaultInjector` wraps a dataset's
  dominance kernel (and the vectorized buffers it hands out) in
  :class:`ChaoticKernel` / :class:`ChaoticBuffer` proxies that raise a
  typed :class:`~repro.exceptions.KernelError` on a chosen call;
* **R-tree node corruption** -- :func:`corrupt_rtree` flips one node's
  MBR or category bits in place, which
  :meth:`~repro.rtree.rstar.RStarTree.validate` must detect as a typed
  :class:`~repro.exceptions.RTreeError`;
* **malformed records** -- :func:`malform_records` produces records with
  wrong arity or out-of-domain poset values (typed
  :class:`~repro.exceptions.SchemaError` at transform time);
* **NaN / infinity numerics** -- :func:`malform_records` also emits
  non-finite totals, rejected by input hardening in the schema and
  :mod:`repro.io` layers;
* **serving-infrastructure failures** -- :class:`StallInjector` plus the
  ``inject_worker_*`` / :func:`inject_lock_delays` /
  :func:`inject_pool_crashes` helpers arm the
  :class:`~repro.serving.server.SkylineServer`'s chaos fault points:
  worker threads that die or wedge mid-query, updates that stall while
  holding the writer lock, and parallel worker processes that hard-exit
  mid-shard.  The overload layer (``docs/overload.md``) must turn each
  into a typed error, a watchdog respawn or a breaker-guarded
  degradation -- never a hung ``QueryHandle``.

None of the proxies ever *falsifies* a verdict: a fault is always an
exception, never a wrong answer, so everything an algorithm emitted
before the fault is still correct -- which is what lets the resilient
executor keep the emitted prefix when it falls back to the python
kernel.
"""

from __future__ import annotations

import math
import random
import threading
from typing import TYPE_CHECKING, Iterator

from repro.core.record import Record
from repro.exceptions import KernelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtree.rstar import RStarTree
    from repro.transform.dataset import TransformedDataset

__all__ = [
    "FaultInjector",
    "StallInjector",
    "CrashInjector",
    "KILL_POINTS",
    "ChaoticKernel",
    "ChaoticBuffer",
    "inject_kernel_faults",
    "inject_update_faults",
    "inject_worker_faults",
    "inject_worker_stalls",
    "inject_lock_delays",
    "inject_pool_crashes",
    "corrupt_rtree",
    "malform_records",
]

#: Named process kill-points honoured by the durability subsystem
#: (:mod:`repro.durability`): mid-WAL-append leaves a torn record on
#: disk, post-append-pre-fsync leaves a complete but unacknowledged
#: record, mid-snapshot-rename leaves a temp file next to the previous
#: checkpoint, and mid-replay dies while a *recovery* is replaying the
#: log.  ``repro crash-replay`` sweeps all four (docs/durability.md).
KILL_POINTS = (
    "wal.append.mid-write",
    "wal.append.pre-fsync",
    "snapshot.mid-rename",
    "recovery.mid-replay",
)


class FaultInjector:
    """Seeded fault source shared by one query's chaos proxies.

    Parameters
    ----------
    seed:
        Seeds the injector's private RNG (used by ``rate`` mode).
    fail_after:
        Deterministic mode: fail exactly on the N-th intercepted call.
    rate:
        Probabilistic mode: each intercepted call fails with this
        probability (still deterministic for a fixed seed).
    max_faults:
        Stop injecting after this many faults (default one, so a
        recovered query cannot be re-broken by the same injector).
    fault_type:
        Exception class to raise; defaults to
        :class:`~repro.exceptions.KernelError`.
    """

    __slots__ = ("rng", "fail_after", "rate", "max_faults", "fault_type",
                 "calls", "fired", "sites", "_lock")

    def __init__(
        self,
        seed: int = 0,
        fail_after: int | None = None,
        rate: float = 0.0,
        max_faults: int = 1,
        fault_type: type = KernelError,
    ) -> None:
        self.rng = random.Random(seed)
        self.fail_after = fail_after
        self.rate = rate
        self.max_faults = max_faults
        self.fault_type = fault_type
        self.calls = 0
        self.fired = 0
        self.sites: list[str] = []
        # One injector may be shared by many concurrent per-query view
        # kernels (the server's chaos tests); the lock keeps the call
        # counting and the max_faults cap exact under that sharing.
        self._lock = threading.Lock()

    def maybe_fail(self, site: str) -> None:
        """Count one intercepted call; raise when this one should fail."""
        with self._lock:
            self.calls += 1
            if self.fired >= self.max_faults:
                return
            trip = False
            if self.fail_after is not None:
                trip = self.calls >= self.fail_after
            elif self.rate > 0.0:
                trip = self.rng.random() < self.rate
            if not trip:
                return
            self.fired += 1
            self.sites.append(site)
            calls = self.calls
        raise self.fault_type(f"injected fault at {site} (call #{calls})")


class StallInjector:
    """Seeded stall source: a fault that *wedges* instead of raising.

    Same triggering contract as :class:`FaultInjector` (``fail_after``
    exact-call mode, ``rate`` probabilistic mode, ``max_faults`` cap,
    thread-safe under concurrent sharing) but a tripped call sleeps for
    ``stall_seconds`` instead of raising -- modelling a wedged worker
    thread or an update stuck while holding the writer lock.  The sleep
    honours an optional ``release`` event so tests can un-wedge a stall
    early instead of waiting it out.
    """

    __slots__ = ("rng", "fail_after", "rate", "max_faults", "stall_seconds",
                 "calls", "fired", "sites", "release", "_lock")

    def __init__(
        self,
        seed: int = 0,
        fail_after: int | None = None,
        rate: float = 0.0,
        max_faults: int = 1,
        stall_seconds: float = 0.5,
    ) -> None:
        self.rng = random.Random(seed)
        self.fail_after = fail_after
        self.rate = rate
        self.max_faults = max_faults
        self.stall_seconds = stall_seconds
        self.calls = 0
        self.fired = 0
        self.sites: list[str] = []
        self.release = threading.Event()
        self._lock = threading.Lock()

    def maybe_stall(self, site: str) -> bool:
        """Count one intercepted call; sleep when this one should wedge.

        Returns ``True`` when a stall happened (after it ends).
        """
        with self._lock:
            self.calls += 1
            if self.fired >= self.max_faults:
                return False
            trip = False
            if self.fail_after is not None:
                trip = self.calls >= self.fail_after
            elif self.rate > 0.0:
                trip = self.rng.random() < self.rate
            if not trip:
                return False
            self.fired += 1
            self.sites.append(site)
        self.release.wait(self.stall_seconds)
        return True


class CrashInjector:
    """Seeded process kill: ``os._exit`` at a named durability site.

    Unlike :class:`FaultInjector` (raises) and :class:`StallInjector`
    (sleeps), a tripped call *terminates the process immediately* --
    no ``finally`` blocks, no atexit handlers, no flushing -- which is
    exactly what a power cut or ``kill -9`` looks like to the
    write-ahead log.  The durability code threads one injector through
    its crash sites (:data:`KILL_POINTS`); ``maybe_crash`` fires on the
    ``fail_after``-th call at the armed ``site`` and ignores every other
    site, so one injector models one precisely-placed crash.

    ``before_exit`` (passed by the call site, not the constructor) runs
    just before the exit to materialize the torn on-disk state the
    crash should leave behind -- e.g. half of a WAL record flushed to
    the OS.  Exit code :attr:`exit_code` (default 17) lets the
    crash-replay harness distinguish an injected crash from a real bug.
    """

    __slots__ = ("site", "fail_after", "exit_code", "calls", "armed")

    def __init__(self, site: str, fail_after: int = 1, exit_code: int = 17) -> None:
        if site not in KILL_POINTS:
            raise KernelError(f"unknown kill-point {site!r}")
        self.site = site
        self.fail_after = fail_after
        self.exit_code = exit_code
        self.calls = 0
        self.armed = True

    def maybe_crash(self, site: str, before_exit=None) -> None:
        """Count one pass through ``site``; kill the process on the match."""
        if not self.armed or site != self.site:
            return
        self.calls += 1
        if self.calls < self.fail_after:
            return
        import os

        if before_exit is not None:
            before_exit()
        os._exit(self.exit_code)


class ChaoticBuffer:
    """Fault-injecting proxy over a vectorized skyline buffer."""

    __slots__ = ("_buffer", "_injector")

    def __init__(self, buffer, injector: FaultInjector) -> None:
        self._buffer = buffer
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._buffer, name)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator:
        return iter(self._buffer)

    def prunes_point(self, point):
        """Proxy of the buffer's ``prunes_point`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.prunes_point")
        return self._buffer.prunes_point(point)

    def prunes_mins(self, mins, bound):
        """Proxy of the buffer's ``prunes_mins`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.prunes_mins")
        return self._buffer.prunes_mins(mins, bound)

    def filters(self, point):
        """Proxy of the buffer's ``filters`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.filters")
        return self._buffer.filters(point)

    def update_native(self, point, count_calls: bool = False):
        """Proxy of the buffer's ``update_native`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.update_native")
        return self._buffer.update_native(point, count_calls)

    def update_compare(self, point):
        """Proxy of the buffer's ``update_compare`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.update_compare")
        return self._buffer.update_compare(point)

    def scan_compare(self, point):
        """Proxy of the buffer's ``scan_compare`` (may inject a fault)."""
        self._injector.maybe_fail("buffer.scan_compare")
        return self._buffer.scan_compare(point)

    def absorb(self, other) -> None:
        """Proxy of the buffer's ``absorb``; unwraps a proxied ``other``."""
        self._injector.maybe_fail("buffer.absorb")
        if isinstance(other, ChaoticBuffer):
            other = other._buffer
        self._buffer.absorb(other)


class ChaoticKernel:
    """Fault-injecting proxy over a dominance kernel.

    Wraps the scalar comparison methods and, for batch kernels, the
    buffers handed out by ``new_buffer`` -- so faults hit both the
    python-style scalar paths and the vectorized batch paths.  All
    other attributes pass through to the wrapped kernel.
    """

    __slots__ = ("_kernel", "_injector")

    def __init__(self, kernel, injector: FaultInjector) -> None:
        self._kernel = kernel
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._kernel, name)

    @property
    def wrapped(self):
        """The kernel behind the proxy."""
        return self._kernel

    def m_dominates(self, p, q):
        """Proxy of the kernel's ``m_dominates`` (may inject a fault)."""
        self._injector.maybe_fail("kernel.m_dominates")
        return self._kernel.m_dominates(p, q)

    def m_dominates_mins(self, p, mins):
        """Proxy of the kernel's ``m_dominates_mins`` (may inject a fault)."""
        self._injector.maybe_fail("kernel.m_dominates_mins")
        return self._kernel.m_dominates_mins(p, mins)

    def native_dominates(self, p, q):
        """Proxy of the kernel's ``native_dominates`` (may inject a fault)."""
        self._injector.maybe_fail("kernel.native_dominates")
        return self._kernel.native_dominates(p, q)

    def compare_dominance(self, x, y):
        """Proxy of the kernel's ``compare_dominance`` (may inject a fault)."""
        self._injector.maybe_fail("kernel.compare_dominance")
        return self._kernel.compare_dominance(x, y)

    def full_dominates(self, p, q):
        """Proxy of the kernel's ``full_dominates`` (may inject a fault)."""
        self._injector.maybe_fail("kernel.full_dominates")
        return self._kernel.full_dominates(p, q)

    def new_buffer(self):
        """New buffer, wrapped in a :class:`ChaoticBuffer` proxy."""
        self._injector.maybe_fail("kernel.new_buffer")
        return ChaoticBuffer(self._kernel.new_buffer(), self._injector)


def inject_kernel_faults(
    dataset: "TransformedDataset", injector: FaultInjector
) -> FaultInjector:
    """Swap the dataset's kernel for a fault-injecting proxy.

    Returns the injector (for inspecting ``calls`` / ``fired`` after the
    run).  The resilient executor's fallback path builds a *fresh*
    python kernel, so a recovered query bypasses the proxy entirely.

    The injector is also recorded on the dataset so per-query views
    (:meth:`~repro.transform.dataset.TransformedDataset.query_view`)
    re-wrap their own kernels with the same injector -- this is how the
    serving chaos tests break exactly one of N concurrent queries.
    """
    dataset.kernel = ChaoticKernel(dataset.kernel, injector)
    dataset._kernel_injector = injector
    return injector


def inject_update_faults(
    dataset: "TransformedDataset", injector: FaultInjector
) -> FaultInjector:
    """Arm the dataset's update fault points with ``injector``.

    ``insert_record`` / ``delete_record`` call the injector at two
    mid-update sites each (after the point/record lists changed but
    before the index insert/delete, and between the index and the
    stratification maintenance), so a fired fault lands the dataset in
    the worst spot -- and the update code must restore the exact
    pre-update state before re-raising (asserted by the update-chaos
    suite).  Pass ``injector=None``-like behaviour by simply never
    arming; a dataset starts with no update injector.
    """
    dataset._update_injector = injector
    return injector


# ---------------------------------------------------------------------------
# Serving-infrastructure fault points
# ---------------------------------------------------------------------------
def inject_worker_faults(server, injector: FaultInjector) -> FaultInjector:
    """Arm the server's worker fault point with ``injector``.

    The injector fires at the ``server.worker`` site, at the top of a
    worker thread's query execution (before the query is marked
    started).  With ``fault_type=SystemExit`` the fired call kills the
    worker thread outright -- the regression scenario for satellite
    hang-proofing: the orphaned query's handle must still resolve (a
    typed :class:`~repro.exceptions.ServingError`) and the watchdog
    must respawn the thread.  With an ``Exception`` fault type the
    query fails but the worker survives.
    """
    server._worker_injector = injector
    return injector


def inject_worker_stalls(server, injector: StallInjector) -> StallInjector:
    """Arm the server's worker stall point with ``injector``.

    A tripped call wedges the worker thread at the ``server.worker``
    site for ``stall_seconds`` -- long enough for the watchdog's
    ``stuck_after`` detection to flag the query and degrade the server.
    """
    server._stall_injector = injector
    return injector


def inject_lock_delays(server, injector: StallInjector) -> StallInjector:
    """Arm the server's writer-lock-hold stall point with ``injector``.

    A tripped update stalls at ``server.update.lock_hold`` *while
    holding the writer lock*, starving every queued reader -- the
    scenario :meth:`~repro.serving.rwlock.ReadWriteLock.acquire_write`
    timeouts and queue shedding are built for.
    """
    server._lock_injector = injector
    return injector


def inject_pool_crashes(target, injector: FaultInjector) -> FaultInjector:
    """Arm the parallel executor's pool-crash fault points.

    ``target`` is a :class:`~repro.serving.server.SkylineServer` (its
    shared executor is armed) or a
    :class:`~repro.parallel.ParallelSkylineExecutor`.  A fired fault
    hard-exits a worker *process* mid-shard (``parallel.dispatch.*``
    sites), breaking the pool; the executor's serial fallback and the
    server's parallel circuit breaker must absorb it.
    ``ParallelConfig`` is frozen, so the config is swapped for a copy
    carrying the injector.
    """
    import dataclasses

    executor = getattr(target, "_parallel", target)
    if executor is None:
        raise KernelError("target has no parallel executor to arm")
    executor.config = dataclasses.replace(executor.config, chaos=injector)
    return injector


# ---------------------------------------------------------------------------
# Structure / data corruption
# ---------------------------------------------------------------------------
def _all_nodes(node) -> list:
    nodes = [node]
    if not node.leaf:
        for child in node.entries:
            nodes.extend(_all_nodes(child))
    return nodes


def corrupt_rtree(tree: "RStarTree", seed: int = 0) -> str:
    """Deterministically corrupt one R-tree node in place.

    Picks a node by seed and either shifts its MBR (so it no longer
    contains its entries) or flips its aggregated category bits.
    Returns a description of what was broken;
    :meth:`~repro.rtree.rstar.RStarTree.validate` must subsequently
    raise :class:`~repro.exceptions.RTreeError`.
    """
    rng = random.Random(seed)
    if tree.size == 0:
        raise KernelError("cannot corrupt an empty tree")
    nodes = _all_nodes(tree.root)
    node = rng.choice(nodes)
    if rng.random() < 0.5 and node.mins:
        node.mins = tuple(m + 1.0 for m in node.mins)
        return f"shifted MBR mins of {'leaf' if node.leaf else 'internal'} node"
    node.covered_all = not node.covered_all
    return f"flipped covered_all of {'leaf' if node.leaf else 'internal'} node"


def malform_records(
    seed: int = 0,
    kinds: tuple[str, ...] = ("nan", "inf", "arity", "unknown"),
) -> list[Record]:
    """Deterministic malformed records, one per requested kind.

    ``nan`` / ``inf`` carry non-finite totals, ``arity`` has the wrong
    number of poset values, ``unknown`` uses a value outside any poset
    domain.  Feeding any of them to a transform must raise a typed
    :class:`~repro.exceptions.SchemaError` (never a raw traceback or --
    worse -- a silently poisoned comparison).
    """
    rng = random.Random(seed)
    records = []
    for kind in kinds:
        rid = f"chaos-{kind}-{rng.randrange(1 << 16)}"
        if kind == "nan":
            records.append(Record(rid, (math.nan,), ("a",)))
        elif kind == "inf":
            records.append(Record(rid, (math.inf,), ("a",)))
        elif kind == "arity":
            records.append(Record(rid, (1.0,), ("a", "b", "c")))
        elif kind == "unknown":
            records.append(Record(rid, (1.0,), ("no-such-value",)))
        else:
            raise KernelError(f"unknown malformation kind {kind!r}")
    return records
