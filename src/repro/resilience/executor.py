"""Resilient query execution: partial results and kernel fallback.

:func:`execute` runs one skyline algorithm under a
:class:`~repro.resilience.context.QueryContext` and guarantees a usable
outcome in every case:

* **completion** -- a :class:`PartialResult` with ``complete=True``;
* **budget exhaustion** -- a :class:`PartialResult` carrying the answers
  emitted so far (always a prefix of the algorithm's deterministic
  emission order), the ``exhausted_reason`` and the counter deltas;
* **deadline / cancellation** -- the typed
  :class:`~repro.exceptions.QueryTimeoutError` /
  :class:`~repro.exceptions.QueryCancelledError` is re-raised with the
  partial result attached to its ``partial`` attribute;
* **batch-kernel failure** -- a
  :class:`~repro.exceptions.KernelFallbackWarning` is logged + warned,
  :attr:`~repro.core.stats.ComparisonStats.kernel_fallbacks` is bumped,
  and the remaining work is retried on the reference python kernel (the
  already-emitted prefix is kept; re-emissions are deduplicated), still
  under the same deadline and budgets.

Algorithms raise the control errors themselves (at the checkpoints the
context plants in their loops); this module only catches, packages and
-- for kernel faults -- recovers.
"""

from __future__ import annotations

import logging
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import (
    BudgetExhaustedError,
    KernelError,
    KernelFallbackWarning,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.resilience.context import QueryContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import SkylineAlgorithm
    from repro.core.record import Record
    from repro.transform.dataset import TransformedDataset
    from repro.transform.point import Point

__all__ = ["PartialResult", "execute", "KERNEL_FAULTS"]

logger = logging.getLogger("repro.resilience")

#: Exception types the executor treats as recoverable kernel failures.
#: ``FloatingPointError`` is what numpy raises under ``np.errstate`` when
#: a vectorized reduction hits an invalid value.
KERNEL_FAULTS = (KernelError, FloatingPointError)


@dataclass
class PartialResult:
    """The outcome of one resilient query -- possibly truncated, never silent.

    Attributes
    ----------
    points:
        The emitted skyline points, in the algorithm's emission order.
        When the query was stopped early this is a prefix of the full
        emission order (algorithms are deterministic).
    complete:
        ``True`` when the algorithm ran to completion.
    exhausted_reason:
        ``None`` on completion; otherwise the budget that stopped the
        query (``"comparisons"``, ``"heap_entries"``,
        ``"window_entries"``, ``"answers"``) or the stop kind
        (``"deadline"``, ``"cancelled"``) when attached to a raised
        control error.
    algorithm / elapsed / counters / checkpoints:
        What ran, how long it took, the counter deltas it charged and
        how many cooperative checkpoints it passed.
    fallback:
        ``True`` when a batch-kernel failure was recovered by re-running
        the remaining work on the reference python kernel.
    cached:
        ``True`` when the answer was served from a materialized view or
        result-cache hit (:mod:`repro.views`) -- zero dominance
        comparisons were executed and ``points`` is in canonical
        (record-id) order rather than an algorithm's emission order.
    """

    points: list["Point"] = field(default_factory=list)
    complete: bool = False
    exhausted_reason: str | None = None
    algorithm: str = ""
    elapsed: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    checkpoints: int = 0
    fallback: bool = False
    cached: bool = False

    @property
    def records(self) -> list["Record"]:
        """The emitted answers as :class:`~repro.core.record.Record` objects."""
        return [p.record for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator["Point"]:
        return iter(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "complete" if self.complete else f"partial:{self.exhausted_reason}"
        return (
            f"PartialResult({self.algorithm}, {len(self.points)} answers, "
            f"{status}{', fallback' if self.fallback else ''})"
        )


def _drain(
    gen: Iterator["Point"],
    into: list["Point"],
    seen: set[int],
    max_answers: int | None,
) -> str | None:
    """Consume a run generator into ``into``; returns an exhausted reason.

    ``seen`` deduplicates by point identity so a fallback re-run can
    append only the answers the failed run had not emitted yet (datasets
    share their :class:`Point` objects across kernels).
    """
    for point in gen:
        if id(point) in seen:
            continue
        seen.add(id(point))
        into.append(point)
        if max_answers is not None and len(into) >= max_answers:
            gen.close()
            return "answers"
    return None


def execute(
    dataset: "TransformedDataset",
    algorithm: "str | SkylineAlgorithm" = "sdc+",
    context: QueryContext | None = None,
    *,
    fallback: bool = True,
    sink: "list[Point] | None" = None,
    **options,
) -> PartialResult:
    """Run ``algorithm`` over ``dataset`` under ``context``.

    Returns a :class:`PartialResult`; raises
    :class:`~repro.exceptions.QueryTimeoutError` /
    :class:`~repro.exceptions.QueryCancelledError` (with ``partial``
    attached) when the deadline or cancellation token fires, and
    re-raises unrecoverable kernel faults (with ``partial`` attached
    when they are :class:`~repro.exceptions.ReproError` subclasses).

    ``fallback`` controls the batch-kernel recovery path; it only
    applies when the dataset's kernel is the vectorized backend.

    ``sink``, when given, is an (empty) list the executor appends every
    emitted point to *as it is emitted* -- the serving layer hands it to
    a :class:`~repro.serving.server.QueryHandle` so callers can observe
    a running query's partial answers without waiting for it to finish
    (list appends are atomic under the GIL, so a concurrent snapshot is
    always a valid emission prefix).  The returned
    :class:`PartialResult` uses the same list as its ``points``.
    """
    # Imported lazily: repro.algorithms pulls in the transform layer,
    # which itself imports the (lighter) resilience context module.
    from repro.algorithms.base import SkylineAlgorithm, get_algorithm

    if isinstance(algorithm, SkylineAlgorithm):
        algo = algorithm
    else:
        algo = get_algorithm(algorithm, **options)
    ctx = context if context is not None else QueryContext()
    ctx.start(dataset.stats)
    before = dataset.stats.snapshot()
    started = time.perf_counter()
    points: list["Point"] = sink if sink is not None else []
    seen: set[int] = set()
    max_answers = ctx.budget.max_answers if ctx.budget is not None else None
    used_fallback = False

    def result(complete: bool, reason: str | None) -> PartialResult:
        return PartialResult(
            points=points,
            complete=complete,
            exhausted_reason=reason,
            algorithm=algo.name,
            elapsed=time.perf_counter() - started,
            counters=dataset.stats.diff(before),
            checkpoints=ctx.checkpoints,
            fallback=used_fallback,
        )

    previous = dataset.context
    dataset.context = ctx
    try:
        reason = None
        try:
            reason = _drain(algo.run(dataset), points, seen, max_answers)
        except BudgetExhaustedError as err:
            reason = err.reason
        except QueryTimeoutError as err:
            err.partial = result(False, "deadline")
            raise
        except QueryCancelledError as err:
            err.partial = result(False, "cancelled")
            raise
        except KERNEL_FAULTS as err:
            if not fallback or not getattr(dataset.kernel, "is_batch", False):
                if isinstance(err, KernelError):
                    err.partial = result(False, "kernel")
                raise
            used_fallback = True
            dataset.stats.kernel_fallbacks += 1
            message = (
                f"batch kernel failed mid-query "
                f"({type(err).__name__}: {err}); retrying remaining work "
                f"on the python reference kernel "
                f"(algorithm={algo.name}, emitted={len(points)})"
            )
            logger.warning(message)
            warnings.warn(message, KernelFallbackWarning, stacklevel=2)
            fb_view = dataset.fallback_view()
            fb_view.context = ctx  # same deadline/budgets still apply
            try:
                reason = _drain(algo.run(fb_view), points, seen, max_answers)
            except BudgetExhaustedError as fb_err:
                reason = fb_err.reason
            except QueryTimeoutError as fb_err:
                fb_err.partial = result(False, "deadline")
                raise
            except QueryCancelledError as fb_err:
                fb_err.partial = result(False, "cancelled")
                raise
        return result(reason is None, reason)
    finally:
        dataset.context = previous
