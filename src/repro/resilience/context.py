"""Query-execution control: deadlines, cancellation, resource budgets.

Every algorithm loop in the library calls
:meth:`QueryContext.checkpoint` once per unit of work (one heap pop of
the R-tree traversal, one scanned record of a block-nested-loops pass,
one NN region, one D&C partition).  A checkpoint is a few attribute
reads on an unarmed context -- the default :data:`NULL_CONTEXT` that
every :class:`~repro.transform.dataset.TransformedDataset` starts with
-- so unlimited queries pay almost nothing.  An armed context raises a
typed :class:`~repro.exceptions.ResilienceError` subclass the moment a
limit trips, which the resilient executor
(:mod:`repro.resilience.executor`) converts into a
:class:`~repro.resilience.executor.PartialResult` carrying everything
emitted so far.

Limits come in three kinds:

* a wall-clock **deadline** (seconds from :meth:`QueryContext.start`),
* a cooperative **cancellation token** another thread (or callback) can
  fire, and
* **resource budgets** -- dominance comparisons, live heap entries,
  live window entries, emitted answers (:class:`ResourceBudget`).
"""

from __future__ import annotations

import time

from repro.core.stats import ComparisonStats
from repro.exceptions import (
    BudgetExhaustedError,
    QueryCancelledError,
    QueryTimeoutError,
    WorkloadError,
)

__all__ = [
    "CancellationToken",
    "ResourceBudget",
    "QueryContext",
    "NULL_CONTEXT",
]


class CancellationToken:
    """A latch a caller flips to stop a running query cooperatively."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation; the query stops at its next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CancellationToken(cancelled={self._cancelled})"


class ResourceBudget:
    """Hard caps on the resources one query may consume.

    Parameters
    ----------
    max_comparisons:
        Cap on point-level dominance work
        (:attr:`~repro.core.stats.ComparisonStats.total_dominance_checks`
        delta since the query started).
    max_heap_entries:
        Cap on the live size of a BBS-style traversal heap.
    max_window_entries:
        Cap on the live window size of a block-nested-loops pass.
    max_answers:
        Cap on emitted answers (enforced by the executor, which stops
        consuming the algorithm's generator -- the cheapest stop of all).
    """

    __slots__ = (
        "max_comparisons",
        "max_heap_entries",
        "max_window_entries",
        "max_answers",
    )

    def __init__(
        self,
        max_comparisons: int | None = None,
        max_heap_entries: int | None = None,
        max_window_entries: int | None = None,
        max_answers: int | None = None,
    ) -> None:
        for name in self.__slots__:
            value = locals()[name]
            if value is not None and value < 1:
                raise WorkloadError(f"{name} must be positive, got {value!r}")
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{name}={getattr(self, name)}"
            for name in self.__slots__
            if getattr(self, name) is not None
        ]
        return f"ResourceBudget({', '.join(parts)})"


class QueryContext:
    """Deadline + cancellation + budgets threaded through one query.

    A context is *unarmed* until :meth:`start` is called (the resilient
    executor does this), at which point the deadline clock starts and
    the comparison budget is baselined against the dataset's shared
    counter bundle.  Contexts are single-use per query but cheap to
    build; :meth:`start` may be called again to reuse one.
    """

    __slots__ = (
        "deadline",
        "budget",
        "cancel",
        "checkpoints",
        "_armed",
        "_expires_at",
        "_stats",
        "_base_checks",
        "_max_comparisons",
        "_max_heap",
        "_max_window",
    )

    def __init__(
        self,
        deadline: float | None = None,
        budget: ResourceBudget | None = None,
        cancel: CancellationToken | None = None,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise WorkloadError(f"deadline must be >= 0, got {deadline!r}")
        self.deadline = deadline
        self.budget = budget
        self.cancel = cancel
        self.checkpoints = 0
        self._armed = False
        self._expires_at: float | None = None
        self._stats: ComparisonStats | None = None
        self._base_checks = 0
        self._max_comparisons = budget.max_comparisons if budget else None
        self._max_heap = budget.max_heap_entries if budget else None
        self._max_window = budget.max_window_entries if budget else None

    # ------------------------------------------------------------------
    def start(self, stats: ComparisonStats) -> "QueryContext":
        """Arm the context: start the clock, baseline the counters."""
        self._stats = stats
        self._base_checks = stats.total_dominance_checks
        self.checkpoints = 0
        if self.deadline is not None:
            self._expires_at = time.monotonic() + self.deadline
        self._armed = (
            self.deadline is not None
            or self.cancel is not None
            or self._max_comparisons is not None
        )
        return self

    @property
    def armed(self) -> bool:
        """Whether checkpoints currently enforce any limit."""
        return self._armed

    def comparisons_used(self) -> int:
        """Dominance checks charged since :meth:`start`."""
        if self._stats is None:
            return 0
        return self._stats.total_dominance_checks - self._base_checks

    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Cooperative stop point; raises a typed error when a limit trips.

        Called once per unit of algorithm work.  Raises
        :class:`QueryCancelledError`, :class:`QueryTimeoutError` or
        :class:`BudgetExhaustedError` (reason ``"comparisons"``).
        """
        if not self._armed:
            return
        self.checkpoints += 1
        cancel = self.cancel
        if cancel is not None and cancel._cancelled:
            raise QueryCancelledError()
        expires = self._expires_at
        if expires is not None:
            now = time.monotonic()
            if now >= expires:
                raise QueryTimeoutError(
                    self.deadline, now - (expires - self.deadline)
                )
        limit = self._max_comparisons
        if limit is not None:
            used = self._stats.total_dominance_checks - self._base_checks
            if used >= limit:
                raise BudgetExhaustedError("comparisons", limit, used)

    def guard_heap(self, size: int) -> None:
        """Budget check on a traversal heap's live entry count."""
        limit = self._max_heap
        if limit is not None and size > limit:
            raise BudgetExhaustedError("heap_entries", limit, size)

    def guard_window(self, size: int) -> None:
        """Budget check on a BNL window's live entry count."""
        limit = self._max_window
        if limit is not None and size > limit:
            raise BudgetExhaustedError("window_entries", limit, size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryContext(deadline={self.deadline}, budget={self.budget!r}, "
            f"armed={self._armed})"
        )


#: The shared unarmed context every dataset starts with.  Its
#: :meth:`~QueryContext.checkpoint` is a single attribute test, so
#: algorithms can call it unconditionally in their hot loops.
NULL_CONTEXT = QueryContext()
