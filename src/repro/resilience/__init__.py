"""Resilient query execution for the skyline engine.

Deadlines, cooperative cancellation and resource budgets
(:mod:`repro.resilience.context`), a resilient executor with partial
results and automatic batch-kernel fallback
(:mod:`repro.resilience.executor`), and a deterministic fault-injection
harness for the chaos test suite (:mod:`repro.resilience.chaos`).

See ``docs/robustness.md`` for a guided tour.
"""

from repro.resilience.context import (
    NULL_CONTEXT,
    CancellationToken,
    QueryContext,
    ResourceBudget,
)
from repro.resilience.executor import PartialResult, execute

__all__ = [
    "CancellationToken",
    "QueryContext",
    "ResourceBudget",
    "NULL_CONTEXT",
    "PartialResult",
    "execute",
]
