"""High-level public API.

:func:`skyline` answers a one-shot query; :class:`SkylineEngine` keeps the
transformed dataset (domain mappings, R-tree indexes, strata) around so
several algorithms or repeated queries can share the build work -- the
paper's setting, where the index is constructed once offline.

Example
-------
>>> from repro import NumericAttribute, PosetAttribute, Record, Schema, skyline
>>> from repro.posets import diamond
>>> schema = Schema([NumericAttribute("price", "min"),
...                  PosetAttribute.set_valued("tier", diamond())])
>>> records = [Record(0, (100,), ("a",)), Record(1, (100,), ("d",))]
>>> [r.rid for r in skyline(records, schema)]
[0]
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.algorithms.base import SkylineAlgorithm, get_algorithm
from repro.core.record import Record
from repro.core.schema import Schema
from repro.core.stats import ComparisonStats
from repro.posets.optimize import SpanningTreeStrategy
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import ParallelConfig, ParallelSkylineExecutor
    from repro.resilience.context import CancellationToken, QueryContext
    from repro.serving.server import SkylineServer

__all__ = ["SkylineEngine", "skyline"]


class SkylineEngine:
    """Reusable query engine over one dataset.

    Parameters
    ----------
    schema, records:
        The relation to query.
    strategy:
        Spanning-tree strategy (``default``, ``random``, ``minpc``,
        ``maxpc``) applied to every poset attribute.
    stats:
        Optional shared counter bundle.
    kernel:
        Dominance backend, ``"python"`` or ``"numpy"`` (vectorized; see
        ``docs/performance.md``).  Answers, emission order and counters
        are identical.
    max_entries, bulk_load, faithful_gate, rng:
        Forwarded to :class:`~repro.transform.dataset.TransformedDataset`.
    """

    def __init__(
        self,
        schema: Schema,
        records: Iterable[Record],
        strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
        stats: ComparisonStats | None = None,
        max_entries: int = 50,
        bulk_load: bool = True,
        faithful_gate: bool = False,
        native_mode: str = "native",
        rng: random.Random | None = None,
        forests: dict | None = None,
        kernel: str = "python",
    ) -> None:
        self.dataset = TransformedDataset(
            schema,
            records,
            strategy=strategy,
            stats=stats,
            faithful_gate=faithful_gate,
            max_entries=max_entries,
            bulk_load=bulk_load,
            native_mode=native_mode,
            rng=rng,
            forests=forests,
            kernel=kernel,
        )

    @property
    def stats(self) -> ComparisonStats:
        """The counter bundle shared with all runs on this engine."""
        return self.dataset.stats

    def algorithm(self, name: str | SkylineAlgorithm, **options) -> SkylineAlgorithm:
        """Resolve an algorithm argument (name or ready instance)."""
        if isinstance(name, SkylineAlgorithm):
            return name
        return get_algorithm(name, **options)

    def run_points(
        self,
        algorithm: str | SkylineAlgorithm = "sdc+",
        *,
        stats: ComparisonStats | None = None,
        parallel: "ParallelConfig | int | None" = None,
        **options,
    ) -> Iterator[Point]:
        """Stream skyline :class:`Point` objects progressively.

        ``stats`` redirects this one call's counters into the given
        bundle instead of the engine-level one (the run executes on an
        isolated :meth:`~repro.transform.dataset.TransformedDataset.query_view`,
        so the engine bundle is untouched) -- per-call attribution
        without a second engine.

        ``parallel`` (a :class:`~repro.parallel.ParallelConfig` or a
        worker count) shards the query across a work-stealing process
        pool (see ``docs/parallel.md``).  The answer set is identical to
        the serial run (same emission order as serial SDC+ under strata
        partitioning); this convenience entry point returns the fully
        merged answer, but the executor itself streams each merged
        shard's survivors to a ``sink`` incrementally while later tasks
        still compute -- pass one through
        :meth:`parallel_executor`\\ 's ``run``.  Counters billed are the
        aggregate of all tasks plus the merge phase.  For repeated
        parallel queries prefer :meth:`parallel_executor`, which reuses
        the pool and the shared-memory point store across calls.
        """
        if parallel is not None:
            from repro.parallel import ParallelSkylineExecutor

            with ParallelSkylineExecutor(self.dataset, parallel) as executor:
                result = executor.run(
                    algorithm if isinstance(algorithm, str) else algorithm.name,
                    stats=stats,
                    **options,
                )
            return iter(result.points)
        dataset = self.dataset if stats is None else self.dataset.query_view(stats)
        return self.algorithm(algorithm, **options).run(dataset)

    def parallel_executor(
        self, config: "ParallelConfig | int | None" = None
    ) -> "ParallelSkylineExecutor":
        """A reusable sharded-execution backend over this dataset.

        Use as a context manager (it owns a process pool and a
        shared-memory segment)::

            with engine.parallel_executor(4) as pex:
                for algo in ("sdc+", "bbs+"):
                    result = pex.run(algo)
        """
        from repro.parallel import ParallelSkylineExecutor

        return ParallelSkylineExecutor(self.dataset, config)

    def run(
        self,
        algorithm: str | SkylineAlgorithm = "sdc+",
        *,
        stats: ComparisonStats | None = None,
        parallel: "ParallelConfig | int | None" = None,
        **options,
    ) -> Iterator[Record]:
        """Stream skyline :class:`Record` objects progressively."""
        for point in self.run_points(
            algorithm, stats=stats, parallel=parallel, **options
        ):
            yield point.record

    def skyline(
        self,
        algorithm: str | SkylineAlgorithm = "sdc+",
        *,
        stats: ComparisonStats | None = None,
        parallel: "ParallelConfig | int | None" = None,
        **options,
    ) -> list[Record]:
        """The full skyline as a record list."""
        return list(self.run(algorithm, stats=stats, parallel=parallel, **options))

    def query(
        self,
        algorithm: str | SkylineAlgorithm = "sdc+",
        *,
        deadline: float | None = None,
        max_comparisons: int | None = None,
        max_heap_entries: int | None = None,
        max_window_entries: int | None = None,
        max_answers: int | None = None,
        cancel: "CancellationToken | None" = None,
        context: "QueryContext | None" = None,
        fallback: bool = True,
        stats: ComparisonStats | None = None,
        **options,
    ):
        """Run one resilient query (see :mod:`repro.resilience`).

        Returns a :class:`~repro.resilience.executor.PartialResult`;
        exhausting a resource budget truncates gracefully, while an
        expired ``deadline`` (seconds) or a fired ``cancel`` token raises
        the typed control error with the partial result attached.  A
        ready-made ``context`` overrides the individual limits; ``stats``
        redirects this call's counters into the given bundle (the query
        runs on an isolated view, leaving the engine bundle untouched).
        """
        from repro.resilience import QueryContext, ResourceBudget, execute

        if context is None:
            limits = (max_comparisons, max_heap_entries, max_window_entries,
                      max_answers)
            budget = (
                ResourceBudget(*limits) if any(v is not None for v in limits)
                else None
            )
            context = QueryContext(deadline=deadline, budget=budget, cancel=cancel)
        dataset = self.dataset if stats is None else self.dataset.query_view(stats)
        return execute(
            dataset, algorithm, context, fallback=fallback, **options
        )

    def serve(self, **options) -> "SkylineServer":
        """A concurrent query server over this engine's dataset.

        Keyword arguments are forwarded to
        :class:`~repro.serving.server.SkylineServer` (``workers``,
        ``max_pending``, ``validate_on_admission``, ...).  Use as a
        context manager::

            with engine.serve(workers=8) as server:
                handles = [server.submit(algorithm="sdc+") for _ in range(32)]
                answers = [h.result() for h in handles]
        """
        from repro.serving import SkylineServer

        return SkylineServer(self, **options)

    def materialize(self, cache=None, **options):
        """A :class:`~repro.views.ViewManager` over this engine's dataset.

        Materializes the full-space skyline immediately and registers
        for incremental maintenance on :meth:`insert` / :meth:`delete`.
        ``cache`` is an optional ready
        :class:`~repro.views.ResultCache`; other keyword arguments are
        forwarded to the manager (``algorithm``, ``cache_entries``,
        ``cache_bytes``, ``metrics``).  Use as a context manager (or
        call :meth:`~repro.views.ViewManager.detach`) to unhook::

            with engine.materialize() as views:
                hit = views.lookup(QueryShape.full_skyline())
        """
        from repro.views import ViewManager

        manager = ViewManager(self.dataset, cache=cache, **options)
        manager.materialize()
        return manager

    # ------------------------------------------------------------------
    # Skyline-related queries (repro.queries convenience front-ends)
    # ------------------------------------------------------------------
    def skyband(self, k: int, method: str = "bbs") -> list[Record]:
        """Records dominated by fewer than ``k`` others (1 == skyline)."""
        from repro.queries.skyband import k_skyband

        return [p.record for p in k_skyband(self.dataset, k, method)]

    def constrained(self, constraint, method: str = "bbs") -> list[Record]:
        """Skyline of the records admitted by a
        :class:`~repro.queries.constrained.Constraint`."""
        from repro.queries.constrained import constrained_skyline

        return [
            p.record for p in constrained_skyline(self.dataset, constraint, method)
        ]

    def layers(
        self, max_layers: int | None = None, algorithm: str = "bnl"
    ) -> Iterator[list[Record]]:
        """Successive skyline layers (onion peeling)."""
        from repro.queries.layers import skyline_layers

        for layer in skyline_layers(self.dataset, max_layers, algorithm):
            yield [p.record for p in layer]

    def subspace(
        self, attributes: list[str], algorithm: str = "bnl"
    ) -> list[Record]:
        """Skyline over a subset of the schema's attributes."""
        from repro.queries.subspace import subspace_skyline

        return subspace_skyline(self.dataset, attributes, algorithm)

    def top_k_dominating(self, k: int) -> list[tuple[Record, int]]:
        """The ``k`` records dominating the most others, with counts."""
        from repro.queries.topk import top_k_dominating

        return [(p.record, count) for p, count in top_k_dominating(self.dataset, k)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Structural summary of the dataset and its domain mappings.

        Covers the quantities the paper's analysis turns on: category
        populations, uncovered-level range, per-attribute poset shape
        (size, height, width, comparability) and SDC+ stratum count.
        """
        from repro.posets.analysis import comparability_ratio, width

        dataset = self.dataset
        attributes = []
        for mapping in dataset.mappings:
            poset = mapping.attribute.poset
            attributes.append(
                {
                    "name": mapping.attribute.name,
                    "domain_size": len(poset),
                    "height": poset.height,
                    "width": width(poset),
                    "comparability_ratio": round(comparability_ratio(poset), 4),
                    "max_uncovered_level": mapping.max_level,
                    "set_valued": mapping.attribute.set_domain is not None,
                }
            )
        return {
            "records": len(dataset),
            "schema": {
                "total": dataset.schema.num_total,
                "partial": dataset.schema.num_partial,
                "transformed_dimensions": dataset.dimensions,
            },
            "strategy": dataset.strategy.value,
            "native_mode": dataset.native_mode,
            "kernel": dataset.kernel_name,
            "categories": {
                str(cat): count for cat, count in dataset.category_counts().items()
            },
            "max_uncovered_level": dataset.max_uncovered_level,
            "strata": dataset.stratification.num_strata,
            "poset_attributes": attributes,
        }

    def explain(self, algorithm: str | SkylineAlgorithm = "sdc+", **options) -> dict:
        """Run one instrumented query and report what it cost.

        Returns the answer size, wall time, counter deltas, first-answer
        latency and the emission-progressiveness score.
        """
        from repro.bench.harness import run_progressive

        run = run_progressive(self.dataset, algorithm, **options)
        first = run.first_answer()
        return {
            "algorithm": run.algorithm,
            "answers": run.skyline_size,
            "total_seconds": round(run.total_elapsed, 6),
            "first_answer_seconds": round(first.elapsed, 6) if first else None,
            "first_answer_checks": first.dominance_checks if first else None,
            "progressiveness": round(run.progressiveness(), 4),
            "counters": run.final_delta,
        }

    # ------------------------------------------------------------------
    # Dynamic updates (paper future work, Section 6)
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Add a record; indexes and strata are maintained incrementally."""
        self.dataset.insert_record(record)

    def delete(self, rid) -> bool:
        """Remove the record with id ``rid``; returns ``False`` if absent."""
        return self.dataset.delete_record(rid)


def skyline(
    records: Iterable[Record],
    schema: Schema,
    algorithm: str | SkylineAlgorithm = "sdc+",
    strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
    kernel: str = "python",
    **options,
) -> list[Record]:
    """One-shot skyline query (see :class:`SkylineEngine` for reuse)."""
    engine = SkylineEngine(schema, records, strategy=strategy, kernel=kernel)
    return engine.skyline(algorithm, **options)
