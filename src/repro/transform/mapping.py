"""Per-attribute domain mappings (step S1 of Section 4.1).

A :class:`DomainMapping` bundles, for one poset attribute, the spanning
forest chosen by the configured strategy, the interval encoding built on
it and the dominance classification it induces.  It precomputes flat
per-node arrays so that transforming millions of records stays cheap.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.core.schema import PosetAttribute, Schema
from repro.posets.classification import DominanceClassification
from repro.posets.encoding import IntervalEncoding
from repro.posets.optimize import SpanningTreeStrategy, build_forest
from repro.posets.spanning_tree import SpanningForest

__all__ = ["DomainMapping", "build_mappings"]


class DomainMapping:
    """Interval mapping + classification for one poset attribute."""

    __slots__ = (
        "attribute",
        "forest",
        "encoding",
        "classification",
        "_normalized",
        "_covered",
        "_covering",
        "_level",
        "_nsets",
        "_closure",
    )

    def __init__(self, attribute: PosetAttribute, forest: SpanningForest) -> None:
        self.attribute = attribute
        self.forest = forest
        self.encoding = IntervalEncoding(forest)
        self.classification = DominanceClassification(forest)
        n = len(attribute.poset)
        enc = self.encoding
        cls = self.classification
        self._normalized = tuple(enc.normalized_ix(i) for i in range(n))
        self._covered = tuple(cls.is_completely_covered_ix(i) for i in range(n))
        self._covering = tuple(cls.is_completely_covering_ix(i) for i in range(n))
        self._level = tuple(cls.uncovered_level_ix(i) for i in range(n))
        dom = attribute.set_domain
        self._nsets = (
            tuple(dom.set_of_ix(i) for i in range(n)) if dom is not None else None
        )
        self._closure = None

    @classmethod
    def build(
        cls,
        attribute: PosetAttribute,
        strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
        rng: random.Random | None = None,
    ) -> "DomainMapping":
        """Construct the forest with ``strategy`` and wrap it."""
        return cls(attribute, build_forest(attribute.poset, strategy, rng))

    # ------------------------------------------------------------------
    def node_index(self, value: Hashable) -> int:
        """Poset node index of a domain value."""
        return self.attribute.poset.index(value)

    def normalized_ix(self, i: int) -> tuple[int, int]:
        """Minimisation coordinates of node index ``i``."""
        return self._normalized[i]

    def covered_ix(self, i: int) -> bool:
        """Whether node index ``i`` is completely covered."""
        return self._covered[i]

    def covering_ix(self, i: int) -> bool:
        """Whether node index ``i`` is completely covering."""
        return self._covering[i]

    def level_ix(self, i: int) -> int:
        """Uncovered level of node index ``i``."""
        return self._level[i]

    def native_set_ix(self, i: int) -> frozenset | None:
        """Native set of node index ``i`` (``None`` in reachability mode)."""
        return self._nsets[i] if self._nsets is not None else None

    @property
    def closure(self):
        """Exact compressed transitive closure over the same forest.

        Built lazily; shares the forest's interval encoding, so closure
        verdicts are consistent with the indexed intervals.
        """
        if self._closure is None:
            from repro.posets.closure import IntervalClosure

            self._closure = IntervalClosure(self.forest, self.encoding)
        return self._closure

    @property
    def max_level(self) -> int:
        """Largest uncovered level in this attribute's domain."""
        return max(self._level, default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DomainMapping({self.attribute.name!r}, n={len(self._normalized)})"


def build_mappings(
    schema: Schema,
    strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
    rng: random.Random | None = None,
    forests: dict[str, SpanningForest] | None = None,
) -> tuple[DomainMapping, ...]:
    """One :class:`DomainMapping` per poset attribute of ``schema``.

    ``forests`` pins explicit spanning forests by attribute name (e.g.
    to reproduce the paper's worked examples exactly); attributes not
    named fall back to ``strategy``.
    """
    forests = forests or {}
    out = []
    for attr in schema.partial_attrs:
        forest = forests.get(attr.name)
        if forest is not None:
            if forest.poset is not attr.poset:
                from repro.exceptions import SchemaError

                raise SchemaError(
                    f"forest for {attr.name!r} was built over a different poset"
                )
            out.append(DomainMapping(attr, forest))
        else:
            out.append(DomainMapping.build(attr, strategy, rng))
    return tuple(out)
