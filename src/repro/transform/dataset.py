"""Transformed datasets: records -> points -> R-tree (steps S1+S2).

:class:`TransformedDataset` is the object every algorithm consumes.  It
owns the domain mappings (per the configured spanning-tree strategy), the
transformed :class:`~repro.transform.point.Point` list, the dominance
kernel bound to the schema, and lazily-built R*-tree indexes -- one global
tree for BBS+/SDC and per-stratum trees for SDC+ (via
:mod:`repro.transform.stratification`).
"""

from __future__ import annotations

import random
import threading
from collections.abc import Iterable

from repro.core.categories import Category
from repro.core.dominance import DominanceKernel
from repro.core.record import Record
from repro.core.schema import Schema
from repro.core.stats import ComparisonStats
from repro.posets.optimize import SpanningTreeStrategy
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.rtree.bulk import str_bulk_load
from repro.rtree.rstar import RStarTree
from repro.transform.mapping import DomainMapping, build_mappings
from repro.transform.point import Point

__all__ = ["TransformedDataset"]


class TransformedDataset:
    """Schema + records + mappings + transformed points + indexes.

    Parameters
    ----------
    schema:
        Query schema (mixed totally-/partially-ordered attributes).
    records:
        Input relation.
    strategy:
        Spanning-tree strategy for every poset attribute (``default``,
        ``random``, ``minpc`` or ``maxpc``; Section 4.7).
    stats:
        Shared counter bundle (one is created when omitted).
    faithful_gate:
        Forwarded to :class:`~repro.core.dominance.DominanceKernel`.
    max_entries:
        R-tree node capacity (paper default 50).
    bulk_load:
        Build indexes with STR packing (default) instead of one-by-one
        R*-tree insertion.
    native_mode:
        ``"native"`` (default) answers original-domain comparisons with
        real set containment (or poset reachability); ``"closure"``
        answers them exactly through the compressed transitive closure
        of :mod:`repro.posets.closure` -- same results, different cost
        profile (the mapping-tradeoff experiment).
    forests:
        Optional explicit spanning forests by poset-attribute name,
        overriding ``strategy`` per attribute (used to reproduce the
        paper's worked examples exactly).
    kernel:
        Dominance backend: ``"python"`` (default) compares one pair at a
        time; ``"numpy"`` uses the vectorized
        :class:`~repro.core.batch.BatchDominanceKernel` with memoized
        native comparisons.  Same answers, emission order and counters;
        see ``docs/performance.md``.
    """

    def __init__(
        self,
        schema: Schema,
        records: Iterable[Record],
        strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
        stats: ComparisonStats | None = None,
        faithful_gate: bool = False,
        max_entries: int = 50,
        bulk_load: bool = True,
        native_mode: str = "native",
        rng: random.Random | None = None,
        forests: dict | None = None,
        kernel: str = "python",
    ) -> None:
        if native_mode not in ("native", "closure"):
            from repro.exceptions import SchemaError

            raise SchemaError(f"unknown native_mode {native_mode!r}")
        if kernel not in ("python", "numpy"):
            from repro.exceptions import SchemaError

            raise SchemaError(f"unknown kernel {kernel!r}")
        self.schema = schema
        self.records = list(records)
        self.strategy = SpanningTreeStrategy.parse(strategy)
        self.stats = stats if stats is not None else ComparisonStats()
        self.mappings: tuple[DomainMapping, ...] = build_mappings(
            schema, self.strategy, rng, forests
        )
        self.native_mode = native_mode
        self.kernel_name = kernel
        closures = (
            tuple(m.closure for m in self.mappings)
            if native_mode == "closure" and self.mappings
            else None
        )
        if kernel == "numpy":
            from repro.core.batch import BatchDominanceKernel

            self.kernel = BatchDominanceKernel(
                schema, self.stats, faithful_gate, closures, self.mappings
            )
        else:
            self.kernel = DominanceKernel(schema, self.stats, faithful_gate, closures)
        self.max_entries = max_entries
        self.bulk_load = bulk_load
        #: The active query-execution control context.  Algorithms call
        #: its ``checkpoint()`` in their loops; the resilient executor
        #: (:mod:`repro.resilience.executor`) installs an armed context
        #: for the duration of one query.  Defaults to the unarmed
        #: :data:`~repro.resilience.context.NULL_CONTEXT`.
        self.context: QueryContext = NULL_CONTEXT
        self.points: list[Point] = [self.transform(r) for r in self.records]
        self._index: RStarTree | None = None
        self._stratification = None
        self._buffer_pool = None
        #: Serializes lazy index/stratification/relation builds so that
        #: concurrent queries racing on a cold structure build it once.
        self._build_lock = threading.RLock()
        #: The dataset a :meth:`query_view` borrows built structure from
        #: (``None`` on real datasets).
        self._base: TransformedDataset | None = None
        #: Chaos hooks (see :mod:`repro.resilience.chaos`): a kernel
        #: fault injector re-applied to per-query view kernels, and an
        #: update fault injector fired inside insert/delete.
        self._kernel_injector = None
        self._update_injector = None
        #: Monotone commit counter: bumped once per *successful*
        #: insert/delete (a rolled-back update leaves it untouched), so
        #: observers can tell exactly which dataset state an answer was
        #: computed against (the materialized-view staleness tests key
        #: on it; see ``docs/views.md``).
        self.update_version = 0
        #: Committed-update observers, ``fn(op, point)`` with ``op`` in
        #: ``("insert", "delete")``.  Fired synchronously *after* an
        #: update commits (never on rollback) and still inside whatever
        #: exclusive section the caller holds -- the serving layer's
        #: writer lock -- which is what lets a
        #: :class:`~repro.views.ViewManager` patch/invalidate its
        #: materialized answers atomically with the update.
        self._update_listeners: list = []
        #: The durability commit hook, ``fn(op, point, lsn)``.  Unlike
        #: post-commit listeners it runs *inside* the transactional
        #: section, after the structural mutation but before the version
        #: bump: a raise here rolls the whole update back, which is how
        #: a failed WAL append prevents the commit from ever being
        #: acknowledged (see :mod:`repro.durability.manager`).
        self._commit_hook = None
        #: Per-listener failure tally, ``{qualified name: count}`` --
        #: a post-commit listener that raises is isolated (the commit
        #: stands, later listeners still fire), logged and counted here.
        self.listener_failures: dict[str, int] = {}
        #: Optional ``fn(name)`` mirror of listener failures into
        #: :class:`~repro.serving.metrics.ServerMetrics`.
        self._listener_failure_hook = None

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Transformed-space dimensionality."""
        return self.schema.transformed_dimensions

    def transform(self, record: Record) -> Point:
        """Map one record into the transformed minimisation space."""
        self.schema.validate_record(record.totals, record.partials)
        vector: list[float] = [
            attr.normalize(value)
            for attr, value in zip(self.schema.total_attrs, record.totals)
        ]
        pix: list[int] = []
        nsets: list[frozenset | None] = []
        covered = True
        covering = True
        level = 0
        for mapping, value in zip(self.mappings, record.partials):
            i = mapping.node_index(value)
            pix.append(i)
            vector.extend(mapping.normalized_ix(i))
            nsets.append(mapping.native_set_ix(i))
            covered = covered and mapping.covered_ix(i)
            covering = covering and mapping.covering_ix(i)
            node_level = mapping.level_ix(i)
            if node_level > level:
                level = node_level
        return Point(
            record,
            tuple(vector),
            tuple(pix),
            tuple(nsets),
            Category.of(covered, covering),
            level,
        )

    # ------------------------------------------------------------------
    def build_tree(self, points: list[Point]) -> RStarTree:
        """Index an arbitrary point list with the dataset's settings."""
        if self.bulk_load:
            tree = str_bulk_load(
                points, self.dimensions, max_entries=self.max_entries, stats=self.stats
            )
        else:
            tree = RStarTree(
                self.dimensions, max_entries=self.max_entries, stats=self.stats
            )
            tree.extend(points)
        tree.buffer_pool = self._buffer_pool
        return tree

    @property
    def index(self) -> RStarTree:
        """The single R-tree over all points (built on first use).

        A :meth:`query_view` does not build its own tree: it borrows the
        base dataset's (building it there exactly once, under the shared
        build lock) and rebinds it to the view's counter bundle.
        """
        if self._index is None:
            with self._build_lock:
                if self._index is None:
                    if self._base is not None:
                        self._index = self._base.index.view(self.stats)
                    else:
                        self._index = self.build_tree(self.points)
        return self._index

    @property
    def stratification(self):
        """The SDC+ stratification (built once, stratum trees lazy).

        Like :attr:`index`, a :meth:`query_view` borrows the base
        dataset's stratification through a stats-rebound
        :class:`~repro.transform.stratification.StratificationView`.
        """
        if self._stratification is None:
            with self._build_lock:
                if self._stratification is None:
                    if self._base is not None:
                        self._stratification = self._base.stratification.view(self)
                    else:
                        from repro.transform.stratification import Stratification

                        self._stratification = Stratification(self)
        return self._stratification

    # ------------------------------------------------------------------
    # Dynamic updates (paper future work, Section 6)
    # ------------------------------------------------------------------
    def insert_record(self, record: Record) -> Point:
        """Add one record, keeping index and strata consistent.

        The record's poset values must already belong to the attribute
        domains: the interval labels of a poset are assigned offline, so
        *domain* growth requires re-encoding (call :meth:`invalidate`
        after swapping the schema) -- exactly the open problem the paper
        defers to future work.  Record-level churn, however, is handled
        incrementally here.
        """
        point = self.transform(record)
        injector = self._update_injector
        self.records.append(record)
        self.points.append(point)
        in_index = False
        in_stratum = False
        stratification = self._stratification
        try:
            if injector is not None:
                injector.maybe_fail("dataset.insert_record.pre-index")
            if self._index is not None:
                self._index.insert(point)
                in_index = True
            if injector is not None:
                injector.maybe_fail("dataset.insert_record.pre-strata")
            if self._stratification is not None:
                if self._stratification.add_point(point):
                    in_stratum = True
                else:
                    self._stratification = None  # new stratum needed: rebuild
            if self._commit_hook is not None:
                self._commit_hook("insert", point, self.update_version + 1)
        except Exception:
            # Restore the pre-insert state: an update either completes or
            # leaves the dataset exactly as it was (see the update-chaos
            # suite in tests/test_chaos.py).  The stratum membership must
            # be undone explicitly -- restoring the reference alone would
            # leave the point inside its stratum when a later step (the
            # durability commit hook) fails.
            self.points.pop()
            self.records.pop()
            if in_index:
                self._index.delete(point)
            if in_stratum:
                stratification.remove_point(point)
            self._stratification = stratification
            raise
        self.update_version += 1
        self._notify_listeners("insert", point)
        return point

    def delete_record(self, rid) -> bool:
        """Remove the record with id ``rid``; returns ``False`` if absent."""
        position = next(
            (k for k, p in enumerate(self.points) if p.record.rid == rid), None
        )
        if position is None:
            return False
        injector = self._update_injector
        point = self.points.pop(position)
        record = self.records[position]
        del self.records[position]
        from_index = False
        from_strata = False
        try:
            if injector is not None:
                injector.maybe_fail("dataset.delete_record.pre-index")
            if self._index is not None:
                self._index.delete(point)
                from_index = True
            if injector is not None:
                injector.maybe_fail("dataset.delete_record.pre-strata")
            if self._stratification is not None:
                from_strata = self._stratification.remove_point(point)
            if self._commit_hook is not None:
                self._commit_hook("delete", point, self.update_version + 1)
        except Exception:
            # Restore the pre-delete state (logically identical dataset:
            # same points, same strata; the re-inserted index entry may
            # land in a different node, which changes no answer).
            self.points.insert(position, point)
            self.records.insert(position, record)
            if from_index:
                self._index.insert(point)
            if from_strata:
                if not self._stratification.add_point(point):
                    # The emptied stratum was dropped by remove_point;
                    # rebuild lazily rather than resurrect it in place.
                    self._stratification = None
            raise
        self.update_version += 1
        self._notify_listeners("delete", point)
        return True

    def add_update_listener(self, listener) -> None:
        """Register ``fn(op, point)`` to fire after each committed update."""
        self._update_listeners.append(listener)

    def remove_update_listener(self, listener) -> None:
        """Unregister a committed-update observer (no-op when absent)."""
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def set_commit_hook(self, hook) -> None:
        """Install (or with ``None`` clear) the transactional commit hook.

        At most one hook may be active -- it is the durability layer's
        slot, and silently replacing a live WAL hook would fork the log.
        """
        if hook is not None and self._commit_hook is not None:
            from repro.exceptions import DurabilityError

            raise DurabilityError("dataset already has a commit hook")
        self._commit_hook = hook

    @staticmethod
    def _listener_name(listener) -> str:
        name = getattr(listener, "__qualname__", None)
        if name is None:  # bound methods carry it on __func__
            name = getattr(
                getattr(listener, "__func__", listener), "__qualname__", None
            )
        return name if name is not None else repr(listener)

    def _notify_listeners(self, op: str, point: Point) -> None:
        # The commit already happened (and, with durability on, is on
        # disk): one misbehaving observer must neither un-commit it nor
        # starve the listeners after it.  Isolate, warn, count.
        for listener in list(self._update_listeners):
            try:
                listener(op, point)
            except Exception as err:
                import warnings

                name = self._listener_name(listener)
                self.listener_failures[name] = self.listener_failures.get(name, 0) + 1
                warnings.warn(
                    f"update listener {name} raised on {op}: {err!r} "
                    "(commit stands; listener isolated)",
                    stacklevel=2,
                )
                hook = self._listener_failure_hook
                if hook is not None:
                    try:
                        hook(name)
                    except Exception:
                        pass

    def rebuild_indexes(self, validate: bool = True) -> None:
        """Drop and rebuild the derived index structures from the points.

        The recovery path for a corrupted R-tree (see
        :func:`repro.resilience.chaos.corrupt_rtree`): the points
        themselves are the ground truth, so rebuilding restores
        availability without an engine restart.  With ``validate`` the
        rebuilt global tree is checked before returning, so a failed
        repair surfaces as :class:`~repro.exceptions.RTreeError` here
        rather than mid-query.
        """
        with self._build_lock:
            had_stratification = self._stratification is not None
            self.invalidate()
            tree = self.index
            if validate:
                tree.validate()
            if had_stratification:
                _ = self.stratification

    def invalidate(self) -> None:
        """Drop derived structures so they rebuild on next access."""
        self._index = None
        self._stratification = None

    def subset_view(self, points: list[Point]) -> "TransformedDataset":
        """A shallow view over a subset of this dataset's points.

        Shares the schema, domain mappings, dominance kernel, counters
        and buffer pool; gets its own (lazily built) index and strata.
        Used by layer peeling and other queries that re-evaluate over a
        shrinking remainder without re-transforming records.
        """
        view = TransformedDataset.__new__(TransformedDataset)
        view.schema = self.schema
        view.records = [p.record for p in points]
        view.strategy = self.strategy
        view.stats = self.stats
        view.mappings = self.mappings
        view.native_mode = self.native_mode
        view.kernel_name = self.kernel_name
        view.kernel = self.kernel
        view.max_entries = self.max_entries
        view.bulk_load = self.bulk_load
        view.context = self.context
        view.points = list(points)
        view._index = None
        view._stratification = None
        view._buffer_pool = self._buffer_pool
        view._build_lock = threading.RLock()
        view._base = None  # different point set: builds its own trees
        view._kernel_injector = self._kernel_injector
        view._update_injector = None
        view.update_version = self.update_version
        view._update_listeners = []
        view._commit_hook = None
        view.listener_failures = {}
        view._listener_failure_hook = None
        return view

    def fallback_view(self) -> "TransformedDataset":
        """A view of this dataset bound to the reference python kernel.

        Shares the records, points, mappings, counters, built indexes
        and strata -- only the dominance kernel is replaced by a fresh
        :class:`~repro.core.dominance.DominanceKernel` with the same
        configuration.  Used by the resilient executor to retry a query
        after a batch-kernel failure (``kernel="numpy"`` answers and
        emission order are identical by construction, so the retry
        computes the same skyline).
        """
        kernel = self.kernel
        view = TransformedDataset.__new__(TransformedDataset)
        view.schema = self.schema
        view.records = self.records
        view.strategy = self.strategy
        view.stats = self.stats
        view.mappings = self.mappings
        view.native_mode = self.native_mode
        view.kernel_name = "python"
        view.kernel = DominanceKernel(
            self.schema, self.stats, kernel.faithful_gate, kernel._closures
        )
        view.max_entries = self.max_entries
        view.bulk_load = self.bulk_load
        view.context = self.context
        view.points = self.points
        view._index = self._index
        view._stratification = self._stratification
        view._buffer_pool = self._buffer_pool
        view._build_lock = self._build_lock
        view._base = self._base
        view._kernel_injector = self._kernel_injector
        view._update_injector = None
        view.update_version = self.update_version
        view._update_listeners = []
        view._commit_hook = None
        view.listener_failures = {}
        view._listener_failure_hook = None
        return view

    def query_view(
        self,
        stats: ComparisonStats | None = None,
        context: QueryContext | None = None,
    ) -> "TransformedDataset":
        """An isolated per-query view over this dataset's shared structure.

        The view shares everything immutable-during-queries -- records,
        points, domain mappings, built R-trees and strata, the batch
        kernel's relation memo -- but gets its **own**

        * :class:`~repro.core.stats.ComparisonStats` bundle (``stats``,
          fresh when omitted), so concurrent queries never race on one
          shared counter bundle and every query's bill is attributable;
        * dominance kernel of the same backend, bound to that bundle;
        * execution ``context`` slot (the resilient executor installs an
          armed context per query).

        This is what the serving layer
        (:class:`~repro.serving.server.SkylineServer`) runs every query
        on, and what :meth:`SkylineEngine.run(stats=...)
        <repro.engine.SkylineEngine.run>` uses for per-call counter
        overrides.  Views assume the base dataset is not mutated while
        they run; the server's reader-writer coordination guarantees it.
        """
        stats = stats if stats is not None else ComparisonStats()
        base_kernel = getattr(self.kernel, "wrapped", self.kernel)
        if getattr(base_kernel, "is_batch", False):
            from repro.core.batch import BatchDominanceKernel

            kernel = BatchDominanceKernel(
                self.schema,
                stats,
                base_kernel.faithful_gate,
                base_kernel._closures,
                base_kernel._mappings,
                max_bitset_nodes=base_kernel._max_bitset_nodes,
                pair_cache_size=base_kernel._pair_cache_size,
            )
            # Share the (build-once, then read-mostly) relation memo.
            with self._build_lock:
                kernel._relations = base_kernel.relations()
        else:
            kernel = DominanceKernel(
                self.schema, stats, base_kernel.faithful_gate, base_kernel._closures
            )
        if self._kernel_injector is not None:
            from repro.resilience.chaos import ChaoticKernel

            kernel = ChaoticKernel(kernel, self._kernel_injector)
        view = TransformedDataset.__new__(TransformedDataset)
        view.schema = self.schema
        view.records = self.records
        view.strategy = self.strategy
        view.stats = stats
        view.mappings = self.mappings
        view.native_mode = self.native_mode
        view.kernel_name = self.kernel_name
        view.kernel = kernel
        view.max_entries = self.max_entries
        view.bulk_load = self.bulk_load
        view.context = context if context is not None else NULL_CONTEXT
        view.points = self.points
        view._index = None
        view._stratification = None
        view._buffer_pool = self._buffer_pool
        view._build_lock = self._build_lock
        view._base = self if self._base is None else self._base
        view._kernel_injector = self._kernel_injector
        view._update_injector = None
        view.update_version = self.update_version
        view._update_listeners = []
        view._commit_hook = None
        view.listener_failures = {}
        view._listener_failure_hook = None
        return view

    def attach_buffer_pool(self, pool) -> None:
        """Share one LRU page cache across every index of this dataset.

        Applies to the main tree and all stratum trees, present and
        future (``build_tree`` wires new trees up automatically).
        """
        self._buffer_pool = pool
        if self._index is not None:
            self._index.buffer_pool = pool
        if self._stratification is not None:
            for stratum in self._stratification:
                if stratum._tree is not None:
                    stratum._tree.buffer_pool = pool

    # ------------------------------------------------------------------
    def category_counts(self) -> dict[Category, int]:
        """Number of points per dominance category."""
        counts = {cat: 0 for cat in Category}
        for p in self.points:
            counts[p.category] += 1
        return counts

    @property
    def max_uncovered_level(self) -> int:
        """Largest record-level uncovered level in the data."""
        return max((p.level for p in self.points), default=0)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformedDataset(n={len(self.points)}, dims={self.dimensions}, "
            f"strategy={self.strategy.value})"
        )
