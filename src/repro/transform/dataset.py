"""Transformed datasets: records -> points -> R-tree (steps S1+S2).

:class:`TransformedDataset` is the object every algorithm consumes.  It
owns the domain mappings (per the configured spanning-tree strategy), the
transformed :class:`~repro.transform.point.Point` list, the dominance
kernel bound to the schema, and lazily-built R*-tree indexes -- one global
tree for BBS+/SDC and per-stratum trees for SDC+ (via
:mod:`repro.transform.stratification`).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.core.categories import Category
from repro.core.dominance import DominanceKernel
from repro.core.record import Record
from repro.core.schema import Schema
from repro.core.stats import ComparisonStats
from repro.posets.optimize import SpanningTreeStrategy
from repro.resilience.context import NULL_CONTEXT, QueryContext
from repro.rtree.bulk import str_bulk_load
from repro.rtree.rstar import RStarTree
from repro.transform.mapping import DomainMapping, build_mappings
from repro.transform.point import Point

__all__ = ["TransformedDataset"]


class TransformedDataset:
    """Schema + records + mappings + transformed points + indexes.

    Parameters
    ----------
    schema:
        Query schema (mixed totally-/partially-ordered attributes).
    records:
        Input relation.
    strategy:
        Spanning-tree strategy for every poset attribute (``default``,
        ``random``, ``minpc`` or ``maxpc``; Section 4.7).
    stats:
        Shared counter bundle (one is created when omitted).
    faithful_gate:
        Forwarded to :class:`~repro.core.dominance.DominanceKernel`.
    max_entries:
        R-tree node capacity (paper default 50).
    bulk_load:
        Build indexes with STR packing (default) instead of one-by-one
        R*-tree insertion.
    native_mode:
        ``"native"`` (default) answers original-domain comparisons with
        real set containment (or poset reachability); ``"closure"``
        answers them exactly through the compressed transitive closure
        of :mod:`repro.posets.closure` -- same results, different cost
        profile (the mapping-tradeoff experiment).
    forests:
        Optional explicit spanning forests by poset-attribute name,
        overriding ``strategy`` per attribute (used to reproduce the
        paper's worked examples exactly).
    kernel:
        Dominance backend: ``"python"`` (default) compares one pair at a
        time; ``"numpy"`` uses the vectorized
        :class:`~repro.core.batch.BatchDominanceKernel` with memoized
        native comparisons.  Same answers, emission order and counters;
        see ``docs/performance.md``.
    """

    def __init__(
        self,
        schema: Schema,
        records: Iterable[Record],
        strategy: SpanningTreeStrategy | str = SpanningTreeStrategy.DEFAULT,
        stats: ComparisonStats | None = None,
        faithful_gate: bool = False,
        max_entries: int = 50,
        bulk_load: bool = True,
        native_mode: str = "native",
        rng: random.Random | None = None,
        forests: dict | None = None,
        kernel: str = "python",
    ) -> None:
        if native_mode not in ("native", "closure"):
            from repro.exceptions import SchemaError

            raise SchemaError(f"unknown native_mode {native_mode!r}")
        if kernel not in ("python", "numpy"):
            from repro.exceptions import SchemaError

            raise SchemaError(f"unknown kernel {kernel!r}")
        self.schema = schema
        self.records = list(records)
        self.strategy = SpanningTreeStrategy.parse(strategy)
        self.stats = stats if stats is not None else ComparisonStats()
        self.mappings: tuple[DomainMapping, ...] = build_mappings(
            schema, self.strategy, rng, forests
        )
        self.native_mode = native_mode
        self.kernel_name = kernel
        closures = (
            tuple(m.closure for m in self.mappings)
            if native_mode == "closure" and self.mappings
            else None
        )
        if kernel == "numpy":
            from repro.core.batch import BatchDominanceKernel

            self.kernel = BatchDominanceKernel(
                schema, self.stats, faithful_gate, closures, self.mappings
            )
        else:
            self.kernel = DominanceKernel(schema, self.stats, faithful_gate, closures)
        self.max_entries = max_entries
        self.bulk_load = bulk_load
        #: The active query-execution control context.  Algorithms call
        #: its ``checkpoint()`` in their loops; the resilient executor
        #: (:mod:`repro.resilience.executor`) installs an armed context
        #: for the duration of one query.  Defaults to the unarmed
        #: :data:`~repro.resilience.context.NULL_CONTEXT`.
        self.context: QueryContext = NULL_CONTEXT
        self.points: list[Point] = [self.transform(r) for r in self.records]
        self._index: RStarTree | None = None
        self._stratification = None
        self._buffer_pool = None

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Transformed-space dimensionality."""
        return self.schema.transformed_dimensions

    def transform(self, record: Record) -> Point:
        """Map one record into the transformed minimisation space."""
        self.schema.validate_record(record.totals, record.partials)
        vector: list[float] = [
            attr.normalize(value)
            for attr, value in zip(self.schema.total_attrs, record.totals)
        ]
        pix: list[int] = []
        nsets: list[frozenset | None] = []
        covered = True
        covering = True
        level = 0
        for mapping, value in zip(self.mappings, record.partials):
            i = mapping.node_index(value)
            pix.append(i)
            vector.extend(mapping.normalized_ix(i))
            nsets.append(mapping.native_set_ix(i))
            covered = covered and mapping.covered_ix(i)
            covering = covering and mapping.covering_ix(i)
            node_level = mapping.level_ix(i)
            if node_level > level:
                level = node_level
        return Point(
            record,
            tuple(vector),
            tuple(pix),
            tuple(nsets),
            Category.of(covered, covering),
            level,
        )

    # ------------------------------------------------------------------
    def build_tree(self, points: list[Point]) -> RStarTree:
        """Index an arbitrary point list with the dataset's settings."""
        if self.bulk_load:
            tree = str_bulk_load(
                points, self.dimensions, max_entries=self.max_entries, stats=self.stats
            )
        else:
            tree = RStarTree(
                self.dimensions, max_entries=self.max_entries, stats=self.stats
            )
            tree.extend(points)
        tree.buffer_pool = self._buffer_pool
        return tree

    @property
    def index(self) -> RStarTree:
        """The single R-tree over all points (built on first use)."""
        if self._index is None:
            self._index = self.build_tree(self.points)
        return self._index

    @property
    def stratification(self):
        """The SDC+ stratification (built once, stratum trees lazy)."""
        if self._stratification is None:
            from repro.transform.stratification import Stratification

            self._stratification = Stratification(self)
        return self._stratification

    # ------------------------------------------------------------------
    # Dynamic updates (paper future work, Section 6)
    # ------------------------------------------------------------------
    def insert_record(self, record: Record) -> Point:
        """Add one record, keeping index and strata consistent.

        The record's poset values must already belong to the attribute
        domains: the interval labels of a poset are assigned offline, so
        *domain* growth requires re-encoding (call :meth:`invalidate`
        after swapping the schema) -- exactly the open problem the paper
        defers to future work.  Record-level churn, however, is handled
        incrementally here.
        """
        point = self.transform(record)
        self.records.append(record)
        self.points.append(point)
        if self._index is not None:
            self._index.insert(point)
        if self._stratification is not None:
            if not self._stratification.add_point(point):
                self._stratification = None  # new stratum needed: rebuild
        return point

    def delete_record(self, rid) -> bool:
        """Remove the record with id ``rid``; returns ``False`` if absent."""
        position = next(
            (k for k, p in enumerate(self.points) if p.record.rid == rid), None
        )
        if position is None:
            return False
        point = self.points.pop(position)
        del self.records[position]
        if self._index is not None:
            self._index.delete(point)
        if self._stratification is not None:
            self._stratification.remove_point(point)
        return True

    def invalidate(self) -> None:
        """Drop derived structures so they rebuild on next access."""
        self._index = None
        self._stratification = None

    def subset_view(self, points: list[Point]) -> "TransformedDataset":
        """A shallow view over a subset of this dataset's points.

        Shares the schema, domain mappings, dominance kernel, counters
        and buffer pool; gets its own (lazily built) index and strata.
        Used by layer peeling and other queries that re-evaluate over a
        shrinking remainder without re-transforming records.
        """
        view = TransformedDataset.__new__(TransformedDataset)
        view.schema = self.schema
        view.records = [p.record for p in points]
        view.strategy = self.strategy
        view.stats = self.stats
        view.mappings = self.mappings
        view.native_mode = self.native_mode
        view.kernel_name = self.kernel_name
        view.kernel = self.kernel
        view.max_entries = self.max_entries
        view.bulk_load = self.bulk_load
        view.context = self.context
        view.points = list(points)
        view._index = None
        view._stratification = None
        view._buffer_pool = self._buffer_pool
        return view

    def fallback_view(self) -> "TransformedDataset":
        """A view of this dataset bound to the reference python kernel.

        Shares the records, points, mappings, counters, built indexes
        and strata -- only the dominance kernel is replaced by a fresh
        :class:`~repro.core.dominance.DominanceKernel` with the same
        configuration.  Used by the resilient executor to retry a query
        after a batch-kernel failure (``kernel="numpy"`` answers and
        emission order are identical by construction, so the retry
        computes the same skyline).
        """
        kernel = self.kernel
        view = TransformedDataset.__new__(TransformedDataset)
        view.schema = self.schema
        view.records = self.records
        view.strategy = self.strategy
        view.stats = self.stats
        view.mappings = self.mappings
        view.native_mode = self.native_mode
        view.kernel_name = "python"
        view.kernel = DominanceKernel(
            self.schema, self.stats, kernel.faithful_gate, kernel._closures
        )
        view.max_entries = self.max_entries
        view.bulk_load = self.bulk_load
        view.context = self.context
        view.points = self.points
        view._index = self._index
        view._stratification = self._stratification
        view._buffer_pool = self._buffer_pool
        return view

    def attach_buffer_pool(self, pool) -> None:
        """Share one LRU page cache across every index of this dataset.

        Applies to the main tree and all stratum trees, present and
        future (``build_tree`` wires new trees up automatically).
        """
        self._buffer_pool = pool
        if self._index is not None:
            self._index.buffer_pool = pool
        if self._stratification is not None:
            for stratum in self._stratification:
                if stratum._tree is not None:
                    stratum._tree.buffer_pool = pool

    # ------------------------------------------------------------------
    def category_counts(self) -> dict[Category, int]:
        """Number of points per dominance category."""
        counts = {cat: 0 for cat in Category}
        for p in self.points:
            counts[p.category] += 1
        return counts

    @property
    def max_uncovered_level(self) -> int:
        """Largest record-level uncovered level in the data."""
        return max((p.level for p in self.points), default=0)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformedDataset(n={len(self.points)}, dims={self.dimensions}, "
            f"strategy={self.strategy.value})"
        )
