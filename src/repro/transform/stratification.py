"""Offline data stratification for SDC+ (Section 4.6.1).

Points are partitioned into the stratum sequence

    ``R_{c,p}, R_{c,c}, R^1_{p,p}, R^1_{p,c}, R^2_{p,p}, R^2_{p,c}, ...``

where the superscript is the record's uncovered level.  The ordering
guarantees that a local skyline point of one stratum cannot be dominated
by any point of a later stratum:

* only ``(c,p)`` points can dominate ``(c,p)`` points;
* ``(c,·)`` strata precede all partially-covered strata, and partially
  covered points never dominate completely covered ones (Lemma 4.1);
* among partially covered points, a dominator's uncovered level never
  exceeds the dominated point's level (Lemma 4.4), and within one level
  ``(p,c)`` points cannot dominate ``(p,p)`` points, so processing
  ``R^i_{p,p}`` before ``R^i_{p,c}`` is safe.

The paper notes the strata may conceptually share one physical R-tree with
a stratum-number attribute; here each stratum gets its own (lazily built)
tree, which is equivalent for the traversal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.categories import Category
from repro.rtree.rstar import RStarTree
from repro.transform.point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transform.dataset import TransformedDataset

__all__ = [
    "Stratum",
    "Stratification",
    "StratumView",
    "StratificationView",
    "stratify",
]


class Stratum:
    """One stratum: a category, an uncovered level and its points."""

    __slots__ = ("category", "level", "points", "_tree", "_dataset")

    def __init__(
        self, dataset: "TransformedDataset", category: Category, level: int
    ) -> None:
        self.category = category
        self.level = level
        self.points: list[Point] = []
        self._tree: RStarTree | None = None
        self._dataset = dataset

    @property
    def label(self) -> str:
        """Human-readable stratum name, e.g. ``R(p,p)^2``."""
        if self.category.completely_covered:
            return f"R{self.category}"
        return f"R{self.category}^{self.level}"

    @property
    def tree(self) -> RStarTree:
        """The stratum's R-tree (built on first use).

        The build is serialized on the dataset's build lock so that
        concurrent per-query views racing on a cold stratum build it
        exactly once.
        """
        if self._tree is None:
            with self._dataset._build_lock:
                if self._tree is None:
                    self._tree = self._dataset.build_tree(self.points)
        return self._tree

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stratum({self.label}, n={len(self.points)})"


class Stratification:
    """The ordered stratum sequence of one dataset."""

    def __init__(self, dataset: "TransformedDataset") -> None:
        self.dataset = dataset
        points = dataset.points
        max_pp = max(
            (p.level for p in points if p.category is Category.PP), default=0
        )
        max_pc = max(
            (p.level for p in points if p.category is Category.PC), default=0
        )
        by_key: dict[tuple[Category, int], Stratum] = {}
        order: list[Stratum] = []

        def add(category: Category, level: int) -> None:
            stratum = Stratum(dataset, category, level)
            by_key[(category, level)] = stratum
            order.append(stratum)

        add(Category.CP, 0)
        add(Category.CC, 0)
        for level in range(1, max(max_pp, max_pc) + 1):
            if level <= max_pp:
                add(Category.PP, level)
            if level <= max_pc:
                add(Category.PC, level)

        for p in points:
            level = 0 if p.category.completely_covered else p.level
            by_key[(p.category, level)].points.append(p)

        # Drop empty strata: they would only cost empty-tree traversals.
        self.strata: tuple[Stratum, ...] = tuple(s for s in order if s.points)

    # ------------------------------------------------------------------
    # Incremental maintenance (record-level updates, Section 6)
    # ------------------------------------------------------------------
    def _stratum_of(self, point: Point) -> Stratum | None:
        level = 0 if point.category.completely_covered else point.level
        for stratum in self.strata:
            if stratum.category is point.category and stratum.level == level:
                return stratum
        return None

    def add_point(self, point: Point) -> bool:
        """Insert into the matching stratum; ``False`` when none exists
        (the caller must rebuild -- a brand-new stratum changes the
        processing sequence)."""
        stratum = self._stratum_of(point)
        if stratum is None:
            return False
        stratum.points.append(point)
        if stratum._tree is not None:
            stratum._tree.insert(point)
        return True

    def remove_point(self, point: Point) -> bool:
        """Remove from its stratum; empty strata are dropped lazily."""
        stratum = self._stratum_of(point)
        if stratum is None or point not in stratum.points:
            return False
        stratum.points.remove(point)
        if stratum._tree is not None:
            stratum._tree.delete(point)
        if not stratum.points:
            self.strata = tuple(s for s in self.strata if s is not stratum)
        return True

    def __iter__(self) -> Iterator[Stratum]:
        return iter(self.strata)

    def __len__(self) -> int:
        return len(self.strata)

    @property
    def num_strata(self) -> int:
        """Number of non-empty strata (the paper reports e.g. 25)."""
        return len(self.strata)

    def view(self, dataset: "TransformedDataset") -> "StratificationView":
        """A per-query view charging tree accesses to ``dataset``'s stats.

        Shares stratum membership and (lazily, build-once) the stratum
        trees of this stratification; only the counter bundle node
        accesses are charged to differs.  Used by
        :meth:`~repro.transform.dataset.TransformedDataset.query_view`
        so concurrent queries never race on one shared
        :class:`~repro.core.stats.ComparisonStats`.
        """
        return StratificationView(self, dataset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Stratification(" + ", ".join(s.label for s in self.strata) + ")"


class StratumView:
    """Read-only, stats-rebound view of one :class:`Stratum`.

    Exposes the subset of the stratum interface the SDC/SDC+ traversals
    consume (``category``, ``level``, ``points``, ``label``, ``tree``);
    the tree is the *shared* base tree rebound to the viewing dataset's
    counter bundle via :meth:`~repro.rtree.rstar.RStarTree.view`.
    """

    __slots__ = ("_stratum", "_dataset", "_tree")

    def __init__(self, stratum: Stratum, dataset: "TransformedDataset") -> None:
        self._stratum = stratum
        self._dataset = dataset
        self._tree: RStarTree | None = None

    @property
    def category(self) -> Category:
        return self._stratum.category

    @property
    def level(self) -> int:
        return self._stratum.level

    @property
    def points(self) -> list[Point]:
        return self._stratum.points

    @property
    def label(self) -> str:
        return self._stratum.label

    @property
    def tree(self) -> RStarTree:
        """The base stratum's tree, counting into the view's stats."""
        if self._tree is None:
            self._tree = self._stratum.tree.view(self._dataset.stats)
        return self._tree

    def __len__(self) -> int:
        return len(self._stratum.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StratumView({self.label}, n={len(self)})"


class StratificationView:
    """Read-only view of a :class:`Stratification` for one query."""

    __slots__ = ("dataset", "strata")

    def __init__(
        self, base: Stratification, dataset: "TransformedDataset"
    ) -> None:
        self.dataset = dataset
        self.strata: tuple[StratumView, ...] = tuple(
            StratumView(s, dataset) for s in base.strata
        )

    def __iter__(self) -> Iterator[StratumView]:
        return iter(self.strata)

    def __len__(self) -> int:
        return len(self.strata)

    @property
    def num_strata(self) -> int:
        return len(self.strata)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "StratificationView(" + ", ".join(s.label for s in self.strata) + ")"


def stratify(dataset: "TransformedDataset") -> Stratification:
    """Build the SDC+ stratification of ``dataset``."""
    return Stratification(dataset)
