"""Transformed data points.

A :class:`Point` is a record enriched with everything the algorithms of
Section 4 need in their hot loops:

* ``vector`` -- the normalised minimisation vector: one coordinate per
  totally-ordered attribute (sign-adjusted so smaller is better) followed
  by ``(low, n - post)`` per poset attribute.  m-dominance is plain
  Pareto dominance on this vector.
* ``pix`` -- poset node indices of the partially-ordered values.
* ``nsets`` -- native set representations (``None`` entries when an
  attribute compares by reachability instead).
* ``category`` -- the record-level ``(covered, covering)`` category: a
  record is completely covered/covering only when *every* poset attribute
  value is (Section 4.5.1).
* ``level`` -- the record's uncovered level: the maximum of its values'
  uncovered levels (Section 4.6.1).
* ``key`` -- the BBS priority (sum of vector coordinates, i.e. the L1
  "distance" to the ideal corner); if ``p`` m-dominates ``q`` then
  ``key(p) < key(q)``, which is what makes BBS-style traversals emit
  dominators before the points they dominate.  Computed lazily so the
  transform layer can emit vectors straight into the batch backend's
  numpy matrices without a per-point Python ``sum()``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.categories import Category
from repro.core.record import Record

__all__ = ["Point"]


class Point:
    """A record in the transformed (normalised minimisation) space."""

    __slots__ = (
        "record", "vector", "pix", "nsets", "category", "level", "_key", "_arr"
    )

    def __init__(
        self,
        record: Record,
        vector: tuple[float, ...],
        pix: tuple[int, ...],
        nsets: tuple[Optional[frozenset], ...],
        category: Category,
        level: int,
    ) -> None:
        self.record = record
        self.vector = vector
        self.pix = pix
        self.nsets = nsets
        self.category = category
        self.level = level
        self._key: float | None = None
        self._arr = None  # cached float64 vector (batch backend)

    @property
    def key(self) -> float:
        """The BBS priority, ``sum(vector)`` (computed on first access).

        Always a Python ``sum`` over the original tuple: both backends
        must see bit-identical keys, and ``numpy.sum``'s pairwise
        accumulation can round differently.
        """
        k = self._key
        if k is None:
            k = self._key = sum(self.vector)
        return k

    @property
    def rid(self):
        """The underlying record's identifier."""
        return self.record.rid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Point(rid={self.record.rid!r}, vector={self.vector}, "
            f"cat={self.category}, L={self.level})"
        )
