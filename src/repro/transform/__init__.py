"""Transform layer: domain mappings, transformed points, indexed datasets.

Implements steps (S1) and (S2) of Section 4.1: every poset attribute is
replaced by two integer coordinates via its interval encoding, records
become :class:`~repro.transform.point.Point` objects in a normalised
minimisation space, and the points are organised in R*-trees -- one tree
for BBS+/SDC, one tree per stratum for SDC+.
"""

from repro.transform.mapping import DomainMapping, build_mappings
from repro.transform.point import Point
from repro.transform.dataset import TransformedDataset
from repro.transform.stratification import Stratification, stratify

__all__ = [
    "DomainMapping",
    "build_mappings",
    "Point",
    "TransformedDataset",
    "Stratification",
    "stratify",
]
