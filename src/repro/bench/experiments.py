"""Named experiments -- one per table/figure of the paper's Section 5.

Each :class:`Experiment` knows its workload configuration, its algorithm
line-up (algorithm + options + spanning-tree strategy per curve) and the
paper's reported headline numbers for EXPERIMENTS.md.  The paper runs on
500K-1000K records; pure-Python benchmark sizes default to
``REPRO_BENCH_N`` (or 4000) and scale linearly (see DESIGN.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.harness import AlgorithmRun, count_false_positives, run_progressive
from repro.core.categories import Category
from repro.exceptions import ReproError
from repro.transform.dataset import TransformedDataset
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__all__ = [
    "AlgorithmSpec",
    "Experiment",
    "ExperimentResult",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "default_bench_size",
]

#: The paper's default algorithm line-up (Figs. 10-12(a,b)).
DEFAULT_LINEUP = (
    ("BNL", "bnl", {}, "default"),
    ("BNL+", "bnl+", {}, "default"),
    ("BBS+", "bbs+", {}, "default"),
    ("SDC", "sdc", {}, "default"),
    ("SDC+", "sdc+", {}, "default"),
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One curve of a figure: label, algorithm, options, tree strategy."""

    label: str
    algorithm: str
    options: dict = field(default_factory=dict)
    strategy: str = "default"


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure."""

    id: str
    title: str
    paper_ref: str
    make_config: Callable[[int], WorkloadConfig]
    lineup: tuple[AlgorithmSpec, ...]
    size_factor: float = 1.0
    paper_notes: str = ""

    def config(self, data_size: int) -> WorkloadConfig:
        """The workload config at ``data_size`` points (pre-scaling)."""
        return self.make_config(int(data_size * self.size_factor))


class ExperimentResult:
    """All measured curves of one experiment plus dataset statistics."""

    def __init__(
        self,
        experiment: Experiment,
        data_size: int,
        runs: dict[str, AlgorithmRun],
        skyline_size: int,
        false_positives: int,
        category_counts: dict[Category, int],
        num_strata: int,
    ) -> None:
        self.experiment = experiment
        self.data_size = data_size
        self.runs = runs
        self.skyline_size = skyline_size
        self.false_positives = false_positives
        self.category_counts = category_counts
        self.num_strata = num_strata

    def run(self, label: str) -> AlgorithmRun:
        """Measured run for one curve label."""
        return self.runs[label]

    def to_dict(self) -> dict:
        """Machine-readable summary (for JSON export / plotting tools)."""
        curves = {}
        for label, run in self.runs.items():
            curves[label] = {
                "answers": run.skyline_size,
                "total_seconds": run.total_elapsed,
                "progressiveness": run.progressiveness(),
                "counters": run.final_delta,
                "milestones": [
                    {
                        "fraction": m.fraction,
                        "answers": m.answers,
                        "elapsed_seconds": m.elapsed,
                        "dominance_checks": m.dominance_checks,
                        "native_set": m.native_set,
                    }
                    for m in run.milestones()
                ],
            }
        return {
            "experiment": self.experiment.id,
            "paper_ref": self.experiment.paper_ref,
            "title": self.experiment.title,
            "data_size": self.data_size,
            "skyline_size": self.skyline_size,
            "false_positives": self.false_positives,
            "categories": {str(c): n for c, n in self.category_counts.items()},
            "num_strata": self.num_strata,
            "curves": curves,
        }

    def verify_agreement(self) -> None:
        """Raise when any two curves produced different skylines."""
        baseline = None
        for label, run in self.runs.items():
            if baseline is None:
                baseline = (label, run.rids)
            elif run.rids != baseline[1]:
                raise ReproError(
                    f"{label} disagrees with {baseline[0]}: "
                    f"{run.skyline_size} vs {len(baseline[1])} answers"
                )


def default_bench_size() -> int:
    """Benchmark data size: ``REPRO_BENCH_N`` env var or 4000."""
    return int(os.environ.get("REPRO_BENCH_N", "4000"))


def run_experiment(
    experiment: Experiment | str,
    data_size: int | None = None,
    verify: bool = True,
) -> ExperimentResult:
    """Generate the workload, run every curve, cross-check agreement."""
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    if data_size is None:
        data_size = default_bench_size()
    config = experiment.config(data_size)
    workload = generate_workload(config)

    datasets: dict[str, TransformedDataset] = {}
    runs: dict[str, AlgorithmRun] = {}
    for spec in experiment.lineup:
        dataset = datasets.get(spec.strategy)
        if dataset is None:
            dataset = TransformedDataset(
                workload.schema, workload.records, strategy=spec.strategy
            )
            datasets[spec.strategy] = dataset
        runs[spec.label] = run_progressive(dataset, spec.algorithm, **spec.options)

    reference = next(iter(datasets.values()))
    skyline_size, false_positives = count_false_positives(reference)
    num_strata = reference.stratification.num_strata
    result = ExperimentResult(
        experiment,
        config.data_size,
        runs,
        skyline_size,
        false_positives,
        reference.category_counts(),
        num_strata,
    )
    if verify:
        result.verify_agreement()
    return result


def _lineup(*entries: tuple) -> tuple[AlgorithmSpec, ...]:
    return tuple(AlgorithmSpec(*entry) for entry in entries)


EXPERIMENTS: dict[str, Experiment] = {}


def _register(experiment: Experiment) -> Experiment:
    EXPERIMENTS[experiment.id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by its id (e.g. ``fig10a``)."""
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


_register(
    Experiment(
        id="fig10a",
        title="Response time & progressiveness, default workload",
        paper_ref="Fig. 10(a)",
        make_config=lambda n: WorkloadConfig.default(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "662 skyline points, 561 false positives at 500K records; "
            "SDC+ fastest and most progressive, BNL slowest; SDC cuts "
            "actual set comparisons by 59% vs BBS+; ~80% of the skyline "
            "lies in S(c,p)."
        ),
    )
)

_register(
    Experiment(
        id="fig10b",
        title="More set-valued attributes (2 numeric + 2 set-valued)",
        paper_ref="Fig. 10(b)",
        make_config=lambda n: WorkloadConfig.more_set_valued(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "Extra set-valued attribute raises the skyline to 9203 points; "
            "relative order unchanged; SDC may fall behind BBS+ beyond 60% "
            "output."
        ),
    )
)

_register(
    Experiment(
        id="fig10c",
        title="More numeric attributes (4 numeric + 1 set-valued)",
        paper_ref="Fig. 10(c)",
        make_config=lambda n: WorkloadConfig.more_numeric(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "8831 skyline points with 9990 false positives; BNL+ becomes "
            "worse than BNL (6-dimensional transformed-space filter plus "
            "post-processing)."
        ),
    )
)

_register(
    Experiment(
        id="fig11a",
        title="Poset size grown to 1000 nodes",
        paper_ref="Fig. 11(a)",
        make_config=lambda n: WorkloadConfig.large_poset(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "1051 skyline points, 1881 false positives; SDC/SDC+ slightly "
            "slower, BNL+ hit hardest (worse than BNL)."
        ),
    )
)

_register(
    Experiment(
        id="fig11b",
        title="Tall sparse poset (13 levels)",
        paper_ref="Fig. 11(b)",
        make_config=lambda n: WorkloadConfig.tall_poset(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "25 strata for SDC+; larger sets make native comparisons "
            "costlier, hurting BNL and BNL+ the most."
        ),
    )
)

_register(
    Experiment(
        id="fig12a",
        title="Large dataset (2x default size)",
        paper_ref="Fig. 12(a)",
        make_config=lambda n: WorkloadConfig.default(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        size_factor=2.0,
        paper_notes=(
            "All runtimes grow with 1M records; SDC and SDC+ still deliver "
            "nearly all answers before the others finish."
        ),
    )
)

_register(
    Experiment(
        id="fig12b",
        title="Anti-correlated numeric attributes",
        paper_ref="Fig. 12(b)",
        make_config=lambda n: WorkloadConfig.anti_correlated(data_size=n),
        lineup=_lineup(*DEFAULT_LINEUP),
        paper_notes=(
            "898 answers vs 662 for independent attributes; higher runtime "
            "for every algorithm, relative order unchanged."
        ),
    )
)

_register(
    Experiment(
        id="fig12c",
        title="Dominance-classification optimisation (MinPC / MaxPC)",
        paper_ref="Fig. 12(c)",
        make_config=lambda n: WorkloadConfig.default(data_size=n),
        lineup=_lineup(
            ("SDC+", "sdc+", {}, "default"),
            ("SDC+-MaxPC", "sdc+", {}, "maxpc"),
            ("SDC+-MinPC", "sdc+", {}, "minpc"),
        ),
        paper_notes=(
            "SDC+-MaxPC only slightly better than SDC+; SDC+-MinPC clearly "
            "best (fewer comparisons against the (c,c) subset)."
        ),
    )
)

_register(
    Experiment(
        id="ablation-sdc",
        title="SDC optimisation ablation (Section 5.3)",
        paper_ref="Section 5.3 (results discussed in text)",
        make_config=lambda n: WorkloadConfig.default(data_size=n),
        lineup=_lineup(
            ("SDC-full", "sdc", {}, "default"),
            ("SDC-no-restrict", "sdc", {"restrict_categories": False}, "default"),
            ("SDC-no-mfirst", "sdc", {"optimize_comparisons": False}, "default"),
            ("SDC-no-progressive", "sdc", {"progressive_output": False}, "default"),
        ),
        paper_notes=(
            "Optimising dominance comparisons (m-dominance first) has the "
            "largest impact -- up to 18x; restricting categories is "
            "marginal; the progressive check only buys progressiveness."
        ),
    )
)

_register(
    Experiment(
        id="sdc-minpc-maxpc",
        title="MinPC/MaxPC applied to SDC (discussed, not plotted)",
        paper_ref="Section 5.3, Fig. 12(c) discussion",
        make_config=lambda n: WorkloadConfig.default(data_size=n),
        lineup=_lineup(
            ("SDC", "sdc", {}, "default"),
            ("SDC-MaxPC", "sdc", {}, "maxpc"),
            ("SDC-MinPC", "sdc", {}, "minpc"),
        ),
        paper_notes="Impact of optimised classification on SDC is minor.",
    )
)
