"""Scaling sweeps: one experiment, several data sizes.

Complements Fig. 12(a) (a single 2x step) with a multi-point scaling
study: the same experiment is run at a geometric ladder of record counts
and each algorithm's dominance-check totals and milestone series are
collected, so growth exponents can be eyeballed (or asserted) directly.
All counts are deterministic, so sweeps are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.experiments import Experiment, get_experiment
from repro.bench.harness import AlgorithmRun, run_progressive
from repro.transform.dataset import TransformedDataset
from repro.workloads.generator import generate_workload

__all__ = ["SweepPoint", "run_sweep", "format_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Results of one experiment at one data size."""

    data_size: int
    skyline_size: int
    runs: dict[str, AlgorithmRun]

    def checks(self, label: str) -> int:
        """Total dominance checks of one curve at this size."""
        delta = self.runs[label].final_delta
        return (
            delta.get("m_dominance_point", 0)
            + delta.get("native_set", 0)
            + delta.get("native_numeric", 0)
        )


def run_sweep(
    experiment: Experiment | str,
    sizes: list[int],
    labels: list[str] | None = None,
) -> list[SweepPoint]:
    """Run ``experiment`` at each size; returns one point per size."""
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    points: list[SweepPoint] = []
    for size in sizes:
        config = experiment.config(size)
        workload = generate_workload(config)
        datasets: dict[str, TransformedDataset] = {}
        runs: dict[str, AlgorithmRun] = {}
        for spec in experiment.lineup:
            if labels is not None and spec.label not in labels:
                continue
            dataset = datasets.get(spec.strategy)
            if dataset is None:
                dataset = TransformedDataset(
                    workload.schema, workload.records, strategy=spec.strategy
                )
                datasets[spec.strategy] = dataset
            runs[spec.label] = run_progressive(
                dataset, spec.algorithm, **spec.options
            )
        reference = next(iter(runs.values()))
        for label, run in runs.items():
            assert run.rids == reference.rids, f"{label} disagrees at n={size}"
        points.append(
            SweepPoint(config.data_size, reference.skyline_size, runs)
        )
    return points


def format_sweep(points: list[SweepPoint]) -> str:
    """Tabulate check totals per algorithm across the sweep sizes."""
    if not points:
        return "(empty sweep)"
    labels = list(points[0].runs)
    header = f"{'n':>8} {'skyline':>8} " + " ".join(f"{l:>12}" for l in labels)
    lines = [header, "-" * len(header)]
    for point in points:
        cells = [f"{point.data_size:8d}", f"{point.skyline_size:8d}"]
        cells += [f"{point.checks(label):12d}" for label in labels]
        lines.append(" ".join(cells))
    return "\n".join(lines)
