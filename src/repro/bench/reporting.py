"""Plain-text reports matching the paper's figure axes.

:func:`format_run_table` prints, per algorithm, the time (and comparison
count) needed to output the first answer and each 20% slice of the
answers -- the exact series plotted in Figs. 10-12.  :func:`format_summary`
prints the dataset statistics the paper quotes in prose (skyline size,
false positives, category distribution, stratum count).
"""

from __future__ import annotations

from repro.bench.harness import FRACTIONS, AlgorithmRun

__all__ = [
    "format_run_table",
    "format_summary",
    "format_milestone_header",
    "emission_timeline",
    "format_timelines",
    "ascii_scatter",
]


def format_milestone_header() -> str:
    """Column header for milestone tables."""
    cells = ["algorithm".ljust(18), "first".rjust(9)]
    cells += [f"{int(f * 100)}%".rjust(9) for f in FRACTIONS]
    cells += ["answers".rjust(8), "checks".rjust(12), "set-cmps".rjust(10)]
    return " ".join(cells)


def _format_row(label: str, run: AlgorithmRun, metric: str) -> str:
    milestones = run.milestones()
    cells = [label.ljust(18)]
    if not milestones:
        cells.append("(no answers)")
        return " ".join(cells)
    for m in milestones:
        if metric == "time":
            cells.append(f"{m.elapsed * 1000:8.1f}m")
        else:
            cells.append(f"{m.dominance_checks:9d}")
    final = run.final_delta
    checks = (
        final.get("m_dominance_point", 0)
        + final.get("native_set", 0)
        + final.get("native_numeric", 0)
    )
    cells.append(f"{run.skyline_size:8d}")
    cells.append(f"{checks:12d}")
    cells.append(f"{final.get('native_set', 0):10d}")
    return " ".join(cells)


def format_run_table(
    runs: dict[str, AlgorithmRun], metric: str = "time", title: str | None = None
) -> str:
    """Milestone table over several runs.

    ``metric`` is ``"time"`` (milliseconds, the figures' y-axis) or
    ``"checks"`` (cumulative dominance checks, the deterministic proxy).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(format_milestone_header())
    lines.append("-" * len(lines[-1]))
    for label, run in runs.items():
        lines.append(_format_row(label, run, metric))
    return "\n".join(lines)


def ascii_scatter(
    points: list[tuple[float, float]],
    highlight: set | None = None,
    width: int = 60,
    height: int = 20,
) -> str:
    """ASCII scatter of 2-D points with an optional highlighted subset.

    ``highlight`` holds the indices of points drawn as ``*`` (e.g. the
    skyline); everything else renders as ``.``.  The vertical axis grows
    downward so the "good" corner (small x, small y in minimisation
    space) sits top-left, where skyline points cluster.
    """
    if not points:
        return "(no points)"
    highlight = highlight or set()
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (x, y) in enumerate(points):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        if index in highlight:
            grid[row][col] = "*"
        elif grid[row][col] != "*":
            grid[row][col] = "."
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}"


def emission_timeline(run: AlgorithmRun, buckets: int = 40) -> str:
    """ASCII density of answer emissions over the run's wall-clock span.

    Each column covers ``1/buckets`` of the run; darker characters mean
    more answers emitted in that slice.  Progressive algorithms light up
    on the left, blocking ones only in the final column.
    """
    if not run.emissions or run.total_elapsed <= 0:
        return "(no answers)"
    histogram = [0] * buckets
    for elapsed, _ in run.emissions:
        index = min(buckets - 1, int(elapsed / run.total_elapsed * buckets))
        histogram[index] += 1
    peak = max(histogram)
    shades = " .:*#"
    return "".join(
        shades[min(4, (4 * count + peak - 1) // peak) if count else 0]
        for count in histogram
    )


def format_timelines(runs: dict[str, AlgorithmRun], buckets: int = 40) -> str:
    """One emission timeline row per run."""
    lines = [f"emission timelines (each column = 1/{buckets} of the run):"]
    for label, run in runs.items():
        lines.append(f"  {label:18} |{emission_timeline(run, buckets)}|")
    return "\n".join(lines)


def format_summary(result) -> str:
    """Dataset statistics block for one experiment result."""
    counts = ", ".join(
        f"{cat}:{n}" for cat, n in sorted(result.category_counts.items(), key=lambda kv: str(kv[0]))
    )
    lines = [
        f"experiment      {result.experiment.id} ({result.experiment.paper_ref})",
        f"title           {result.experiment.title}",
        f"data size       {result.data_size}",
        f"skyline points  {result.skyline_size}",
        f"false positives {result.false_positives}",
        f"categories      {counts}",
        f"strata (SDC+)   {result.num_strata}",
        f"paper notes     {result.experiment.paper_notes}",
    ]
    return "\n".join(lines)
