"""Benchmark harness reproducing the paper's performance study.

* :mod:`repro.bench.harness` -- progressive runs: per-answer timestamps
  and comparison-count snapshots, milestone extraction (first answer,
  20/40/60/80/100%), false-positive counting.
* :mod:`repro.bench.experiments` -- one named experiment per table/figure
  of Section 5, mapping figure ids to workload configs and algorithm
  line-ups.
* :mod:`repro.bench.reporting` -- plain-text tables matching the figures'
  axes (time/comparisons to reach each output percentage).
"""

from repro.bench.harness import (
    AlgorithmRun,
    Milestone,
    count_false_positives,
    prepare_dataset,
    run_progressive,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    get_experiment,
    run_experiment,
)
from repro.bench.reporting import format_run_table, format_summary
from repro.bench.costmodel import BufferPool, CostModel
from repro.bench.sweep import SweepPoint, format_sweep, run_sweep

__all__ = [
    "BufferPool",
    "CostModel",
    "SweepPoint",
    "run_sweep",
    "format_sweep",
    "AlgorithmRun",
    "Milestone",
    "run_progressive",
    "prepare_dataset",
    "count_false_positives",
    "Experiment",
    "ExperimentResult",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "format_run_table",
    "format_summary",
]
