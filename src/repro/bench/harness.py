"""Progressive-run instrumentation.

The paper's figures plot *time to output X% of the answers* per
algorithm.  :func:`run_progressive` executes one algorithm over one
dataset, stamping every emitted answer with the elapsed wall-clock time
and a delta of the shared :class:`~repro.core.stats.ComparisonStats`;
:class:`AlgorithmRun` then extracts the milestone series (first answer,
20/40/60/80/100%).  Comparison counts are the machine-independent proxy
used for assertions, wall time for the human-readable tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.algorithms.base import SkylineAlgorithm, get_algorithm
from repro.algorithms.bnl import bnl_passes
from repro.core.stats import ComparisonStats
from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = [
    "Milestone",
    "AlgorithmRun",
    "run_progressive",
    "prepare_dataset",
    "count_false_positives",
]

#: Output fractions reported by the paper's figures.
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class Milestone:
    """State of a run at the moment one answer fraction was reached."""

    fraction: float
    answers: int
    elapsed: float
    dominance_checks: int
    native_set: int
    m_dominance: int
    node_accesses: int


class AlgorithmRun:
    """Result of one instrumented algorithm execution."""

    def __init__(
        self,
        algorithm: str,
        points: list[Point],
        emissions: list[tuple[float, dict[str, int]]],
        total_elapsed: float,
        final_delta: dict[str, int],
    ) -> None:
        self.algorithm = algorithm
        self.points = points
        self.emissions = emissions
        self.total_elapsed = total_elapsed
        self.final_delta = final_delta

    # ------------------------------------------------------------------
    @property
    def skyline_size(self) -> int:
        """Number of skyline answers produced."""
        return len(self.points)

    @property
    def rids(self) -> list:
        """Sorted record ids of the skyline (for cross-checking)."""
        return sorted(p.record.rid for p in self.points)

    def _milestone_at(self, index: int, fraction: float) -> Milestone:
        elapsed, delta = self.emissions[index]
        return Milestone(
            fraction=fraction,
            answers=index + 1,
            elapsed=elapsed,
            dominance_checks=(
                delta.get("m_dominance_point", 0)
                + delta.get("native_set", 0)
                + delta.get("native_numeric", 0)
            ),
            native_set=delta.get("native_set", 0),
            m_dominance=delta.get("m_dominance_point", 0),
            node_accesses=delta.get("node_accesses", 0),
        )

    def first_answer(self) -> Milestone | None:
        """Milestone of the very first emitted answer."""
        if not self.emissions:
            return None
        return self._milestone_at(0, 0.0)

    def milestones(self, fractions: tuple[float, ...] = FRACTIONS) -> list[Milestone]:
        """Milestones at the requested output fractions (first included)."""
        out: list[Milestone] = []
        first = self.first_answer()
        if first is None:
            return out
        out.append(first)
        n = len(self.emissions)
        for fraction in fractions:
            index = max(1, min(n, round(fraction * n))) - 1
            out.append(self._milestone_at(index, fraction))
        return out

    def progressiveness(self) -> float:
        """Mean fraction of total time spent per answer (lower = more
        progressive): the normalised area under the emission curve."""
        if not self.emissions or self.total_elapsed <= 0:
            return 0.0
        return sum(e for e, _ in self.emissions) / (
            len(self.emissions) * self.total_elapsed
        )


def prepare_dataset(dataset: TransformedDataset, algorithm: SkylineAlgorithm) -> None:
    """Force offline structures (index / strata trees) to exist.

    The paper's timings exclude index construction -- the R-trees are
    built offline.  Building here keeps the measured run pure.  The batch
    backend's relation memo is likewise an offline structure, so it is
    warmed here too.
    """
    kernel = dataset.kernel
    if getattr(kernel, "is_batch", False):
        kernel.warm()
    if not algorithm.uses_index:
        return
    if algorithm.name == "sdc+":
        for stratum in dataset.stratification:
            stratum.tree  # noqa: B018 - build side effect
    else:
        dataset.index  # noqa: B018 - build side effect


def run_progressive(
    dataset: TransformedDataset,
    algorithm: str | SkylineAlgorithm,
    prepare: bool = True,
    **options,
) -> AlgorithmRun:
    """Execute ``algorithm`` on ``dataset`` with per-answer instrumentation."""
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm, **options)
    elif options:
        raise AlgorithmError("pass options only with an algorithm name")
    if prepare:
        prepare_dataset(dataset, algorithm)
    stats = dataset.stats
    start_snapshot = stats.snapshot()
    points: list[Point] = []
    emissions: list[tuple[float, dict[str, int]]] = []
    start = time.perf_counter()
    for point in algorithm.run(dataset):
        points.append(point)
        emissions.append((time.perf_counter() - start, stats.diff(start_snapshot)))
    total_elapsed = time.perf_counter() - start
    return AlgorithmRun(
        algorithm.name, points, emissions, total_elapsed, stats.diff(start_snapshot)
    )


def count_false_positives(dataset: TransformedDataset) -> tuple[int, int]:
    """``(skyline_size, false_positives)`` of a dataset.

    False positives are the points that survive m-dominance (the skyline
    of the *transformed* space) but are dominated in the original
    domains -- the quantity the paper reports per experiment (e.g. "662
    skyline points and 561 false positives").  Uses a throwaway counter
    bundle so measured runs are unaffected.
    """
    scratch = ComparisonStats()
    kernel = dataset.kernel
    saved = kernel.stats
    kernel.stats = scratch
    try:
        transformed = list(
            bnl_passes(dataset.points, kernel.m_dominates, 10**9, scratch)
        )
        true = list(
            bnl_passes(transformed, kernel.native_dominates, 10**9, scratch)
        )
    finally:
        kernel.stats = saved
    return len(true), len(transformed) - len(true)
