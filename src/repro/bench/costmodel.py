"""Disk/CPU cost model bridging the in-memory substrate to the paper's
2005-era testbed (see the substitution table in DESIGN.md).

The paper ran C code against disk-resident R*-trees (4K pages) on a
Pentium 4 with 256MB of RAM; our substrate is in-memory Python, which
flattens the ratio between an original-domain set comparison and a
two-integer m-dominance comparison and makes I/O free.  This module
restores those ratios *as an explicit, inspectable model*:

* :class:`BufferPool` -- an LRU page cache attached to the R-trees; node
  accesses are classified into hits and misses
  (``ComparisonStats.page_misses``).
* :class:`CostModel` -- converts a counter delta into estimated
  milliseconds: random page reads for buffer misses, sequential page
  reads for scan-based input passes (``tuples_scanned``), and per-type
  CPU costs for comparisons, with defaults chosen for ~2005 commodity
  hardware (10 ms random I/O, 0.05 ms sequential page, integer compares
  ~0.2 µs, set comparisons an order of magnitude more).

The model is used by the ``io-costmodel`` benchmark to show that the
paper's BNL+ > BNL ordering on the default workload -- which pure-Python
wall-clock does not reproduce -- re-emerges as soon as set comparisons
cost ~10x an integer comparison, with everything else measured, not
assumed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import ReproError

__all__ = ["BufferPool", "CostModel"]


class BufferPool:
    """LRU cache of R-tree nodes (pages).

    ``capacity`` is in pages; an access returns ``True`` on hit.  One
    pool may be shared by several trees (e.g. all SDC+ stratum trees),
    mirroring a DBMS buffer shared across one query's indexes.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ReproError("buffer pool capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._pages: OrderedDict[int, None] = OrderedDict()
        # One pool may be shared by the concurrent serving layer's
        # per-query tree views (mirroring a DBMS buffer shared across
        # queries); the lock keeps the LRU structure and hit/miss
        # counters consistent under that sharing.
        self._lock = threading.Lock()

    def access(self, node: object) -> bool:
        """Touch a page; returns ``True`` when it was resident."""
        key = id(node)
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                self.hits += 1
                return True
            self.misses += 1
            self._pages[key] = None
            if len(self._pages) > self.capacity:
                self._pages.popitem(last=False)
            return False

    def clear(self) -> None:
        """Empty the pool (cold-start the next run)."""
        with self._lock:
            self._pages.clear()
            self.hits = 0
            self.misses = 0

    @property
    def resident(self) -> int:
        """Pages currently cached."""
        return len(self._pages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BufferPool(capacity={self.capacity}, resident={self.resident})"


@dataclass(frozen=True)
class CostModel:
    """Weighted cost translation of a :class:`ComparisonStats` delta.

    All times in milliseconds.  The defaults sketch 2005 commodity
    hardware; every weight is a constructor argument so sensitivity
    studies are one call away.
    """

    #: Random 4K page read (disk seek + rotation), per buffer miss.
    random_page_ms: float = 10.0
    #: Sequential 4K page read, charged to scan-based input passes.
    sequential_page_ms: float = 0.05
    #: Records per 4K page for the sequential-scan translation.
    tuples_per_page: int = 64
    #: One m-dominance / numeric comparison (a handful of int compares).
    m_compare_ms: float = 0.0002
    #: One original-domain set comparison (variable-length set walk).
    set_compare_ms: float = 0.002
    #: One compressed-closure probe (binary search over few intervals).
    closure_compare_ms: float = 0.0004

    def io_cost(self, delta: dict[str, int]) -> float:
        """Estimated I/O milliseconds of a counter delta."""
        random_io = delta.get("page_misses", 0) * self.random_page_ms
        pages = delta.get("tuples_scanned", 0) / self.tuples_per_page
        return random_io + pages * self.sequential_page_ms

    def cpu_cost(self, delta: dict[str, int]) -> float:
        """Estimated CPU milliseconds of a counter delta."""
        cheap = (
            delta.get("m_dominance_point", 0)
            + delta.get("m_dominance_mbr", 0)
            + delta.get("native_numeric", 0)
        )
        return (
            cheap * self.m_compare_ms
            + delta.get("native_set", 0) * self.set_compare_ms
            + delta.get("native_closure", 0) * self.closure_compare_ms
        )

    def total_cost(self, delta: dict[str, int]) -> float:
        """I/O + CPU estimate in milliseconds."""
        return self.io_cost(delta) + self.cpu_cost(delta)
