"""Deterministic benchmark artifacts: one canonical JSON form.

Committed benchmark outputs (``benchmarks/results/*.json``) are diffed
across runs and across machines, so every writer funnels through
:func:`write_artifact`: keys sorted, floats rounded to a pinned
precision (via :func:`canonical`), tuples coerced to lists, a trailing
newline, UTF-8.  Two runs that measured the same thing then produce
byte-identical files, and a changed byte always means a changed
measurement -- not dict ordering or float repr jitter.

Measured *timings* still vary run to run; determinism here is about the
encoding, not the clock.  Fields that must be stable across runs
(counters, configuration echoes, schedules derived from seeds) are.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path

__all__ = ["canonical", "dumps_artifact", "write_artifact"]

#: Decimal places floats are rounded to in committed artifacts.
FLOAT_PLACES = 6


def canonical(obj, places: int = FLOAT_PLACES):
    """Recursively normalize ``obj`` for deterministic JSON encoding.

    Floats are rounded to ``places`` decimals (non-finite values become
    ``None`` -- JSON has no representation for them and ``nan`` never
    round-trips equal); tuples/sets become sorted-where-unordered lists;
    dict keys are coerced to strings.  Integers and bools pass through
    untouched.
    """
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            return None
        rounded = round(obj, places)
        # Avoid "-0.0" vs "0.0" diffs.
        return rounded + 0.0
    if isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): canonical(v, places) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v, places) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical(v, places) for v in obj)
    return str(obj)


def dumps_artifact(obj, places: int = FLOAT_PLACES) -> str:
    """The canonical JSON text for ``obj`` (sorted keys, newline-terminated)."""
    return json.dumps(canonical(obj, places), indent=2, sort_keys=True) + "\n"


def write_artifact(path, obj, places: int = FLOAT_PLACES) -> Path:
    """Atomically write ``obj`` to ``path`` in canonical form.

    The text goes to a temp file in the target directory, is flushed
    and fsynced, then published with ``os.replace`` -- an interrupted
    bench run (or a crash mid-write) leaves either the previous
    artifact or the new one under ``path``, never a torn JSON.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(dumps_artifact(obj, places))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target
