"""k-skyband queries over partially-ordered domains.

The *k-skyband* of a relation is the set of records dominated by fewer
than ``k`` other records; the skyline is exactly the 1-skyband.  Two
evaluators are provided:

* :func:`k_skyband_nested_loops` -- exact pairwise counting with early
  termination at ``k`` dominators (the BNL-style baseline);
* :func:`k_skyband_bbs` -- an index-accelerated evaluator in the spirit
  of the BBS skyband extension, adapted to the transformed space: an
  R-tree entry is pruned once ``k`` already-found candidates m-dominate
  it, and the surviving candidates are post-filtered by exact native
  dominator counting.

Correctness of the index pruning with false positives: m-dominance
implies native dominance, so a pruned entry's points each have at least
``k`` true dominators and cannot belong to the skyband.  The candidate
set therefore contains the whole k-skyband.  Counting dominators *within
the candidate set* is also sufficient: if a record has ``t >= k``
dominators overall, the first ``k`` elements of any linear extension of
its dominator set each have fewer than ``k`` dominators themselves
(their dominators are dominators of the record too), hence belong to the
k-skyband and thus to the candidate set.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.bbs import traverse
from repro.exceptions import AlgorithmError
from repro.rtree.node import Node
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["k_skyband", "k_skyband_nested_loops", "k_skyband_bbs"]


def _exact_filter(
    dataset: TransformedDataset, candidates: Iterable[Point], k: int
) -> list[Point]:
    """Keep candidates with fewer than ``k`` native dominators among
    ``candidates`` (sufficient per the module docstring)."""
    kernel = dataset.kernel
    pool = list(candidates)
    out: list[Point] = []
    for p in pool:
        count = 0
        for q in pool:
            if q is p:
                continue
            if kernel.native_dominates(q, p):
                count += 1
                if count >= k:
                    break
        if count < k:
            out.append(p)
    return out


def k_skyband_nested_loops(dataset: TransformedDataset, k: int) -> list[Point]:
    """Exact k-skyband by pairwise native dominator counting."""
    if k < 1:
        raise AlgorithmError("k must be at least 1")
    return _exact_filter(dataset, dataset.points, k)


def k_skyband_bbs(dataset: TransformedDataset, k: int) -> list[Point]:
    """Index-accelerated k-skyband over the transformed space."""
    if k < 1:
        raise AlgorithmError("k must be at least 1")
    kernel = dataset.kernel
    candidates: list[Point] = []

    # `candidates` stays key-sorted (ascending pop order), so counting
    # scans stop once keys reach the probe's bound.
    def node_pruned(node: Node) -> bool:
        mins = node.mins
        bound = node.min_key
        count = 0
        for p in candidates:
            if p.key >= bound:
                break
            if kernel.m_dominates_mins(p, mins):
                count += 1
                if count >= k:
                    return True
        return False

    def point_pruned(point: Point) -> bool:
        bound = point.key
        count = 0
        for p in candidates:
            if p.key >= bound:
                break
            if kernel.m_dominates(p, point):
                count += 1
                if count >= k:
                    return True
        return False

    for e in traverse(
        dataset.index, dataset.stats, node_pruned, point_pruned, dataset.context
    ):
        if not point_pruned(e):
            candidates.append(e)

    return _exact_filter(dataset, candidates, k)


def k_skyband(
    dataset: TransformedDataset, k: int, method: str = "bbs"
) -> list[Point]:
    """Dispatch: ``method`` is ``"bbs"`` (indexed) or ``"nested-loops"``."""
    if method == "bbs":
        return k_skyband_bbs(dataset, k)
    if method in ("nested-loops", "nl"):
        return k_skyband_nested_loops(dataset, k)
    raise AlgorithmError(f"unknown skyband method {method!r}")
