"""Incremental skyline maintenance under record churn.

The paper's future work asks for "efficient methods to update the domain
mappings and indexes when the data points are modified";
:class:`MaintainedSkyline` completes the picture at the *result* level:
it keeps the current skyline answer set up to date as records are
inserted and deleted, without recomputing from scratch on every change.

* **insert(r)** -- ``O(|S|)`` native comparisons: if any skyline member
  dominates ``r`` the answer is unchanged; otherwise ``r`` joins the
  skyline and evicts the members it dominates.  (A non-skyline insert
  can never affect other answers.)
* **delete(rid)** -- free for non-skyline records.  Deleting a skyline
  member ``r`` can promote records that only ``r`` dominated: the
  replacement candidates are exactly the non-skyline records dominated
  by ``r`` and by no *remaining* skyline member, and the new answers are
  the skyline of that candidate set.

The point-level transition functions :func:`apply_insert` /
:func:`apply_delete` are exposed separately so other consumers of
already-transformed update events -- most importantly the materialized
views of :mod:`repro.views`, which observe committed
``insert_record``/``delete_record`` via dataset update listeners -- run
exactly the same incremental maintenance without driving the dataset
mutation themselves.

The maintained set is verified against recomputation by randomised churn
tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.record import Record
from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["MaintainedSkyline", "apply_insert", "apply_delete"]


def apply_insert(skyline: dict, point: Point, kernel) -> bool:
    """Fold one inserted ``point`` into a ``{rid: point}`` skyline map.

    ``O(|S|)`` native comparisons; returns ``True`` when the skyline
    changed (the point joined, possibly evicting dominated members).
    """
    for member in skyline.values():
        if kernel.native_dominates(member, point):
            return False
    evicted = [
        rid
        for rid, member in skyline.items()
        if kernel.native_dominates(point, member)
    ]
    for rid in evicted:
        del skyline[rid]
    skyline[point.record.rid] = point
    return True


def apply_delete(
    skyline: dict, point: Point, remaining: Iterable[Point], kernel
) -> bool:
    """Fold one deleted ``point`` into a ``{rid: point}`` skyline map.

    ``remaining`` is the post-delete point population (the deleted point
    must already be absent from it).  Deleting a non-member changes
    nothing; deleting a member promotes the records only it was
    shielding.  Returns ``True`` when the skyline changed.
    """
    victim = skyline.pop(point.record.rid, None)
    if victim is None:
        return False  # non-skyline records shield nothing
    survivors = list(skyline.values())
    candidates: list[Point] = []
    for p in remaining:
        if p.record.rid in skyline:
            continue
        if not kernel.native_dominates(victim, p):
            continue  # was not shielded by the victim
        if any(kernel.native_dominates(s, p) for s in survivors):
            continue  # still shielded by a remaining member
        candidates.append(p)
    # New answers are the skyline of the candidate set itself.
    for p in candidates:
        if not any(
            q is not p and kernel.native_dominates(q, p) for q in candidates
        ):
            skyline[p.record.rid] = p
    return True


class MaintainedSkyline:
    """A live skyline over a :class:`TransformedDataset`.

    Wraps the dataset's own update methods, so indexes and strata stay
    consistent too; reads (:attr:`skyline`, :meth:`records`) are O(1).
    """

    def __init__(self, dataset: TransformedDataset, algorithm: str = "sdc+") -> None:
        from repro.algorithms.base import get_algorithm

        self.dataset = dataset
        self._skyline: dict = {
            p.record.rid: p
            for p in get_algorithm(algorithm).run(dataset)
        }

    # ------------------------------------------------------------------
    @property
    def skyline(self) -> list[Point]:
        """Current skyline points (insertion order)."""
        return list(self._skyline.values())

    def records(self) -> list[Record]:
        """Current skyline records."""
        return [p.record for p in self._skyline.values()]

    def __len__(self) -> int:
        return len(self._skyline)

    def __contains__(self, rid) -> bool:
        return rid in self._skyline

    # ------------------------------------------------------------------
    def insert(self, record: Record) -> bool:
        """Add a record; returns ``True`` when the skyline changed."""
        if record.rid in self._skyline or any(
            p.record.rid == record.rid for p in self.dataset.points
        ):
            raise AlgorithmError(f"record id {record.rid!r} already present")
        point = self.dataset.insert_record(record)
        return apply_insert(self._skyline, point, self.dataset.kernel)

    def delete(self, rid) -> bool:
        """Remove a record; returns ``True`` when the skyline changed."""
        point = next(
            (p for p in self.dataset.points if p.record.rid == rid), None
        )
        if point is None:
            raise AlgorithmError(f"no record with id {rid!r}")
        self.dataset.delete_record(rid)
        return apply_delete(
            self._skyline, point, self.dataset.points, self.dataset.kernel
        )

    # ------------------------------------------------------------------
    def apply(self, inserts: Iterable[Record] = (), deletes: Iterable = ()) -> int:
        """Batch update; returns how many operations changed the skyline."""
        changed = 0
        for rid in deletes:
            changed += bool(self.delete(rid))
        for record in inserts:
            changed += bool(self.insert(record))
        return changed

    def verify(self) -> bool:
        """Cross-check against a from-scratch recomputation (test hook)."""
        from repro.algorithms.base import get_algorithm

        fresh = sorted(
            (p.record.rid for p in get_algorithm("bnl").run(self.dataset)),
            key=repr,
        )
        return fresh == sorted(self._skyline, key=repr)
