"""Subspace skylines and the skycube.

A *subspace skyline* evaluates the skyline over a subset of the schema's
attributes -- the natural "what if I only care about price and amenities"
companion of the full query, and another member of the skyline-related
family the paper's future work points at.  The *skycube* materialises the
skylines of **all** non-empty attribute subsets.

Projection notes:

* projecting drops attributes wholesale; dominance in the subspace is
  dominance under the projected schema (records equal on the subspace
  become duplicates and are all returned when non-dominated, consistent
  with the full-space evaluators);
* each subspace gets its own
  :class:`~repro.transform.dataset.TransformedDataset`, so index-based
  algorithms work unchanged; the default evaluator is ``bnl`` since a
  skycube over a ``d``-attribute schema builds ``2^d - 1`` subspaces.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.base import get_algorithm
from repro.core.record import Record
from repro.core.schema import Schema
from repro.exceptions import SchemaError
from repro.transform.dataset import TransformedDataset

__all__ = ["project_dataset", "subspace_skyline", "skycube"]


def project_dataset(
    dataset: TransformedDataset, attributes: Sequence[str]
) -> TransformedDataset:
    """A new dataset over only the named attributes (original order)."""
    if not attributes:
        raise SchemaError("a subspace needs at least one attribute")
    wanted = set(attributes)
    unknown = wanted - {a.name for a in dataset.schema.attributes}
    if unknown:
        raise SchemaError(f"unknown attributes in subspace: {sorted(unknown)}")

    kept = [a for a in dataset.schema.attributes if a.name in wanted]
    schema = Schema(kept)
    total_idx = [
        k
        for k, attr in enumerate(dataset.schema.total_attrs)
        if attr.name in wanted
    ]
    partial_idx = [
        k
        for k, attr in enumerate(dataset.schema.partial_attrs)
        if attr.name in wanted
    ]
    records = [
        Record(
            r.rid,
            tuple(r.totals[k] for k in total_idx),
            tuple(r.partials[k] for k in partial_idx),
            payload=r.payload,
        )
        for r in dataset.records
    ]
    return TransformedDataset(
        schema,
        records,
        strategy=dataset.strategy,
        stats=dataset.stats,
        max_entries=dataset.max_entries,
        bulk_load=dataset.bulk_load,
        native_mode=dataset.native_mode,
    )


def subspace_skyline(
    dataset: TransformedDataset,
    attributes: Sequence[str],
    algorithm: str = "bnl",
    **options,
) -> list[Record]:
    """Skyline over ``attributes`` only; returns the *original* records."""
    projected = project_dataset(dataset, attributes)
    by_rid = {r.rid: r for r in dataset.records}
    return [
        by_rid[p.record.rid]
        for p in get_algorithm(algorithm, **options).run(projected)
    ]


def skycube(
    dataset: TransformedDataset,
    algorithm: str = "bnl",
    max_attributes: int = 6,
    **options,
) -> dict[frozenset, list]:
    """Record-id skylines of every non-empty attribute subset.

    ``max_attributes`` guards against accidental 2^d blow-ups on wide
    schemas.
    """
    names = [a.name for a in dataset.schema.attributes]
    if len(names) > max_attributes:
        raise SchemaError(
            f"schema has {len(names)} attributes; a skycube would build "
            f"{2 ** len(names) - 1} subspaces (raise max_attributes to force)"
        )
    cube: dict[frozenset, list] = {}
    for mask in range(1, 1 << len(names)):
        subset = [names[i] for i in range(len(names)) if mask >> i & 1]
        answers = subspace_skyline(dataset, subset, algorithm, **options)
        cube[frozenset(subset)] = sorted(
            (r.rid for r in answers), key=lambda rid: (str(type(rid)), str(rid))
        )
    return cube
