"""Top-k dominating queries over partially-ordered domains.

Returns the ``k`` records that dominate the most other records -- a
ranking cousin of the skyline (the best record by dominance count need
not be a skyline member in general orders, though with our strict
dominance it cannot be dominated by a record with an equal count...
no such guarantee is assumed here; counts are computed exactly).

Counting uses a cheap m-dominance lower bound first: m-dominance implies
native dominance, so only the pairs where the two verdicts can differ --
partially covering dominator and partially covered target (Lemma 4.2) --
need the expensive original-domain comparison.
"""

from __future__ import annotations

from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["top_k_dominating", "dominance_counts"]


def dominance_counts(dataset: TransformedDataset) -> dict:
    """Exact map ``rid -> number of records it dominates``."""
    kernel = dataset.kernel
    points = dataset.points
    counts: dict = {p.record.rid: 0 for p in points}
    for p in points:
        p_covering = p.category.completely_covering
        for q in points:
            if p is q:
                continue
            if kernel.m_dominates(p, q):
                counts[p.record.rid] += 1
            elif not p_covering and not q.category.completely_covered:
                # Lemma 4.2 leaves room for native-only dominance.
                if kernel.native_dominates(p, q):
                    counts[p.record.rid] += 1
    return counts


def top_k_dominating(dataset: TransformedDataset, k: int) -> list[tuple[Point, int]]:
    """The ``k`` records with the highest dominance counts.

    Returns ``(point, count)`` pairs sorted by descending count (ties
    broken by record id order of first appearance).
    """
    if k < 1:
        raise AlgorithmError("k must be at least 1")
    counts = dominance_counts(dataset)
    order = sorted(
        dataset.points, key=lambda p: counts[p.record.rid], reverse=True
    )
    return [(p, counts[p.record.rid]) for p in order[:k]]
