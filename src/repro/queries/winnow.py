"""The winnow operator: "best matches" under arbitrary preferences.

Section 2 of the paper situates skylines inside the qualitative
preference-query frameworks (Chomicki's *winnow* operator, Kießling's
Pareto preferences, Torlone/Ciaccia's *Best* operator): the skyline is
winnow under the Pareto dominance relation.  This module provides the
general operator for **any user-supplied strict partial order** over
records, evaluated BNL-style, so schema dominance, weighted preferences,
lexicographic rules or hand-written business preferences all share one
evaluator.

The preference must be a strict partial order (irreflexive, transitive);
:func:`check_preference` spot-verifies those laws on a sample and the
evaluator can do so automatically via ``validate=True``.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.record import Record
from repro.exceptions import AlgorithmError

__all__ = ["winnow", "check_preference", "pareto_preference", "lexicographic_preference"]

Preference = Callable[[Record, Record], bool]


def winnow(
    records: Sequence[Record],
    prefers: Preference,
    validate: bool = False,
) -> list[Record]:
    """Records not strictly worse than any other under ``prefers``.

    ``prefers(a, b)`` is ``True`` when ``a`` is strictly better than
    ``b``.  With ``validate=True`` the preference's partial-order laws
    are spot-checked on a sample first.
    """
    if validate:
        check_preference(records, prefers)
    window: list[Record] = []
    for r in records:
        beaten = False
        i = 0
        while i < len(window):
            w = window[i]
            if prefers(w, r):
                beaten = True
                break
            if prefers(r, w):
                window[i] = window[-1]
                window.pop()
                continue
            i += 1
        if not beaten:
            window.append(r)
    # Preserve input order in the answer.
    kept = {id(r) for r in window}
    return [r for r in records if id(r) in kept]


def check_preference(
    records: Sequence[Record],
    prefers: Preference,
    sample_size: int = 25,
    seed: int = 0,
) -> None:
    """Spot-check irreflexivity, asymmetry and transitivity.

    Raises :class:`AlgorithmError` on the first violation found in a
    random sample (a sound preference passes vacuously).
    """
    if not records:
        return
    rng = random.Random(seed)
    sample = [rng.choice(records) for _ in range(min(sample_size, 3 * len(records)))]
    for a in sample:
        if prefers(a, a):
            raise AlgorithmError(f"preference is not irreflexive at {a.rid!r}")
    for a in sample:
        for b in sample:
            if a is b:
                continue
            if prefers(a, b) and prefers(b, a):
                raise AlgorithmError(
                    f"preference is not asymmetric on ({a.rid!r}, {b.rid!r})"
                )
    for a in sample[:8]:
        for b in sample[:8]:
            for c in sample[:8]:
                if prefers(a, b) and prefers(b, c) and not prefers(a, c):
                    raise AlgorithmError(
                        "preference is not transitive on "
                        f"({a.rid!r}, {b.rid!r}, {c.rid!r})"
                    )


def pareto_preference(schema) -> Preference:
    """The schema's native dominance as a winnow preference.

    ``winnow(records, pareto_preference(schema))`` equals the skyline.
    """
    from repro.reference import reference_dominates

    def prefers(a: Record, b: Record) -> bool:
        return reference_dominates(schema, a, b)

    return prefers


def lexicographic_preference(schema, order: Sequence[str]) -> Preference:
    """Strict lexicographic preference over totally-ordered attributes.

    ``order`` names numeric attributes most-significant first; ties on a
    prefix are broken by the next attribute, records equal on all listed
    attributes are incomparable (not preferred either way).
    """
    indices = []
    for name in order:
        attr = schema.attribute(name)
        if attr.kind.value != "total":
            raise AlgorithmError(
                f"lexicographic preference needs numeric attributes, got {name!r}"
            )
        indices.append((schema.total_attrs.index(attr), attr.sign))

    def prefers(a: Record, b: Record) -> bool:
        for k, sign in indices:
            x, y = a.totals[k] * sign, b.totals[k] * sign
            if x < y:
                return True
            if x > y:
                return False
        return False

    return prefers
