"""Skyline-related queries over partially-ordered domains.

The paper's Section 6 names "the evaluation of other skyline-related
queries that involve partially-ordered domains" as future work; this
subpackage provides two classic members of that family, generalised to
mixed totally-/partially-ordered schemas:

* :mod:`repro.queries.skyband` -- the **k-skyband** (records dominated by
  fewer than ``k`` others; the skyline is the 1-skyband), with both a
  nested-loops evaluator and an index-accelerated BBS-style evaluator
  that prunes an entry once ``k`` candidates m-dominate it.
* :mod:`repro.queries.constrained` -- **constrained skylines**: the
  skyline of the records satisfying range predicates on totally-ordered
  attributes and dominance predicates (``must dominate v`` /
  ``dominated by v``) on poset attributes.
* :mod:`repro.queries.layers` -- **skyline layers** (onion peeling into a
  full preference ranking).
* :mod:`repro.queries.topk` -- **top-k dominating** records by exact
  dominance counts (m-dominance fast path per Lemma 4.2).
* :mod:`repro.queries.subspace` -- **subspace skylines** and the full
  **skycube** over every attribute subset.
"""

from repro.queries.skyband import k_skyband, k_skyband_bbs, k_skyband_nested_loops
from repro.queries.constrained import Constraint, constrained_skyline
from repro.queries.layers import layer_of, skyline_layers
from repro.queries.topk import dominance_counts, top_k_dominating
from repro.queries.subspace import project_dataset, skycube, subspace_skyline
from repro.queries.maintain import MaintainedSkyline
from repro.queries.winnow import (
    check_preference,
    lexicographic_preference,
    pareto_preference,
    winnow,
)

__all__ = [
    "k_skyband",
    "k_skyband_bbs",
    "k_skyband_nested_loops",
    "Constraint",
    "constrained_skyline",
    "skyline_layers",
    "layer_of",
    "top_k_dominating",
    "dominance_counts",
    "project_dataset",
    "subspace_skyline",
    "skycube",
    "MaintainedSkyline",
    "winnow",
    "check_preference",
    "pareto_preference",
    "lexicographic_preference",
]
