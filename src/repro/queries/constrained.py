"""Constrained skyline queries over partially-ordered domains.

A :class:`Constraint` restricts the input relation before the skyline is
computed:

* **range predicates** on totally-ordered attributes
  (``lo <= value <= hi``) -- these translate to a rectangle in the
  transformed space, so the index-accelerated evaluator skips R-tree
  entries disjoint from the constraint region (as in the BBS paper's
  constrained-skyline extension);
* **dominance predicates** on poset attributes: ``must_dominate`` (the
  record's value must be ``>=`` the given value) and ``dominated_by``
  (``<=``).  The qualifying value set of a poset predicate is not a box
  in the transformed space, so poset predicates are applied as exact
  per-record filters (via poset reachability) while numeric predicates
  still prune subtrees.

The skyline semantics are "skyline of the qualifying records": a record
excluded by the constraint neither appears in the answer *nor* dominates
anything (consistent with evaluating the skyline after a WHERE clause).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping

from repro.algorithms.bbs import traverse
from repro.algorithms.bnl import bnl_passes
from repro.exceptions import AlgorithmError, SchemaError
from repro.rtree.node import Node
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["Constraint", "constrained_skyline"]


class Constraint:
    """Conjunction of per-attribute predicates.

    Parameters
    ----------
    ranges:
        ``{attribute_name: (lo, hi)}`` for totally-ordered attributes;
        either bound may be ``None`` (unbounded).
    must_dominate:
        ``{attribute_name: value}``: the record's value must equal or
        dominate ``value`` in the attribute's poset.
    dominated_by:
        ``{attribute_name: value}``: the record's value must equal
        ``value`` or be dominated by it.
    """

    def __init__(
        self,
        ranges: Mapping[str, tuple[float | None, float | None]] | None = None,
        must_dominate: Mapping[str, Hashable] | None = None,
        dominated_by: Mapping[str, Hashable] | None = None,
    ) -> None:
        self.ranges = dict(ranges or {})
        self.must_dominate = dict(must_dominate or {})
        self.dominated_by = dict(dominated_by or {})

    def validate(self, dataset: TransformedDataset) -> None:
        """Check attribute names/kinds/values against the schema."""
        schema = dataset.schema
        total_names = {a.name for a in schema.total_attrs}
        partial_names = {a.name for a in schema.partial_attrs}
        for name in self.ranges:
            if name not in total_names:
                raise SchemaError(
                    f"range predicate on {name!r}: not a totally-ordered attribute"
                )
        for mapping in (self.must_dominate, self.dominated_by):
            for name, value in mapping.items():
                if name not in partial_names:
                    raise SchemaError(
                        f"dominance predicate on {name!r}: not a poset attribute"
                    )
                if value not in schema.attribute(name).poset:
                    raise SchemaError(
                        f"constraint value {value!r} outside domain of {name!r}"
                    )

    # ------------------------------------------------------------------
    def _transformed_box(
        self, dataset: TransformedDataset
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Constraint rectangle over the *numeric* leading coordinates,
        unbounded elsewhere."""
        schema = dataset.schema
        mins = [-math.inf] * schema.transformed_dimensions
        maxs = [math.inf] * schema.transformed_dimensions
        for k, attr in enumerate(schema.total_attrs):
            bounds = self.ranges.get(attr.name)
            if bounds is None:
                continue
            lo, hi = bounds
            if attr.sign == 1:
                if lo is not None:
                    mins[k] = lo
                if hi is not None:
                    maxs[k] = hi
            else:
                # Negation flips the roles: a raw lower bound becomes an
                # upper bound in the minimisation space and vice versa.
                if lo is not None:
                    maxs[k] = -lo
                if hi is not None:
                    mins[k] = -hi
        return tuple(mins), tuple(maxs)

    def admits(self, dataset: TransformedDataset, point: Point) -> bool:
        """Exact per-record predicate."""
        schema = dataset.schema
        for k, attr in enumerate(schema.total_attrs):
            bounds = self.ranges.get(attr.name)
            if bounds is None:
                continue
            lo, hi = bounds
            value = point.record.totals[k]
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
        for k, attr in enumerate(schema.partial_attrs):
            poset = attr.poset
            value = point.record.partials[k]
            anchor = self.must_dominate.get(attr.name)
            if anchor is not None and not poset.leq(anchor, value):
                return False
            anchor = self.dominated_by.get(attr.name)
            if anchor is not None and not poset.leq(value, anchor):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Constraint(ranges={self.ranges}, must_dominate={self.must_dominate}, "
            f"dominated_by={self.dominated_by})"
        )


def constrained_skyline(
    dataset: TransformedDataset,
    constraint: Constraint,
    method: str = "bbs",
) -> list[Point]:
    """Skyline of the records admitted by ``constraint``.

    ``method`` is ``"bbs"`` (index-accelerated: numeric predicates prune
    subtrees, poset predicates filter records, dominance handled BBS+-
    style with native false-positive removal) or ``"bnl"`` (filter, then
    native block-nested-loops).
    """
    constraint.validate(dataset)
    kernel = dataset.kernel

    if method == "bnl":
        qualifying = [p for p in dataset.points if constraint.admits(dataset, p)]
        return list(
            bnl_passes(qualifying, kernel.native_dominates, 10**9, dataset.stats)
        )
    if method != "bbs":
        raise AlgorithmError(f"unknown constrained-skyline method {method!r}")

    box_mins, box_maxs = constraint._transformed_box(dataset)
    skyline: list[Point] = []

    def node_pruned(node: Node) -> bool:
        # Disjoint from the numeric constraint region: nothing inside
        # can qualify.
        for lo, hi, nlo, nhi in zip(box_mins, box_maxs, node.mins, node.maxs):
            if nhi < lo or nlo > hi:
                return True
        mins = node.mins
        bound = node.min_key
        for p in skyline:
            if p.key >= bound:
                break
            if kernel.m_dominates_mins(p, mins):
                return True
        return False

    def point_pruned(point: Point) -> bool:
        for lo, hi, x in zip(box_mins, box_maxs, point.vector):
            if x < lo or x > hi:
                return True
        bound = point.key
        for p in skyline:
            if p.key >= bound:
                break
            if kernel.m_dominates(p, point):
                return True
        return False

    for e in traverse(
        dataset.index, dataset.stats, node_pruned, point_pruned, dataset.context
    ):
        if not constraint.admits(dataset, e):
            continue
        dominated = False
        i = 0
        while i < len(skyline):
            p = skyline[i]
            if kernel.native_dominates(p, e):
                dominated = True
                break
            if kernel.native_dominates(e, p):
                del skyline[i]  # order-preserving for the key-bounded scans
                continue
            i += 1
        if not dominated:
            skyline.append(e)
    return skyline
