"""Skyline layers ("onion peeling") over partially-ordered domains.

Layer 1 is the skyline; layer ``i`` is the skyline of the records not in
layers ``1..i-1``.  Layers generalise the skyline into a full preference
ranking and relate to, but differ from, the k-skyband: a record in layer
``i`` may be dominated by arbitrarily many records, all sitting in layer
``i-1``.

The evaluator peels layers by re-running any registered skyline algorithm
over the shrinking remainder (each layer's run reuses the dataset's
domain mappings; only the per-layer point set changes).  For the
index-based algorithms each layer builds a fresh R-tree over the
remainder, so ``bnl`` is usually the right workhorse when many layers are
needed.
"""

from __future__ import annotations

from typing import Iterator

from repro.algorithms.base import get_algorithm
from repro.exceptions import AlgorithmError
from repro.transform.dataset import TransformedDataset
from repro.transform.point import Point

__all__ = ["skyline_layers", "layer_of"]


def skyline_layers(
    dataset: TransformedDataset,
    max_layers: int | None = None,
    algorithm: str = "bnl",
    **options,
) -> Iterator[list[Point]]:
    """Yield successive skyline layers of ``dataset``.

    Parameters
    ----------
    dataset:
        The transformed dataset (shared mappings across layers).
    max_layers:
        Stop after this many layers (``None`` peels everything).
    algorithm:
        Registered skyline algorithm used for each peel.
    """
    if max_layers is not None and max_layers < 1:
        raise AlgorithmError("max_layers must be positive")
    remaining = list(dataset.points)
    produced = 0
    algo = get_algorithm(algorithm, **options)
    while remaining and (max_layers is None or produced < max_layers):
        layer_dataset = dataset.subset_view(remaining)
        layer = list(algo.run(layer_dataset))
        if not layer:  # defensive: a non-empty set always has a skyline
            raise AlgorithmError("algorithm produced an empty layer")
        yield layer
        produced += 1
        layer_ids = {id(p) for p in layer}
        remaining = [p for p in remaining if id(p) not in layer_ids]


def layer_of(dataset: TransformedDataset, rid, algorithm: str = "bnl") -> int:
    """1-based layer number of the record with id ``rid`` (0 if absent)."""
    for number, layer in enumerate(skyline_layers(dataset, algorithm=algorithm), 1):
        if any(p.record.rid == rid for p in layer):
            return number
    return 0


