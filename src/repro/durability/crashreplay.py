"""Kill-point chaos matrix: crash a real process, recover, audit.

``repro crash-replay`` runs, for every kill-point × seed cell:

1. **Workload child** -- a forked process builds the cell's seeded
   dataset, attaches a :class:`~repro.durability.DurabilityManager`
   with a :class:`~repro.resilience.chaos.CrashInjector` armed at the
   cell's kill-point, and applies a deterministic insert/delete plan.
   Before each operation it fsyncs the op index to a ``submitted`` log;
   after the commit returns (i.e. the WAL record is durable and the
   caller would have been acknowledged) it fsyncs the index to an
   ``acked`` log.  The injector kills the process (``os._exit``) at
   the armed site mid-workload.
2. **Recovery** -- the parent recovers the durability directory
   in-process and audits the result.  For the ``recovery.mid-replay``
   kill-point an intermediate *recovery child* is crashed mid-replay
   first, proving recovery is idempotent.

The audited invariants (the acknowledgement contract,
``docs/durability.md``):

* ``acked <= recovered <= submitted`` -- zero acknowledged-commit
  loss, zero resurrection of operations that were never submitted;
* the recovered operations are exactly the **prefix** ``plan[:V]`` of
  the deterministic plan (checked by replaying that prefix onto a
  fresh dataset and comparing full-space skylines bit-for-bit);
* a torn WAL record (``wal.append.mid-write``) is truncated, never
  replayed: recovered == acked exactly;
* a fully-appended but unacknowledged record (crash between append and
  ack) may legitimately be recovered -- committed-to-log is the
  durability boundary -- hence the one-op slack in the upper bound;
* :func:`~repro.durability.recovery.fsck` is clean afterwards.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import tempfile
from pathlib import Path

from repro.core.record import Record
from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.durability.recovery import fsck, recover
from repro.posets.generator import PosetGeneratorConfig
from repro.resilience.chaos import KILL_POINTS, CrashInjector
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import generate_workload

__all__ = ["run_crash_replay", "CRASH_EXIT_CODE"]

#: The exit code an injected crash dies with (distinguishes an armed
#: kill from an accidental child failure).
CRASH_EXIT_CODE = 17


def _cell_workload(seed: int, n: int, ops: int):
    """The cell's deterministic (schema, records, op plan) triple.

    Parent and children both call this with the same arguments, so the
    plan never has to cross the process boundary -- determinism *is*
    the protocol.
    """
    config = WorkloadConfig(
        num_total=2,
        num_partial=1,
        data_size=n,
        seed=seed,
        poset=PosetGeneratorConfig(num_nodes=48, seed=seed),
    )
    workload = generate_workload(config)
    rng = random.Random(seed * 7919 + 13)
    plan: list[tuple[str, object]] = []
    live = [r.rid for r in workload.records]
    pool = workload.records
    next_rid = n
    for _ in range(ops):
        if live and rng.random() < 0.4:
            plan.append(("delete", live.pop(rng.randrange(len(live)))))
        else:
            base = pool[rng.randrange(len(pool))]
            record = Record(next_rid, base.totals, base.partials)
            next_rid += 1
            live.append(record.rid)
            plan.append(("insert", record))
    return workload.schema, workload.records, plan


def _build_dataset(schema, records):
    from repro.transform.dataset import TransformedDataset

    return TransformedDataset(schema, records)


def _log_append(path: Path, value: int) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(f"{value}\n")
        fh.flush()
        os.fsync(fh.fileno())


def _log_count(path: Path) -> int:
    if not path.exists():
        return 0
    return sum(1 for line in path.read_text().splitlines() if line.strip())


def _workload_child(
    root: str,
    seed: int,
    n: int,
    ops: int,
    kill_point: str,
    fail_after: int,
    checkpoint_interval: int,
) -> None:
    """Forked child: run the plan until the armed kill-point fires."""
    schema, records, plan = _cell_workload(seed, n, ops)
    dataset = _build_dataset(schema, records)
    crash = CrashInjector(kill_point, fail_after=fail_after, exit_code=CRASH_EXIT_CODE)
    manager = DurabilityManager(
        DurabilityConfig(root, checkpoint_interval=checkpoint_interval),
        crash=crash,
    )
    manager.attach(dataset)
    submitted = Path(root) / "submitted.log"
    acked = Path(root) / "acked.log"
    for index, (op, arg) in enumerate(plan):
        _log_append(submitted, index)
        if op == "insert":
            dataset.insert_record(arg)
        else:
            dataset.delete_record(arg)
        _log_append(acked, index)
    os._exit(0)  # armed kill-point never fired: the cell flags this


def _recovery_child(root: str) -> None:
    """Forked child: crash mid-replay to prove recovery idempotence."""
    crash = CrashInjector(
        "recovery.mid-replay", fail_after=2, exit_code=CRASH_EXIT_CODE
    )
    recover(root, crash=crash)
    os._exit(0)


def _run_cell(kill_point: str, seed: int, n: int, ops: int, workdir: Path) -> dict:
    """Crash, recover and audit one (kill-point, seed) cell."""
    from repro.algorithms.base import get_algorithm

    root = Path(tempfile.mkdtemp(prefix=f"cell-{seed}-", dir=workdir))
    problems: list[str] = []
    context = multiprocessing.get_context("fork")

    # snapshot.mid-rename needs an auto checkpoint mid-workload; the
    # genesis snapshot at attach is the injector's call #1, so arming
    # fail_after=2 crashes the first post-attach checkpoint.  The WAL
    # kill-points crash on the fail_after-th append, i.e. mid-plan.
    if kill_point == "snapshot.mid-rename":
        fail_after, interval = 2, max(2, ops // 2)
    else:
        fail_after, interval = max(2, ops // 2), 0
    child_kill = (
        "wal.append.pre-fsync"
        if kill_point == "recovery.mid-replay"
        else kill_point
    )
    child = context.Process(
        target=_workload_child,
        args=(str(root), seed, n, ops, child_kill, fail_after, interval),
    )
    child.start()
    child.join(timeout=120)
    if child.is_alive():  # pragma: no cover - hang backstop
        child.terminate()
        child.join()
        problems.append("workload child hung")
    exit_code = child.exitcode
    if exit_code != CRASH_EXIT_CODE:
        problems.append(
            f"workload child exited {exit_code}, expected injected crash "
            f"{CRASH_EXIT_CODE}"
        )

    recovery_crash_code = None
    if kill_point == "recovery.mid-replay":
        crasher = context.Process(target=_recovery_child, args=(str(root),))
        crasher.start()
        crasher.join(timeout=120)
        recovery_crash_code = crasher.exitcode
        if recovery_crash_code != CRASH_EXIT_CODE:
            problems.append(
                f"recovery child exited {recovery_crash_code}, expected "
                f"injected crash {CRASH_EXIT_CODE}"
            )

    submitted = _log_count(root / "submitted.log")
    acked = _log_count(root / "acked.log")
    schema, records, plan = _cell_workload(seed, n, ops)

    report = recover(str(root))
    recovered = report.dataset.update_version
    if not acked <= recovered:
        problems.append(
            f"acknowledged-commit loss: acked {acked} ops, recovered {recovered}"
        )
    if not recovered <= submitted:
        problems.append(
            f"resurrected unsubmitted ops: recovered {recovered}, "
            f"submitted {submitted}"
        )
    if recovered > acked + 1:
        problems.append(
            f"recovered {recovered} ops with only {acked} acked: more than "
            "the one in-flight op can be unacknowledged"
        )
    if kill_point == "wal.append.mid-write":
        if recovered != acked:
            problems.append(
                f"torn record replayed: recovered {recovered} != acked {acked}"
            )
        if report.truncated_bytes == 0:
            problems.append("mid-write crash left no torn tail to truncate")

    # Prefix audit: the recovered state must equal plan[:recovered]
    # applied to a fresh dataset, bit-for-bit on the skyline.
    expected = _build_dataset(schema, records)
    for op, arg in plan[:recovered]:
        if op == "insert":
            expected.insert_record(arg)
        else:
            expected.delete_record(arg)
    got = [p.record.rid for p in get_algorithm("sdc+").run(report.dataset)]
    want = [p.record.rid for p in get_algorithm("sdc+").run(expected)]
    if got != want:
        problems.append(
            f"skyline mismatch after recovery: {len(got)} != {len(want)} rids "
            "or different order"
        )

    audit = fsck(report.dataset)
    if not audit["clean"]:
        problems.extend(f"fsck: {p}" for p in audit["problems"])

    return {
        "kill_point": kill_point,
        "seed": seed,
        "pass": not problems,
        "exit_code": exit_code,
        "recovery_crash_code": recovery_crash_code,
        "submitted": submitted,
        "acked": acked,
        "recovered": recovered,
        "replayed": report.replayed,
        "truncated_bytes": report.truncated_bytes,
        "orphaned_segments": report.orphaned_segments,
        "skyline_size": len(got),
        "fsck_clean": audit["clean"],
        "problems": problems,
    }


def run_crash_replay(
    kill_points=KILL_POINTS,
    seeds=(7, 2025),
    n: int = 40,
    ops: int = 12,
    workdir: str | Path | None = None,
    out: str | Path | None = None,
) -> dict:
    """Run the full kill-point × seed matrix; returns the report dict.

    ``n`` is the base dataset size per cell, ``ops`` the plan length.
    With ``out`` the report is written as a canonical benchmark
    artifact (atomic, sorted keys).
    """
    owned = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="crash-replay-")) if owned else Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    cells = []
    try:
        for kill_point in kill_points:
            for seed in seeds:
                cells.append(_run_cell(kill_point, seed, n, ops, workdir))
    finally:
        if owned:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)
    report = {
        "config": {
            "kill_points": list(kill_points),
            "seeds": list(seeds),
            "n": n,
            "ops": ops,
        },
        "cells": cells,
        "passed": all(cell["pass"] for cell in cells),
        "failures": sum(1 for cell in cells if not cell["pass"]),
    }
    if out is not None:
        from repro.bench.artifacts import write_artifact

        write_artifact(out, report)
    return report
