"""Atomic checkpoints of a transformed dataset.

A snapshot file is one JSON document:

.. code-block:: text

    {"format": "repro-snapshot", "version": 1,
     "crc32": <crc of canonical body JSON>,
     "body": {"lsn": ..., "schema": ..., "records": ...,
              "config": {...}, "forests": {...}}}

``body`` captures everything needed to rebuild the *exact* dataset --
not just the records but the spanning-forest parent arrays of every
poset attribute, so the interval encoding (and therefore every
transformed point, every stratum and every R-tree rectangle) is
reconstructed bit-identically rather than re-derived from a strategy
that might tie-break differently.  Derived structures (trees, strata,
views) are deliberately *not* persisted: the points are the ground
truth and the rebuild is cheap relative to the recovery guarantee.

Writes are crash-atomic: the document goes to a temp file in the same
directory, is fsynced, then published with ``os.replace`` (the
``snapshot.mid-rename`` kill-point sits between the two), and the
directory entry is fsynced.  Readers verify the CRC over the canonical
body serialization; a truncated or bit-flipped snapshot is detected and
skipped, which is what lets recovery fall back to the previous one.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.exceptions import DurabilityError
from repro.io import (
    records_from_list,
    records_to_list,
    schema_from_dict,
    schema_to_dict,
)
from repro.posets.spanning_tree import SpanningForest

__all__ = [
    "SNAPSHOT_PREFIX",
    "write_snapshot",
    "load_snapshot",
    "list_snapshots",
    "rebuild_dataset",
    "prune_snapshots",
]

SNAPSHOT_PREFIX = "snapshot-"
_FORMAT = "repro-snapshot"


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def snapshot_path(directory: str | Path, lsn: int) -> Path:
    """The canonical file path of the checkpoint taken at ``lsn``."""
    return Path(directory) / f"{SNAPSHOT_PREFIX}{lsn:016d}.json"


def list_snapshots(directory: str | Path) -> list[Path]:
    """Snapshot paths oldest-first (by the LSN embedded in the name)."""
    return sorted(
        p
        for p in Path(directory).glob(f"{SNAPSHOT_PREFIX}*.json")
        if p.name[len(SNAPSHOT_PREFIX) : -len(".json")].isdigit()
    )


def snapshot_lsn(path: Path) -> int:
    """The checkpoint LSN a snapshot file was written at (from its name)."""
    return int(path.name[len(SNAPSHOT_PREFIX) : -len(".json")])


def dataset_body(dataset, lsn: int) -> dict:
    """The serializable checkpoint body of ``dataset`` at ``lsn``."""
    forests = {
        attr.name: list(mapping.forest._parent)
        for attr, mapping in zip(dataset.schema.partial_attrs, dataset.mappings)
    }
    return {
        "lsn": lsn,
        "schema": schema_to_dict(dataset.schema),
        "records": records_to_list(dataset.records),
        "config": {
            "strategy": dataset.strategy.value,
            "native_mode": dataset.native_mode,
            "kernel": dataset.kernel_name,
            "max_entries": dataset.max_entries,
            "bulk_load": dataset.bulk_load,
        },
        "forests": forests,
    }


def write_snapshot(directory: str | Path, dataset, lsn: int, *, crash=None) -> Path:
    """Atomically persist ``dataset``'s committed state at ``lsn``.

    The temp file is fsynced before ``os.replace`` publishes it, so a
    crash at any instant leaves either no new snapshot (the temp file is
    garbage-collected by :func:`prune_snapshots`) or a complete one --
    never a torn document under the published name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = dataset_body(dataset, lsn)
    canonical = _canonical(body)
    document = {
        "format": _FORMAT,
        "version": 1,
        "crc32": zlib.crc32(canonical),
        "body": body,
    }
    final = snapshot_path(directory, lsn)
    tmp = final.with_suffix(".json.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        if crash is not None:
            crash.maybe_crash("snapshot.mid-rename")
        os.replace(tmp, final)
        _fsync_dir(directory)
    except DurabilityError:
        raise
    except Exception as err:
        raise DurabilityError(f"snapshot write failed: {err}") from err
    return final


def load_snapshot(path: str | Path) -> dict:
    """Read and checksum-verify one snapshot; returns its ``body``.

    Raises :class:`~repro.exceptions.DurabilityError` on a missing,
    torn, malformed or checksum-failing document -- the caller
    (recovery) falls back to an older snapshot.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except Exception as err:
        raise DurabilityError(f"unreadable snapshot {path.name}: {err}") from err
    if document.get("format") != _FORMAT:
        raise DurabilityError(f"{path.name} is not a repro snapshot")
    body = document.get("body")
    if not isinstance(body, dict):
        raise DurabilityError(f"snapshot {path.name} has no body")
    if zlib.crc32(_canonical(body)) != document.get("crc32"):
        raise DurabilityError(f"snapshot {path.name} failed its checksum")
    return body


def rebuild_dataset(body: dict, *, kernel: str | None = None, stats=None):
    """Reconstruct the exact :class:`TransformedDataset` of a snapshot body.

    The persisted parent arrays are turned back into
    :class:`~repro.posets.spanning_tree.SpanningForest` objects and
    passed as explicit ``forests=``, so the interval encoding -- and
    with it every transformed coordinate -- matches the pre-crash
    dataset bit-for-bit regardless of strategy tie-breaking.
    """
    from repro.transform.dataset import TransformedDataset

    try:
        schema = schema_from_dict(body["schema"])
        records = records_from_list(body["records"])
        config = body["config"]
        forests = {
            attr.name: SpanningForest(attr.poset, body["forests"][attr.name])
            for attr in schema.partial_attrs
        }
        return TransformedDataset(
            schema,
            records,
            strategy=config["strategy"],
            native_mode=config["native_mode"],
            kernel=kernel if kernel is not None else config["kernel"],
            max_entries=config["max_entries"],
            bulk_load=config["bulk_load"],
            forests=forests,
            stats=stats,
        )
    except DurabilityError:
        raise
    except Exception as err:
        raise DurabilityError(f"snapshot rebuild failed: {err}") from err


def prune_snapshots(directory: str | Path, keep: int = 2) -> list[Path]:
    """Unlink all but the ``keep`` newest snapshots, plus stray temp files.

    At least two snapshots are kept by default so recovery always has a
    fallback if the newest one fails its checksum.
    """
    directory = Path(directory)
    removed: list[Path] = []
    for tmp in directory.glob(f"{SNAPSHOT_PREFIX}*.json.tmp"):
        tmp.unlink()
        removed.append(tmp)
    snapshots = list_snapshots(directory)
    for stale in snapshots[: max(0, len(snapshots) - keep)]:
        stale.unlink()
        removed.append(stale)
    if removed:
        _fsync_dir(directory)
    return removed
