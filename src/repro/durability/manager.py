"""Durability orchestration: wiring WAL + snapshots into a live dataset.

:class:`DurabilityManager` owns one durability root directory::

    <root>/wal/        wal-<start-lsn>.log segments
    <root>/snapshots/  snapshot-<lsn>.json checkpoints

and attaches to a :class:`~repro.transform.dataset.TransformedDataset`
in two places:

* the **commit hook** -- called synchronously *inside* the dataset's
  transactional update, after the structural mutation but before the
  version bump, post-commit listeners or any acknowledgement.  It
  appends (and under ``sync="commit"`` fsyncs) the WAL record; if the
  append fails the raise propagates into the dataset's rollback path,
  so the update is undone in memory and never acknowledged -- the
  durability contract has no half-states.
* a **post-commit listener** -- counts committed updates and triggers
  an automatic :meth:`checkpoint` every ``checkpoint_interval``
  commits.  Checkpoint failures are isolated by the hardened listener
  registry (they must not fail the already-durable commit) and surface
  through the metrics counters instead.

A checkpoint snapshots the dataset atomically, rotates the WAL onto a
fresh segment and retires segments wholly covered by the snapshot LSN.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.durability.recovery import SNAPSHOT_SUBDIR, WAL_SUBDIR
from repro.durability.snapshot import (
    list_snapshots,
    prune_snapshots,
    snapshot_lsn,
    write_snapshot,
)
from repro.durability.wal import WalRecord, WriteAheadLog
from repro.exceptions import DurabilityError

__all__ = ["DurabilityConfig", "DurabilityManager"]


@dataclass
class DurabilityConfig:
    """Policy knobs for one :class:`DurabilityManager`.

    ``checkpoint_interval`` is the number of committed updates between
    automatic checkpoints (``0`` disables them; call
    :meth:`DurabilityManager.checkpoint` manually).  ``sync`` is the WAL
    fsync policy (``"commit"`` or ``"never"``); ``keep_snapshots`` is
    how many checkpoints to retain for fallback.
    """

    directory: str | Path
    sync: str = "commit"
    checkpoint_interval: int = 0
    keep_snapshots: int = 2

    @classmethod
    def parse(cls, value) -> "DurabilityConfig":
        """Coerce a path-like or config into a config."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(directory=value)
        raise DurabilityError(f"cannot interpret durability config {value!r}")


class DurabilityManager:
    """WAL + snapshot lifecycle for one dataset (see module docstring)."""

    def __init__(self, config, *, metrics=None, crash=None) -> None:
        self.config = DurabilityConfig.parse(config)
        self.root = Path(self.config.directory)
        self.metrics = metrics
        self.crash = crash
        self.dataset = None
        self.wal: WriteAheadLog | None = None
        self.commits_since_checkpoint = 0
        self.checkpoints = 0
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self, dataset) -> None:
        """Bind to ``dataset``: open the WAL, write the genesis snapshot.

        The dataset must either be fresh relative to the directory or be
        the product of :func:`~repro.durability.recovery.recover` over
        it: attaching with an un-replayed WAL tail (log records with
        LSN beyond the dataset's ``update_version``) would fork history
        and is rejected loudly.
        """
        if self._attached:
            raise DurabilityError("DurabilityManager is already attached")
        if getattr(dataset, "_commit_hook", None) is not None:
            raise DurabilityError("dataset already has a commit hook")
        on_fsync = (
            self.metrics.wal_fsync.record if self.metrics is not None else None
        )
        wal = WriteAheadLog(
            self.root / WAL_SUBDIR,
            sync=self.config.sync,
            start_lsn=dataset.update_version + 1,
            on_fsync=on_fsync,
            crash=self.crash,
        )
        wal.repair()
        tail = wal.last_lsn()
        if tail is not None and tail > dataset.update_version:
            wal.close()
            raise DurabilityError(
                f"WAL tail at LSN {tail} is ahead of dataset version "
                f"{dataset.update_version}; recover() before attaching"
            )
        self.dataset = dataset
        self.wal = wal
        self._attached = True
        if not list_snapshots(self.root / SNAPSHOT_SUBDIR):
            # Genesis checkpoint: recovery always has a base to replay
            # from, even if the process dies before the first rotation.
            self.checkpoint()
        dataset.set_commit_hook(self._on_commit)
        dataset.add_update_listener(self._on_committed)

    def detach(self) -> None:
        """Unhook from the dataset and close the WAL."""
        if not self._attached:
            return
        self.dataset.set_commit_hook(None)
        self.dataset.remove_update_listener(self._on_committed)
        if self.wal is not None:
            self.wal.close()
        self._attached = False

    # ------------------------------------------------------------------
    # Dataset hooks
    # ------------------------------------------------------------------
    def _on_commit(self, op: str, point, lsn: int) -> None:
        """The commit hook: make the update durable or fail the commit."""
        if op == "insert":
            entry = WalRecord(lsn, "insert", record=point.record)
        else:
            entry = WalRecord(lsn, "delete", rid=point.record.rid)
        try:
            nbytes = self.wal.append(entry)
        except DurabilityError:
            if self.metrics is not None:
                self.metrics.on_wal_failure()
            raise
        if self.metrics is not None:
            self.metrics.on_wal_append(nbytes)

    def _on_committed(self, op: str, point) -> None:
        """Post-commit listener: drive the automatic checkpoint cadence."""
        self.commits_since_checkpoint += 1
        interval = self.config.checkpoint_interval
        if interval and self.commits_since_checkpoint >= interval:
            self.checkpoint()

    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Snapshot now; rotate the WAL; retire covered segments.

        Any failure surfaces as :class:`DurabilityError` *after* the
        metrics counter is bumped; when called from the post-commit
        listener the hardened registry keeps it from failing the commit
        (the WAL record is already durable, so nothing is lost -- the
        next checkpoint simply has more to cover).
        """
        if not self._attached and self.dataset is None:
            raise DurabilityError("DurabilityManager is not attached")
        lsn = self.dataset.update_version
        try:
            path = write_snapshot(
                self.root / SNAPSHOT_SUBDIR, self.dataset, lsn, crash=self.crash
            )
            self.wal.rotate(lsn + 1)
            prune_snapshots(
                self.root / SNAPSHOT_SUBDIR, keep=self.config.keep_snapshots
            )
            # Retire only segments covered by the *oldest retained*
            # snapshot, not the one just written: if the newest snapshot
            # later fails its checksum, recovery falls back to an older
            # one and must still be able to replay the log forward to
            # the acknowledged tail.
            retained = list_snapshots(self.root / SNAPSHOT_SUBDIR)
            retain_lsn = snapshot_lsn(retained[0]) if retained else lsn
            retired = self.wal.retire(retain_lsn)
        except DurabilityError:
            if self.metrics is not None:
                self.metrics.on_checkpoint_failure()
            raise
        except Exception as err:
            if self.metrics is not None:
                self.metrics.on_checkpoint_failure()
            raise DurabilityError(f"checkpoint failed: {err}") from err
        self.commits_since_checkpoint = 0
        self.checkpoints += 1
        if self.metrics is not None:
            self.metrics.on_checkpoint(retired=len(retired))
        return path

    def close(self) -> None:
        """Alias for :meth:`detach` (context-manager friendliness)."""
        self.detach()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurabilityManager({str(self.root)!r}, attached={self._attached}, "
            f"checkpoints={self.checkpoints})"
        )
