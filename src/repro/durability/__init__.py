"""Durable state: write-ahead log, snapshots, crash recovery, fsck.

The persistence subsystem behind ``SkylineServer(durability=...)`` --
see ``docs/durability.md`` for the on-disk formats and the
acknowledgement contract, and :mod:`repro.durability.crashreplay` for
the kill-point chaos matrix that proves it.
"""

from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.durability.recovery import RecoveryReport, fsck, recover
from repro.durability.snapshot import (
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    rebuild_dataset,
    write_snapshot,
)
from repro.durability.wal import WalRecord, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryReport",
    "WalRecord",
    "WriteAheadLog",
    "fsck",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "rebuild_dataset",
    "recover",
    "write_snapshot",
]
