"""Write-ahead log: length-prefixed, CRC32-checksummed update records.

One :class:`WriteAheadLog` owns a directory of **segments** named
``wal-<start-lsn>.log`` (16-digit zero-padded start LSN).  Every
committed ``insert_record``/``delete_record`` appends one record:

.. code-block:: text

    +----------------+----------------+------------------------+
    | length (u32 BE)| crc32 (u32 BE) | payload (JSON, UTF-8)  |
    +----------------+----------------+------------------------+

``length`` is the payload byte count, ``crc32`` is computed over the
payload, and the payload is a JSON object carrying the record's LSN
(the dataset ``update_version`` the commit produces), the operation and
its argument (the full serialized record for an insert, the rid for a
delete).  The append path writes the whole frame, flushes it to the OS
and -- under the default ``sync="commit"`` policy -- ``fsync``\\ s before
returning, so a commit that was acknowledged to the caller is on disk.

**Torn tails.**  A crash mid-append leaves a truncated or
checksum-broken frame at the end of the newest segment.
:meth:`WriteAheadLog.repair` (run by every attach and every recovery)
scans forward, keeps the longest valid prefix, physically truncates the
file at the first invalid byte and never replays anything after it.  A
corrupt record mid-log is treated the same way -- everything from the
first invalid frame on is unreachable; later segments (which cannot
legitimately exist past a corruption) are quarantined with an
``.orphan`` suffix rather than silently replayed.

Segments rotate at checkpoint time (:meth:`rotate`), and
:meth:`retire` unlinks segments wholly covered by a snapshot's LSN.
See ``docs/durability.md``.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.record import Record
from repro.exceptions import DurabilityError
from repro.io import records_from_list, records_to_list

__all__ = ["WalRecord", "WriteAheadLog", "SEGMENT_PREFIX"]

_HEADER = struct.Struct(">II")

#: Frames claiming a payload larger than this are treated as corruption
#: (a torn length field must not trigger a gigabyte allocation).
MAX_PAYLOAD_BYTES = 1 << 26

SEGMENT_PREFIX = "wal-"


def _fsync_dir(directory: Path) -> None:
    """Durably record directory-entry changes (best effort off-POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: ``(lsn, op, record-or-rid)``."""

    lsn: int
    op: str  # "insert" | "delete"
    record: Record | None = None  # inserts carry the full record
    rid: object | None = None  # deletes carry the rid only

    def encode(self) -> bytes:
        """The framed on-disk bytes of this record."""
        payload: dict = {"lsn": self.lsn, "op": self.op}
        if self.op == "insert":
            payload["record"] = records_to_list([self.record])[0]
        elif self.op == "delete":
            payload["rid"] = self.rid
        else:
            raise DurabilityError(f"unknown WAL op {self.op!r}")
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def decode_payload(cls, body: bytes) -> "WalRecord":
        """Decode one CRC-verified payload; raises on malformed JSON."""
        try:
            payload = json.loads(body.decode("utf-8"))
            lsn = int(payload["lsn"])
            op = payload["op"]
            if op == "insert":
                record = records_from_list([payload["record"]])[0]
                return cls(lsn, op, record=record)
            if op == "delete":
                return cls(lsn, op, rid=payload["rid"])
        except DurabilityError:
            raise
        except Exception as err:
            raise DurabilityError(f"undecodable WAL payload: {err}") from err
        raise DurabilityError(f"unknown WAL op {op!r}")


def _scan_segment(path: Path) -> tuple[list[WalRecord], int, str | None]:
    """Longest valid record prefix of one segment.

    Returns ``(records, valid_bytes, problem)`` where ``problem`` names
    what stopped the scan (``None`` for a clean segment): a torn header,
    a torn payload, a CRC mismatch or an undecodable payload.  The file
    is not modified.
    """
    data = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return records, offset, "torn header"
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_PAYLOAD_BYTES:
            return records, offset, f"implausible payload length {length}"
        body = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(body) < length:
            return records, offset, "torn payload"
        if zlib.crc32(body) != crc:
            return records, offset, "crc mismatch"
        try:
            records.append(WalRecord.decode_payload(body))
        except DurabilityError:
            return records, offset, "undecodable payload"
        offset += _HEADER.size + length
    return records, offset, None


class WriteAheadLog:
    """Append/scan/rotate/retire interface over one WAL directory.

    Parameters
    ----------
    directory:
        Directory holding the segments (created if absent).
    sync:
        ``"commit"`` (default) fsyncs every append before it returns --
        the acknowledgement contract; ``"never"`` leaves flushing to
        the OS (benchmarks and tests only; an acknowledged commit can
        then be lost to a machine crash, though not to a process
        crash).
    start_lsn:
        First LSN the *next* append will carry, used to name the first
        segment when the directory has none.
    on_fsync:
        Optional ``fn(seconds)`` latency observer (the server wires the
        WAL-fsync histogram of
        :class:`~repro.serving.metrics.ServerMetrics` here).
    crash:
        Optional :class:`~repro.resilience.chaos.CrashInjector` armed at
        one of the WAL kill-points.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        sync: str = "commit",
        start_lsn: int = 1,
        on_fsync=None,
        crash=None,
    ) -> None:
        if sync not in ("commit", "never"):
            raise DurabilityError(f"unknown WAL sync policy {sync!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.on_fsync = on_fsync
        self.crash = crash
        self._start_lsn = start_lsn
        self._file = None
        self._path: Path | None = None
        self.appended = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # Segment inventory
    # ------------------------------------------------------------------
    def segments(self) -> list[Path]:
        """Live segment paths, oldest first (orphans excluded)."""
        return sorted(
            p
            for p in self.directory.glob(f"{SEGMENT_PREFIX}*.log")
            if p.name[len(SEGMENT_PREFIX) : -len(".log")].isdigit()
        )

    @staticmethod
    def segment_start_lsn(path: Path) -> int:
        """The first LSN a segment was opened for (from its name)."""
        return int(path.name[len(SEGMENT_PREFIX) : -len(".log")])

    def _segment_path(self, start_lsn: int) -> Path:
        return self.directory / f"{SEGMENT_PREFIX}{start_lsn:016d}.log"

    # ------------------------------------------------------------------
    # Repair / scan
    # ------------------------------------------------------------------
    def repair(self) -> dict:
        """Truncate torn/corrupt tails; quarantine unreachable segments.

        Scans segments oldest-first.  The first invalid frame ends the
        valid log: its segment is physically truncated there, and any
        *later* segments -- unreachable past the corruption -- are
        renamed to ``*.orphan`` so no future replay can resurrect them.
        Returns a report (``truncated_bytes``, ``orphaned_segments``,
        ``last_lsn``).  Idempotent: re-running repairs nothing new.
        """
        truncated_bytes = 0
        orphaned: list[str] = []
        last_lsn: int | None = None
        segments = self.segments()
        for index, path in enumerate(segments):
            records, valid_bytes, problem = _scan_segment(path)
            if records:
                last_lsn = records[-1].lsn
            if problem is None:
                continue
            size = path.stat().st_size
            truncated_bytes += size - valid_bytes
            with open(path, "rb+") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            for orphan in segments[index + 1 :]:
                orphan.rename(orphan.with_suffix(".log.orphan"))
                orphaned.append(orphan.name)
            _fsync_dir(self.directory)
            break
        return {
            "truncated_bytes": truncated_bytes,
            "orphaned_segments": orphaned,
            "last_lsn": last_lsn,
        }

    def records(self, after_lsn: int | None = None) -> list[WalRecord]:
        """All valid records in LSN order, optionally ``lsn > after_lsn``.

        Assumes :meth:`repair` ran first (raises on an invalid frame).
        """
        out: list[WalRecord] = []
        for path in self.segments():
            records, _, problem = _scan_segment(path)
            if problem is not None:
                raise DurabilityError(
                    f"invalid WAL frame in {path.name} ({problem}); run repair()"
                )
            out.extend(records)
        if after_lsn is not None:
            out = [r for r in out if r.lsn > after_lsn]
        return out

    def last_lsn(self) -> int | None:
        """LSN of the newest valid record (``None`` for an empty log)."""
        for path in reversed(self.segments()):
            records, _, _ = _scan_segment(path)
            if records:
                return records[-1].lsn
        return None

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._file is not None:
            return
        segments = self.segments()
        path = segments[-1] if segments else self._segment_path(self._start_lsn)
        created = not path.exists()
        self._file = open(path, "ab")
        self._path = path
        if created:
            _fsync_dir(self.directory)

    def append(self, record: WalRecord) -> int:
        """Durably append one record; returns the frame's byte count.

        Any OS-level failure (write, flush, fsync) surfaces as a typed
        :class:`~repro.exceptions.DurabilityError` -- the caller (the
        dataset's commit path) rolls the update back, so a commit whose
        log append failed is never acknowledged.
        """
        frame = record.encode()
        try:
            self._ensure_open()
            crash = self.crash
            if crash is not None:
                # Torn-write kill-point: flush only a prefix of the
                # frame to the OS, then die.  The partial bytes survive
                # the process (page cache), modelling a power cut
                # mid-write; repair() must truncate them.
                fh = self._file

                def torn() -> None:
                    fh.write(frame[: max(1, len(frame) // 2)])
                    fh.flush()

                crash.maybe_crash("wal.append.mid-write", before_exit=torn)
            self._file.write(frame)
            self._file.flush()
            if crash is not None:
                # Complete frame flushed to the OS but not fsynced and
                # not acknowledged: recovery may legitimately replay it.
                crash.maybe_crash("wal.append.pre-fsync")
            if self.sync == "commit":
                start = time.perf_counter()
                os.fsync(self._file.fileno())
                if self.on_fsync is not None:
                    self.on_fsync(time.perf_counter() - start)
        except DurabilityError:
            raise
        except Exception as err:
            raise DurabilityError(f"WAL append failed: {err}") from err
        self.appended += 1
        self.bytes_written += len(frame)
        return len(frame)

    # ------------------------------------------------------------------
    # Rotation / retirement
    # ------------------------------------------------------------------
    def rotate(self, next_lsn: int) -> Path:
        """Close the active segment; open a fresh one for ``next_lsn``."""
        if self._file is not None:
            self._file.flush()
            if self.sync == "commit":
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
            self._path = None
        self._start_lsn = next_lsn
        path = self._segment_path(next_lsn)
        self._file = open(path, "ab")
        self._path = path
        _fsync_dir(self.directory)
        return path

    def retire(self, checkpoint_lsn: int) -> list[Path]:
        """Unlink segments wholly covered by a ``checkpoint_lsn`` snapshot.

        A segment is retired when a *later* segment starts at or before
        ``checkpoint_lsn + 1`` -- i.e. every record it holds has LSN
        <= ``checkpoint_lsn`` and is reproducible from the snapshot.
        The active segment is never retired.
        """
        segments = self.segments()
        retired: list[Path] = []
        for index, path in enumerate(segments):
            if path == self._path:
                continue
            later = segments[index + 1 :]
            if later and self.segment_start_lsn(later[0]) <= checkpoint_lsn + 1:
                path.unlink()
                retired.append(path)
        if retired:
            _fsync_dir(self.directory)
        return retired

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the active segment (append re-opens it)."""
        if self._file is not None:
            self._file.flush()
            if self.sync == "commit":
                try:
                    os.fsync(self._file.fileno())
                except OSError:  # pragma: no cover - platform-dependent
                    pass
            self._file.close()
            self._file = None
            self._path = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({str(self.directory)!r}, sync={self.sync!r}, "
            f"segments={len(self.segments())})"
        )
