"""Crash recovery and integrity verification (``repro fsck``).

:func:`recover` rebuilds a dataset from a durability directory: repair
the WAL (truncate torn tails, quarantine unreachable segments), load
the newest snapshot that passes its checksum (falling back to older
ones), then replay the WAL tail in strict LSN order through the same
``insert_record``/``delete_record`` commit path live updates take.
Replay is idempotent -- the only disk mutation recovery performs is the
tail truncation, so a crash *during* recovery (the
``recovery.mid-replay`` kill-point) just means recovery runs again from
the same snapshot.

:func:`fsck` is the independent auditor: it rebuilds a second dataset
from scratch out of the recovered records (with the same persisted
spanning forests) and asserts the recovered derived state -- full-space
skyline, stratification, category counts, R-tree structure and, when a
:class:`~repro.views.ViewManager` is attached, the materialized view --
is bit-identical to the from-scratch recompute.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import DurabilityError
from repro.durability.snapshot import (
    dataset_body,
    list_snapshots,
    load_snapshot,
    rebuild_dataset,
)
from repro.durability.wal import WriteAheadLog

__all__ = ["RecoveryReport", "recover", "fsck"]

WAL_SUBDIR = "wal"
SNAPSHOT_SUBDIR = "snapshots"


@dataclass
class RecoveryReport:
    """What one :func:`recover` call did."""

    dataset: object
    snapshot_path: str
    snapshot_lsn: int
    last_lsn: int
    replayed: int
    truncated_bytes: int
    orphaned_segments: list = field(default_factory=list)
    skipped_snapshots: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-friendly summary (the ``repro fsck`` report body)."""
        return {
            "snapshot": Path(self.snapshot_path).name,
            "snapshot_lsn": self.snapshot_lsn,
            "last_lsn": self.last_lsn,
            "replayed": self.replayed,
            "truncated_bytes": self.truncated_bytes,
            "orphaned_segments": list(self.orphaned_segments),
            "skipped_snapshots": list(self.skipped_snapshots),
        }


def recover(
    directory: str | Path,
    *,
    kernel: str | None = None,
    stats=None,
    crash=None,
) -> RecoveryReport:
    """Rebuild the committed dataset state under ``directory``.

    ``directory`` is a durability root as laid out by
    :class:`~repro.durability.manager.DurabilityManager` (``wal/`` and
    ``snapshots/`` subdirectories).  Raises
    :class:`~repro.exceptions.DurabilityError` when no snapshot passes
    its checksum or the WAL tail is inconsistent with the snapshot
    (an LSN gap means committed state is unrecoverable -- better a loud
    failure than a silently wrong skyline).
    """
    directory = Path(directory)
    wal = WriteAheadLog(directory / WAL_SUBDIR)
    repair = wal.repair()

    skipped: list[str] = []
    body = None
    snapshot_file: Path | None = None
    for candidate in reversed(list_snapshots(directory / SNAPSHOT_SUBDIR)):
        try:
            body = load_snapshot(candidate)
        except DurabilityError as err:
            warnings.warn(f"skipping snapshot {candidate.name}: {err}", stacklevel=2)
            skipped.append(candidate.name)
            continue
        snapshot_file = candidate
        break
    if body is None:
        raise DurabilityError(
            f"no usable snapshot under {directory / SNAPSHOT_SUBDIR}"
            + (f" (skipped: {', '.join(skipped)})" if skipped else "")
        )

    dataset = rebuild_dataset(body, kernel=kernel, stats=stats)
    snapshot_lsn = int(body["lsn"])
    dataset.update_version = snapshot_lsn

    replayed = 0
    for entry in wal.records(after_lsn=snapshot_lsn):
        expected = dataset.update_version + 1
        if entry.lsn != expected:
            raise DurabilityError(
                f"WAL gap during replay: expected LSN {expected}, found {entry.lsn}"
            )
        if crash is not None:
            crash.maybe_crash("recovery.mid-replay")
        if entry.op == "insert":
            dataset.insert_record(entry.record)
        else:
            if not dataset.delete_record(entry.rid):
                raise DurabilityError(
                    f"WAL replay: delete of unknown rid {entry.rid!r} at LSN {entry.lsn}"
                )
        replayed += 1
    wal.close()

    return RecoveryReport(
        dataset=dataset,
        snapshot_path=str(snapshot_file),
        snapshot_lsn=snapshot_lsn,
        last_lsn=dataset.update_version,
        replayed=replayed,
        truncated_bytes=repair["truncated_bytes"],
        orphaned_segments=repair["orphaned_segments"],
        skipped_snapshots=skipped,
    )


def _skyline_rids(dataset, algorithm: str) -> list:
    from repro.algorithms.base import get_algorithm

    return [p.record.rid for p in get_algorithm(algorithm).run(dataset)]


def fsck(dataset, *, algorithm: str = "sdc+", views=None) -> dict:
    """Audit a (recovered) dataset against a from-scratch recompute.

    Builds an independent dataset from ``dataset``'s records with the
    same spanning forests and compares, bit-for-bit:

    * the full-space skyline (rids in emission order);
    * the stratification (stratum labels and sorted per-stratum rids,
      in processing order);
    * the per-category point counts;
    * R-tree structural invariants (``tree.validate()``), on the global
      tree and on every stratum tree that is already built;
    * when ``views`` (a :class:`~repro.views.ViewManager`) is given,
      its materialized full-space skyline against the recomputed one.

    Returns ``{"clean": bool, "checks": {...}, "problems": [...]}``.
    """
    problems: list[str] = []
    checks: dict[str, str] = {}
    reference = rebuild_dataset(dataset_body(dataset, dataset.update_version))

    got = _skyline_rids(dataset, algorithm)
    want = _skyline_rids(reference, algorithm)
    checks["skyline"] = f"{len(got)} points"
    if got != want:
        problems.append(
            f"skyline mismatch: recovered {len(got)} rids != recomputed {len(want)}"
        )

    got_strata = [
        (s.label, sorted((p.record.rid for p in s.points), key=repr))
        for s in dataset.stratification
    ]
    want_strata = [
        (s.label, sorted((p.record.rid for p in s.points), key=repr))
        for s in reference.stratification
    ]
    checks["strata"] = f"{len(got_strata)} strata"
    if got_strata != want_strata:
        problems.append(
            f"stratification mismatch: {[l for l, _ in got_strata]} != "
            f"{[l for l, _ in want_strata]}"
        )

    got_cats = {c.value: n for c, n in dataset.category_counts().items()}
    want_cats = {c.value: n for c, n in reference.category_counts().items()}
    checks["categories"] = str(got_cats)
    if got_cats != want_cats:
        problems.append(f"category counts {got_cats} != {want_cats}")

    try:
        dataset.index.validate()
        built = sum(
            1 for s in dataset.stratification if s._tree is not None
        )
        for stratum in dataset.stratification:
            if stratum._tree is not None:
                stratum._tree.validate()
        checks["rtree"] = f"global + {built} stratum trees valid"
    except Exception as err:
        problems.append(f"R-tree validation failed: {err}")

    if views is not None:
        if not views.materialized:
            problems.append("view manager attached but skyline not materialized")
        else:
            view_rids = sorted((rid for rid in views._skyline), key=repr)
            want_rids = sorted(want, key=repr)
            checks["views"] = f"{len(view_rids)} materialized points"
            if view_rids != want_rids:
                problems.append(
                    f"materialized view holds {len(view_rids)} rids, "
                    f"recompute yields {len(want_rids)}"
                )

    return {"clean": not problems, "checks": checks, "problems": problems}
