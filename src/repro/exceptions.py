"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
resilience layer (:mod:`repro.resilience`) adds a sub-family of
*query-execution control* errors that carry the answers emitted before
the query was stopped (:attr:`ResilienceError.partial`), so no limit or
failure ever silently truncates a result.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class PosetError(ReproError):
    """Base class for errors involving partially-ordered domains."""


class CyclicPosetError(PosetError):
    """Raised when edges supplied for a poset contain a directed cycle.

    A partial order is antisymmetric, so its covering DAG must be acyclic.
    """

    def __init__(self, cycle: list | None = None) -> None:
        self.cycle = list(cycle) if cycle is not None else None
        detail = f" (cycle: {' -> '.join(map(str, self.cycle))})" if self.cycle else ""
        super().__init__(f"poset edges contain a directed cycle{detail}")


class UnknownValueError(PosetError):
    """Raised when a value is not part of a poset's domain."""

    def __init__(self, value: object) -> None:
        self.value = value
        super().__init__(f"value {value!r} is not in the poset domain")


class SchemaError(ReproError):
    """Raised for invalid schemas or records inconsistent with a schema."""


class RTreeError(ReproError):
    """Raised for invalid R-tree operations or corrupted index structure."""


#: Deprecated alias of :class:`RTreeError` (the original awkward name,
#: chosen to avoid shadowing the ``IndexError`` builtin).  Kept so
#: existing ``except IndexError_`` / ``raises(IndexError_)`` callers keep
#: working; new code should catch :class:`RTreeError`.
IndexError_ = RTreeError


class AlgorithmError(ReproError):
    """Raised when a skyline algorithm is misconfigured or misused."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generation parameters."""


class InputFormatError(ReproError):
    """Raised when persisted workload data is malformed or corrupt.

    Carries the offending JSON ``key`` (when one is known) so corrupt
    files fail with context instead of a raw ``KeyError`` traceback.
    """

    def __init__(self, message: str, key: object | None = None) -> None:
        self.key = key
        if key is not None:
            message = f"{message} (key: {key!r})"
        super().__init__(message)


class KernelError(ReproError):
    """Raised when a dominance kernel fails mid-query.

    The resilient executor treats this (and ``FloatingPointError`` from
    numpy) as a *recoverable* backend failure: when the failing kernel is
    the vectorized batch backend, the query is retried on the reference
    python kernel (see :mod:`repro.resilience.executor`).
    """


# ---------------------------------------------------------------------------
# Concurrent query serving (repro.serving)
# ---------------------------------------------------------------------------
class ServingError(ReproError):
    """Raised for invalid use of the concurrent query server (e.g.
    submitting to a closed :class:`~repro.serving.server.SkylineServer`)."""


class AdmissionRejectedError(ServingError):
    """Raised when the server's admission controller refuses a query.

    Rejection happens *before* any dominance comparison is executed: the
    cost model predicted the query cannot finish within its budget or
    deadline, or the server is over capacity (see
    :mod:`repro.serving.admission`).

    Attributes
    ----------
    reason:
        Why the query was refused: ``"comparisons"`` (estimated
        comparison bill exceeds the request's budget), ``"deadline"``
        (calibrated latency exceeds the request's deadline) or
        ``"capacity"`` (the server's pending-queue limit is reached).
    estimate / limit:
        The offending estimate and the limit it exceeded (``None`` for
        ``"capacity"`` rejections, where they are the queue depth and
        the queue capacity).
    """

    def __init__(self, reason: str, estimate: float | None, limit: float | None) -> None:
        self.reason = reason
        self.estimate = estimate
        self.limit = limit
        detail = ""
        if estimate is not None and limit is not None:
            detail = f" (estimated {estimate:.6g}, limit {limit:.6g})"
        super().__init__(f"query rejected at admission: {reason}{detail}")


class QueryShedError(ServingError):
    """Raised/attached when overload shedding drops a query.

    Shedding happens either at submission (the bounded queue is full and
    the incoming query loses under the configured policy -- ``submit``
    raises) or while queued (a policy evicts an already-admitted query
    -- its :class:`~repro.serving.server.QueryHandle` resolves with this
    error).  Either way the query executed **zero** dominance
    comparisons, so the attached ``partial`` is empty -- trivially a
    prefix of the algorithm's emission order.

    Attributes
    ----------
    policy:
        The shedding policy that dropped the query (``"reject-newest"``,
        ``"priority"``, ``"deadline"``).
    reason:
        Why this particular query lost (``"queue-full"``,
        ``"lower-priority"``, ``"doomed-deadline"``, or a degradation
        mode such as ``"cache_only"`` / ``"rejecting"``).
    """

    def __init__(self, policy: str, reason: str) -> None:
        self.policy = policy
        self.reason = reason
        self.partial = None
        super().__init__(f"query shed under {policy!r} policy: {reason}")


class LockTimeoutError(ServingError):
    """Raised when a reader-writer lock acquisition exceeds its timeout.

    Carries the requested ``mode`` (``"read"`` / ``"write"``) and the
    ``timeout`` that elapsed, so a stuck reader surfaces as a typed
    error at the update site instead of silently deadlocking writers.
    """

    def __init__(self, mode: str, timeout: float) -> None:
        self.mode = mode
        self.timeout = timeout
        super().__init__(
            f"could not acquire {mode} lock within {timeout:.6g}s"
        )


# ---------------------------------------------------------------------------
# Query-execution control (repro.resilience)
# ---------------------------------------------------------------------------
class ResilienceError(ReproError):
    """Base class for deadline / cancellation / budget query stops.

    Attributes
    ----------
    partial:
        The :class:`~repro.resilience.executor.PartialResult` holding the
        answers emitted before the stop, attached by the resilient
        executor (``None`` when the error escaped outside it).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.partial = None


class QueryTimeoutError(ResilienceError):
    """Raised when a query's wall-clock deadline expires."""

    def __init__(self, deadline: float, elapsed: float) -> None:
        self.deadline = deadline
        self.elapsed = elapsed
        super().__init__(
            f"query deadline of {deadline:.6g}s exceeded "
            f"(elapsed {elapsed:.6g}s)"
        )


class QueryCancelledError(ResilienceError):
    """Raised when a query's cooperative cancellation token fires."""

    def __init__(self) -> None:
        super().__init__("query cancelled")


class BudgetExhaustedError(ResilienceError):
    """Raised at a checkpoint when a resource budget is exhausted.

    Attributes
    ----------
    reason:
        Which budget ran out: ``"comparisons"``, ``"heap_entries"``,
        ``"window_entries"`` or ``"answers"``.
    limit / used:
        The configured limit and the usage that tripped it.
    """

    def __init__(self, reason: str, limit: int, used: int) -> None:
        self.reason = reason
        self.limit = limit
        self.used = used
        super().__init__(
            f"{reason} budget exhausted ({used} used, limit {limit})"
        )


class KernelFallbackWarning(UserWarning):
    """Warned when a batch-kernel failure triggers the python fallback.

    Not a :class:`ReproError`: the query still completes (on the
    reference kernel); the warning records that it did not complete on
    the backend that was asked for.  The event is also counted in
    :attr:`repro.core.stats.ComparisonStats.kernel_fallbacks`.
    """


# ---------------------------------------------------------------------------
# Multi-core sharded execution (repro.parallel)
# ---------------------------------------------------------------------------
class ParallelError(ReproError):
    """Raised for invalid use of the process-pool skyline executor (e.g.
    running a closed :class:`~repro.parallel.executor.ParallelSkylineExecutor`)."""


class ParallelFallbackWarning(UserWarning):
    """Warned when sharded execution degrades to a serial recomputation.

    Emitted when a worker process dies mid-query (or the process pool
    breaks for any other reason): the query is transparently re-run on
    the serial engine so the caller still receives a complete, correct
    answer.  The event is also counted in the serving layer's
    ``parallel_fallbacks`` metric (see
    :class:`~repro.serving.metrics.ServerMetrics`).
    """


# ---------------------------------------------------------------------------
# Network front-end (repro.net)
# ---------------------------------------------------------------------------
class NetError(ReproError):
    """Base class for errors raised by the network front-end
    (:mod:`repro.net`): protocol violations, rate limiting, slow-consumer
    shedding and remote query failures."""


class ProtocolError(NetError):
    """Raised when a wire frame violates the framing protocol.

    Covers CRC mismatches, oversized frames, truncated length prefixes,
    payloads that are not valid JSON objects, missing/unknown frame
    types and handshake-version mismatches.  The server answers one
    malformed frame with a typed ERROR frame and closes the connection
    -- framing state cannot be trusted after a bad frame.
    """


class RateLimitedError(NetError):
    """Raised/sent when a client's token bucket cannot cover a query.

    Attributes
    ----------
    cost / retry_after:
        The priced token cost of the refused query (from the
        shape-conditioned admission cost model) and the seconds until
        the bucket will have refilled enough to cover it.
    """

    def __init__(self, cost: float, retry_after: float) -> None:
        self.cost = cost
        self.retry_after = retry_after
        super().__init__(
            f"rate limited: query costs {cost:.3g} tokens, "
            f"retry in {retry_after:.3g}s"
        )


class SlowConsumerError(NetError):
    """Raised/sent when a streamed query is shed for slow consumption.

    The per-connection send queue and per-query pending buffer are
    bounded; a client that stops reading first pauses emission and --
    past the configured bound or pause window -- has the query cancelled
    and the stream terminated with this typed error instead of buffering
    without bound or hanging the server.
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"stream shed: slow consumer ({reason})")


class RemoteQueryError(NetError):
    """Raised by the asyncio client when the server ends a stream with
    an ERROR frame.

    Attributes
    ----------
    code:
        The wire error code (e.g. ``"admission-rejected"``, ``"shed"``,
        ``"timeout"``, ``"rate-limited"``, ``"slow-consumer"``).
    detail:
        The frame's structured detail payload (reason, estimate, limit,
        retry_after, ... -- whatever the originating typed exception
        carried).
    points:
        The emission prefix streamed before the failure (always a valid
        prefix of the algorithm's emission order).
    """

    def __init__(self, code: str, message: str, detail: dict | None = None,
                 points: list | None = None) -> None:
        self.code = code
        self.detail = dict(detail) if detail else {}
        self.points = list(points) if points else []
        super().__init__(f"remote query failed [{code}]: {message}")


# ---------------------------------------------------------------------------
# Durable state (repro.durability)
# ---------------------------------------------------------------------------
class DurabilityError(ReproError):
    """Raised when the persistence subsystem cannot uphold durability.

    Covers write-ahead-log append/fsync failures (the triggering update
    is rolled back and must not be acknowledged), snapshot checksum
    mismatches, and recovery-time log inconsistencies (an LSN gap, a
    dataset attached to a log it has not been recovered from).  A
    :class:`~repro.serving.server.SkylineServer` turns a WAL append
    failure into read-only degradation instead of crashing; see
    ``docs/durability.md``.
    """
