"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class PosetError(ReproError):
    """Base class for errors involving partially-ordered domains."""


class CyclicPosetError(PosetError):
    """Raised when edges supplied for a poset contain a directed cycle.

    A partial order is antisymmetric, so its covering DAG must be acyclic.
    """

    def __init__(self, cycle: list | None = None) -> None:
        self.cycle = list(cycle) if cycle is not None else None
        detail = f" (cycle: {' -> '.join(map(str, self.cycle))})" if self.cycle else ""
        super().__init__(f"poset edges contain a directed cycle{detail}")


class UnknownValueError(PosetError):
    """Raised when a value is not part of a poset's domain."""

    def __init__(self, value: object) -> None:
        self.value = value
        super().__init__(f"value {value!r} is not in the poset domain")


class SchemaError(ReproError):
    """Raised for invalid schemas or records inconsistent with a schema."""


class IndexError_(ReproError):
    """Raised for invalid R-tree operations (named to avoid the builtin)."""


class AlgorithmError(ReproError):
    """Raised when a skyline algorithm is misconfigured or misused."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generation parameters."""
