"""Materialized skyline views with incremental maintenance.

:class:`ViewManager` is the coordination point between three existing
subsystems and the new result cache:

* the **dataset** (:class:`~repro.transform.dataset.TransformedDataset`)
  publishes committed ``insert_record``/``delete_record`` events through
  its update-listener registry;
* the **maintenance kernel** (:func:`repro.queries.maintain.apply_insert`
  / :func:`~repro.queries.maintain.apply_delete`) folds each committed
  update into the materialized full-space skyline in ``O(|S|)`` native
  comparisons instead of a recompute;
* the **cache** (:class:`~repro.views.cache.ResultCache`) holds answer
  sets for every other query shape, invalidated region-aware on each
  update.

Invalidation protocol (the correctness core):

1. A writer (``SkylineServer.insert``/``delete``) holds the
   writer-preferring lock, so no query is in flight.
2. The dataset commits the mutation (indexes + strata incrementally
   maintained, rolled back on chaos faults) and only *after* a
   successful commit notifies listeners -- a rolled-back update never
   reaches the manager, so the cache provably survives failed updates.
3. :meth:`ViewManager.on_update` runs synchronously inside the writer
   lock: it patches the materialized full-space skyline and invalidates
   exactly the cache entries whose region the update touches.  By the
   time the writer lock releases, every surviving cache entry is
   consistent with the new dataset state -- a reader can never observe
   a stale hit.

Region rules: a ``constrained`` entry is dropped only when the updated
point satisfies its :meth:`~repro.queries.constrained.Constraint.admits`
predicate; ``subspace`` and ``skyband`` entries are always dropped
(dominance in a projection or at depth ``k`` cannot be decided from the
full-space event alone); ``skyline`` entries are dropped only when the
incremental patch reports the answer actually changed.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import TYPE_CHECKING

from repro.core.stats import ComparisonStats
from repro.exceptions import ServingError
from repro.queries.maintain import apply_delete, apply_insert
from repro.views.cache import CacheEntry, ResultCache
from repro.views.keys import QueryShape, canonical_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.metrics import ServerMetrics
    from repro.transform.dataset import TransformedDataset
    from repro.transform.point import Point

__all__ = ["ViewHit", "ViewManager"]


class ViewHit:
    """One successful cache/view lookup, ready to serve."""

    __slots__ = ("shape", "points", "age", "version", "source")

    def __init__(self, shape: QueryShape, points: list, age: float,
                 version: int, source: str) -> None:
        self.shape = shape
        #: Canonically-ordered answer points (a fresh list per hit).
        self.points = points
        #: Seconds since the answer was last (re)computed or patched.
        self.age = age
        #: Dataset ``update_version`` the answer reflects.
        self.version = version
        #: ``"view"`` (materialized skyline) or ``"cache"`` (entry).
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewHit({self.shape}, {len(self.points)} answers, "
            f"age={self.age:.3f}s, v{self.version}, {self.source})"
        )


class ViewManager:
    """Materialized full-space skyline + shaped-result cache over one dataset.

    Parameters
    ----------
    dataset:
        The base :class:`~repro.transform.dataset.TransformedDataset`
        (not a query view).  The manager registers itself as an update
        listener; call :meth:`detach` when done.
    cache:
        A ready :class:`~repro.views.cache.ResultCache`, or ``None`` to
        build one from ``cache_entries``/``cache_bytes``.
    metrics:
        Optional :class:`~repro.serving.metrics.ServerMetrics` receiving
        cache traffic events (also pushed into the cache's gauge hook).
    algorithm:
        Algorithm used for the initial materialization (any of the 8 --
        they agree on the answer set).

    The manager's own dominance work (initial materialization + every
    incremental patch) is billed to a private
    :class:`~repro.core.stats.ComparisonStats` bundle (:attr:`stats`),
    never to any query's counters -- which is what makes the served-hit
    ``comparisons == 0`` assertion meaningful.
    """

    def __init__(
        self,
        dataset: "TransformedDataset",
        cache: ResultCache | None = None,
        metrics: "ServerMetrics | None" = None,
        algorithm: str = "sdc+",
        cache_entries: int = 256,
        cache_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if getattr(dataset, "_base", None) is not None:
            raise ServingError(
                "ViewManager must attach to the base dataset, not a query view"
            )
        self.dataset = dataset
        self.metrics = metrics
        self.algorithm = algorithm
        self.stats = ComparisonStats()
        # Maintenance view: shares the base dataset's point list (so it
        # tracks committed updates) but bills comparisons privately.
        self._view = dataset.query_view(stats=self.stats)
        if cache is None:
            cache = ResultCache(
                max_entries=cache_entries, max_bytes=cache_bytes,
                metrics=metrics,
            )
        elif metrics is not None and cache.metrics is None:
            cache.metrics = metrics
        self.cache = cache
        self._lock = threading.RLock()
        self._skyline: dict | None = None  # {rid: Point} once materialized
        self._refreshed_at: float = time.monotonic()
        self._registered: set[QueryShape] = set()
        self._detached = False
        # Counters (exposed via snapshot()).
        self.patches = 0
        self.patch_changes = 0
        self.rebuilds = 0
        self.materialize_seconds = 0.0
        dataset.add_update_listener(self._on_dataset_update)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def materialize(self) -> int:
        """Compute and pin the full-space skyline; returns its size.

        Idempotent -- re-materializing recomputes from scratch (used as
        the fail-safe after a patch error).
        """
        from repro.algorithms.base import get_algorithm

        start = time.perf_counter()
        with self._lock:
            points = get_algorithm(self.algorithm).run(self._view)
            self._skyline = {p.record.rid: p for p in points}
            self._refreshed_at = time.monotonic()
            self.materialize_seconds = time.perf_counter() - start
            return len(self._skyline)

    @property
    def materialized(self) -> bool:
        """Whether the full-space skyline is currently materialized."""
        return self._skyline is not None

    def detach(self) -> None:
        """Unregister from the dataset's update-listener registry."""
        if not self._detached:
            self._detached = True
            self.dataset.remove_update_listener(self._on_dataset_update)

    def __enter__(self) -> "ViewManager":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Serving-side API (called under the server's read lock)
    # ------------------------------------------------------------------
    def lookup(self, shape: QueryShape) -> ViewHit | None:
        """The current answer for ``shape``, or ``None`` on a miss.

        The full-space skyline is served from the materialized view when
        available (always warm after :meth:`materialize`); every other
        shape is served from the cache.  Never executes a dominance
        comparison on the caller's behalf.
        """
        now = time.monotonic()
        if shape.kind == "skyline":
            with self._lock:
                if self._skyline is not None:
                    return ViewHit(
                        shape,
                        canonical_order(self._skyline.values()),
                        now - self._refreshed_at,
                        self.dataset.update_version,
                        "view",
                    )
        entry = self.cache.get(shape)
        if entry is None:
            return None
        return ViewHit(
            shape, list(entry.points), entry.age(now), entry.version, "cache"
        )

    def store(self, shape: QueryShape, points: list, region=None) -> None:
        """Populate the cache with a freshly-computed complete answer.

        Must be called while the dataset state the answer was computed
        against is still current (the server stores inside its read
        lock, which excludes writers).  Full-skyline answers are not
        cached when the materialized view already serves them.
        """
        if shape.kind == "skyline" and self._skyline is not None:
            return
        self.cache.put(
            shape,
            points,
            self.dataset.dimensions,
            region=region,
            version=self.dataset.update_version,
            pinned=shape in self._registered,
        )

    def register(self, shape: QueryShape, points: list | None = None,
                 region=None) -> None:
        """Pin ``shape`` as a registered variant.

        Registered shapes survive LRU/byte eviction (though not
        invalidation); when ``points`` is given the answer is stored
        immediately.
        """
        with self._lock:
            self._registered.add(shape)
        if points is not None:
            self.store(shape, points, region=region)

    # ------------------------------------------------------------------
    # Update-side API (runs inside the writer lock, post-commit)
    # ------------------------------------------------------------------
    def _on_dataset_update(self, op: str, point: "Point") -> None:
        try:
            self.on_update(op, point)
        except Exception as err:
            # Fail safe, never fail stale: drop everything cached and
            # the materialized view rather than risk serving a wrong
            # answer; the next queries recompute and repopulate.
            with self._lock:
                self._skyline = None
            self.cache.clear()
            self.rebuilds += 1
            warnings.warn(
                f"materialized view patch failed ({err!r}); cache cleared "
                f"and full-space view dropped pending re-materialization",
                RuntimeWarning,
                stacklevel=2,
            )

    def on_update(self, op: str, point: "Point") -> None:
        """Fold one committed update into views and cache.

        Called synchronously from the dataset's listener notification --
        i.e. inside the server's writer lock, after indexes and strata
        committed.  On return every resident answer is consistent with
        the post-update dataset.
        """
        changed = True  # conservative when not materialized
        with self._lock:
            if self._skyline is not None:
                kernel = self._view.kernel
                self.patches += 1
                if op == "insert":
                    changed = apply_insert(self._skyline, point, kernel)
                elif op == "delete":
                    changed = apply_delete(
                        self._skyline, point, self._view.points, kernel
                    )
                else:  # pragma: no cover - future-proofing
                    raise ServingError(f"unknown update op {op!r}")
                if changed:
                    self.patch_changes += 1
                    self._refreshed_at = time.monotonic()
        invalidated = self.cache.invalidate_where(
            lambda entry: self._touches(entry, op, point, changed)
        )
        if self.metrics is not None and invalidated:
            self.metrics.on_cache_invalidated(invalidated)

    def _touches(self, entry: CacheEntry, op: str, point: "Point",
                 skyline_changed: bool) -> bool:
        """Whether one committed update can affect one cached answer."""
        kind = entry.shape.kind
        if kind == "skyline":
            return skyline_changed
        if kind == "constrained" and entry.region is not None:
            # Outside the constraint box the point is filtered out
            # before any dominance test, so the answer is untouched.
            return bool(entry.region.admits(self.dataset, point))
        # Subspace and skyband answers (and region-less constrained
        # entries) cannot be judged from the full-space event alone.
        return True

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able summary of view + cache state."""
        with self._lock:
            skyline_size = (
                len(self._skyline) if self._skyline is not None else None
            )
            return {
                "materialized": self._skyline is not None,
                "skyline_size": skyline_size,
                "algorithm": self.algorithm,
                "update_version": self.dataset.update_version,
                "patches": self.patches,
                "patch_changes": self.patch_changes,
                "rebuilds": self.rebuilds,
                "materialize_seconds": self.materialize_seconds,
                "registered_shapes": sorted(str(s) for s in self._registered),
                "maintenance_comparisons": (
                    self.stats.total_dominance_checks
                ),
                "cache": self.cache.snapshot(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        size = len(self._skyline) if self._skyline is not None else "-"
        return (
            f"ViewManager(materialized={self._skyline is not None}, "
            f"skyline={size}, cache={len(self.cache)} entries)"
        )
