"""Materialized skyline views and the hot-query result cache.

The serving bridge from one-shot skyline algorithms to O(answer)
repeated-query latency:

* :mod:`repro.views.keys` -- canonical, algorithm-independent
  :class:`~repro.views.keys.QueryShape` cache keys and the canonical
  (record-id) answer order;
* :mod:`repro.views.cache` -- the LRU + byte-budget
  :class:`~repro.views.cache.ResultCache`;
* :mod:`repro.views.manager` -- the
  :class:`~repro.views.manager.ViewManager` keeping the materialized
  full-space skyline incrementally correct under updates and
  invalidating cached shaped answers region-aware, inside the writer
  lock;
* :mod:`repro.views.bench` -- the ``repro bench-views`` hit-rate vs.
  speedup benchmark.

See ``docs/views.md`` for the view lifecycle and the invalidation
protocol.
"""

from repro.views.bench import run_views_bench
from repro.views.cache import CacheEntry, ResultCache, estimate_result_bytes
from repro.views.keys import QueryShape, canonical_order, constraint_key
from repro.views.manager import ViewHit, ViewManager

__all__ = [
    "run_views_bench",
    "CacheEntry",
    "QueryShape",
    "ResultCache",
    "ViewHit",
    "ViewManager",
    "canonical_order",
    "constraint_key",
    "estimate_result_bytes",
]
