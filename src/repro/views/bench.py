"""Hit-rate vs. speedup benchmark for the views layer (``repro bench-views``).

Replays identical seeded query streams against two servers over the same
dataset -- one with the views layer on, one without -- at several
*repeat fractions*.  Each stream mixes a small **hot set** (the
full-space skyline under the fig12a algorithm lineup, one constrained
box, one subspace, one skyband -- the repeated shapes production
services see) with **cold** one-off constrained-box queries; a query is
drawn from the hot set with probability equal to the repeat fraction.
Per fraction the report records wall time for both servers, the
aggregate speedup, the observed hit rate, total dominance comparisons
on each side, and a per-query rid-set parity check (every cached answer
must equal the uncached recompute).  The acceptance gate -- >= 5x
aggregate speedup at the 0.5 repeat fraction -- is evaluated into the
report, and the artifact lands at ``benchmarks/results/view_cache.json``.
"""

from __future__ import annotations

import random
import time

from repro.bench.artifacts import write_artifact
from repro.serving.server import QueryRequest, SkylineServer

__all__ = ["run_views_bench", "HOT_ALGORITHMS"]

#: The paper's Fig. 12(a) algorithm lineup -- the hot-set algorithms.
HOT_ALGORITHMS = ("bnl", "bnl+", "bbs+", "sdc", "sdc+")

#: Repeat fractions the benchmark sweeps.
DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75)

#: The acceptance gate: required aggregate speedup at this fraction.
ACCEPTANCE_FRACTION = 0.5
ACCEPTANCE_SPEEDUP = 5.0


def _hot_templates(constraint_cls) -> list[dict]:
    """The hot set: request field dicts (rebuilt into QueryRequests)."""
    templates: list[dict] = [
        {"algorithm": name} for name in HOT_ALGORITHMS
    ]
    templates.append(
        {
            "algorithm": "bbs+",
            "constraint": constraint_cls(ranges={"t0": (100.0, 400.0)}),
        }
    )
    templates.append({"algorithm": "bnl", "subspace": ("t0", "t1")})
    templates.append({"algorithm": "bbs+", "skyband_k": 2})
    return templates


def _make_stream(
    rng: random.Random, queries: int, fraction: float, constraint_cls
) -> list[QueryRequest]:
    """One seeded request stream at the given repeat fraction."""
    hot = _hot_templates(constraint_cls)
    stream: list[QueryRequest] = []
    for _ in range(queries):
        if rng.random() < fraction:
            stream.append(QueryRequest(**rng.choice(hot)))
        else:
            # Cold one-off: a narrow unique constraint box (cheap to
            # compute, never repeated, so it can only miss).
            lo = float(rng.randrange(0, 900))
            stream.append(
                QueryRequest(
                    algorithm="bbs+",
                    constraint=constraint_cls(
                        ranges={"t0": (lo, lo + 60.0)}
                    ),
                )
            )
    return stream


def _replay(server: SkylineServer, stream: list[QueryRequest]):
    """Run the stream sequentially; returns (wall_seconds, rid_sets)."""
    answers: list[frozenset] = []
    begin = time.perf_counter()
    for request in stream:
        result = server.submit(request).result()
        answers.append(
            frozenset(str(p.record.rid) for p in result.points)
        )
    return time.perf_counter() - begin, answers


def run_views_bench(
    size: int = 400,
    queries: int = 60,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    kernel: str = "python",
    seed: int = 7,
    workers: int = 2,
    output: str | None = None,
) -> dict:
    """Measure hit-rate vs. speedup curves; return the report dict.

    The dataset and every query stream are fully determined by ``seed``;
    both servers replay byte-identical streams, so the wall-clock ratio
    isolates exactly what the views layer saves.
    """
    from repro.queries.constrained import Constraint
    from repro.transform.dataset import TransformedDataset
    from repro.workloads.config import WorkloadConfig
    from repro.workloads.generator import generate_workload

    workload = generate_workload(
        WorkloadConfig.default(data_size=size, seed=seed)
    )
    dataset = TransformedDataset(
        workload.schema, workload.records, kernel=kernel
    )

    curves: dict[str, dict] = {}
    parity_ok = True
    for fraction in fractions:
        rng = random.Random(seed * 1_000_003 + int(fraction * 1000))
        stream = _make_stream(rng, queries, fraction, Constraint)

        cold_server = SkylineServer(
            dataset, workers=workers, warm=True, cache=None
        )
        cold_wall, cold_answers = _replay(cold_server, stream)
        cold_checks = cold_server.stats.total_dominance_checks
        cold_server.close()

        warm_begin = time.perf_counter()
        hot_server = SkylineServer(
            dataset, workers=workers, warm=True, cache=True
        )
        warm_seconds = time.perf_counter() - warm_begin
        hot_wall, hot_answers = _replay(hot_server, stream)
        hot_checks = hot_server.stats.total_dominance_checks
        cache_section = hot_server.metrics.snapshot()["cache"]
        views_snapshot = hot_server.views.snapshot()
        hot_server.close()

        parity = cold_answers == hot_answers
        parity_ok = parity_ok and parity
        curves[f"{fraction:.2f}"] = {
            "repeat_fraction": fraction,
            "queries": len(stream),
            "uncached_wall_seconds": round(cold_wall, 6),
            "cached_wall_seconds": round(hot_wall, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(cold_wall / hot_wall, 3) if hot_wall else 0.0,
            "hit_rate": cache_section["hit_rate"],
            "hits": cache_section["hits"],
            "misses": cache_section["misses"],
            "uncached_comparisons": cold_checks,
            "cached_comparisons": hot_checks,
            "maintenance_comparisons": views_snapshot[
                "maintenance_comparisons"
            ],
            "parity": parity,
        }

    gate_key = f"{ACCEPTANCE_FRACTION:.2f}"
    achieved = curves.get(gate_key, {}).get("speedup", 0.0)
    report = {
        "benchmark": "view_cache",
        "experiment": "fig12a-hot-set",
        "records": size,
        "kernel": kernel,
        "seed": seed,
        "queries_per_fraction": queries,
        "workers": workers,
        "hot_algorithms": list(HOT_ALGORITHMS),
        "parity_ok": parity_ok,
        "curves": curves,
        "acceptance": {
            "repeat_fraction": ACCEPTANCE_FRACTION,
            "required_speedup": ACCEPTANCE_SPEEDUP,
            "achieved_speedup": achieved,
            "passed": bool(parity_ok and achieved >= ACCEPTANCE_SPEEDUP),
        },
    }
    if output:
        write_artifact(output, report)
    return report
